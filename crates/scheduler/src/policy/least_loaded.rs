//! Least-loaded placement: blind to semantics, aware of queues.

use super::{place_with, Policy};
use crate::plan::Location;
use crate::view::ClusterView;
use genie_srg::{NodeId, Srg};
use std::collections::BTreeMap;

/// Sends each operation to the device with the least pending work
/// (cluster queue plus work this plan has already assigned). Balances
/// load well and scatters state just as badly as round-robin.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastLoaded;

impl Policy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least_loaded"
    }

    fn place(&self, srg: &Srg, view: &ClusterView<'_>) -> BTreeMap<NodeId, Location> {
        let devices = view.devices();
        assert!(!devices.is_empty(), "no devices in pool");
        let mut assigned: BTreeMap<genie_cluster::DevId, f64> = devices
            .iter()
            .map(|&d| (d, view.state.queue_seconds(d)))
            .collect();
        place_with(srg, |id| {
            let node = srg.node(id);
            let dev = *assigned
                .iter()
                .min_by(|a, b| {
                    a.1.partial_cmp(b.1)
                        .expect("finite load")
                        .then(a.0.cmp(b.0))
                })
                .expect("devices non-empty")
                .0;
            let gpu = &view.topo.device(dev).spec;
            *assigned.get_mut(&dev).expect("known device") += view.cost.kernel_time(node, gpu);
            Location::Device(dev)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::chain_graph;
    use super::*;
    use crate::cost::CostModel;
    use genie_cluster::{ClusterState, DevId, Topology};

    #[test]
    fn avoids_busy_devices() {
        let srg = chain_graph();
        let topo = Topology::rack(2, 25e9);
        let mut state = ClusterState::new();
        state.enqueue_work(DevId(0), 100.0); // device 0 is slammed
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        let p = LeastLoaded.place(&srg, &view);
        assert!(
            p.values().filter_map(|l| l.device()).all(|d| d == DevId(1)),
            "all work should land on the idle device"
        );
    }

    #[test]
    fn balances_on_equal_queues() {
        let srg = chain_graph();
        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        let p = LeastLoaded.place(&srg, &view);
        let used: std::collections::BTreeSet<_> = p.values().filter_map(|l| l.device()).collect();
        assert_eq!(used.len(), 2, "work spreads when queues tie");
    }
}
