//! # genie-scheduler — semantics-driven optimization
//!
//! The pluggable policy engine of §3.3: consumes a declarative SRG plus a
//! view of the cluster and produces an [`plan::ExecutionPlan`] with
//! concrete device bindings and explicit transfer instructions.
//!
//! The core interface is the pure function
//! [`schedule()`](schedule::schedule)`(srg, topology, state, cost_model, policy)`.
//! Policies ([`policy`]) span the §2.2 design space from semantically
//! blind (round-robin, least-loaded) through data-aware (ΔKV-grade) to
//! Genie's [`policy::SemanticsAware`], which implements the paper's three
//! showcase optimizations: stateful co-location, pipelined CNN inference
//! ([`pipeline`]), and dynamic recomputation under congestion
//! ([`recompute`]). The three extension points of §3.3 map directly:
//!
//! 1. graph rewrites — [`rewrite::fuse_elementwise_chains`];
//! 2. placement policy — the [`policy::Policy`] trait;
//! 3. runtime hint adaptation — the congestion-aware
//!    [`recompute::recomputation_candidates`].
//!
//! [`global`] scales the same machinery fleet-wide (§3.6): heterogeneous
//! placement, elastic phase-aware scaling, and cross-tenant decode
//! batching.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapt;
pub mod cost;
pub mod global;
pub mod lint;
pub mod memory;
pub mod pd;
pub mod pipeline;
pub mod plan;
pub mod plan_dot;
pub mod policy;
pub mod recompute;
pub mod rewrite;
pub mod schedule;
pub mod view;

pub use cost::{CostCacheStats, CostModel};
pub use global::migrate::{KvMigrationPlanner, MigrationDecision, MigrationPlan};
pub use lint::lint_plan;
pub use plan::{CostBreakdown, ExecutionPlan, Location, Transfer};
pub use policy::{DataAware, LeastLoaded, Policy, RoundRobin, SemanticsAware, Sharded};
pub use schedule::{schedule, schedule_checked, schedule_with_lints};
pub use view::ClusterView;
