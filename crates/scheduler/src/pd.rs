//! Prefill/decode disaggregation (§2.2).
//!
//! The paper's indictment of data-aware-but-phase-blind scheduling is
//! that "it would still entirely miss the potential benefits of PD
//! disaggregation": serving LLM requests with prefill and decode on
//! *separate* device pools (Splitwise/DistServe). Compute-bound prefill
//! bursts no longer preempt latency-sensitive decode steps; the price is
//! a one-time KV-cache handoff per request. Only a scheduler that sees
//! phase annotations can weigh that trade — this module is that weighing.

use serde::{Deserialize, Serialize};

/// The per-request phase profile the SRG exposes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PdProfile {
    /// Prefill kernel seconds per request (compute-bound, preemptive).
    pub prefill_s: f64,
    /// Decode kernel seconds per generated token (memory-bound).
    pub decode_step_s: f64,
    /// Tokens generated per request.
    pub decode_tokens: usize,
    /// KV-cache bytes produced by prefill that a disaggregated decode
    /// pool must receive (prompt KV handoff).
    pub kv_handoff_bytes: f64,
    /// Interconnect bandwidth between pools, bytes/s.
    pub interconnect: f64,
}

impl PdProfile {
    /// The paper's GPT-J workload on the calibrated A100 numbers:
    /// 0.21 s prefill, 30.6 ms/token, 72-token prompt KV ≈ 33 MB (f16),
    /// pools linked at 25 GbE.
    pub fn gptj_paper() -> Self {
        PdProfile {
            prefill_s: 0.21,
            decode_step_s: 0.0306,
            decode_tokens: 50,
            kv_handoff_bytes: 72.0 * 458_752.0,
            interconnect: 25e9 / 8.0,
        }
    }

    /// Decode kernel seconds per request.
    pub fn decode_s(&self) -> f64 {
        self.decode_step_s * self.decode_tokens as f64
    }

    /// KV handoff seconds per request.
    pub fn handoff_s(&self) -> f64 {
        self.kv_handoff_bytes / self.interconnect
    }
}

/// Outcome of a pool-sizing evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PdPlan {
    /// Devices serving prefill (0 = colocated).
    pub prefill_devices: usize,
    /// Devices serving decode (or all devices when colocated).
    pub decode_devices: usize,
    /// Sustainable requests/second.
    pub throughput_rps: f64,
    /// Mean added latency a decode *token* suffers from prefill
    /// interference (zero when disaggregated).
    pub decode_interference_s: f64,
}

/// Colocated serving: every device interleaves prefill and decode. The
/// sustainable rate is bounded by total work; each decode token queues
/// behind, on average, the prefill work in flight on its device — the
/// head-of-line blocking PD disaggregation removes.
pub fn colocated(profile: &PdProfile, devices: usize, rate_rps: f64) -> PdPlan {
    let per_request = profile.prefill_s + profile.decode_s();
    let capacity = devices as f64 / per_request;
    let utilization = (rate_rps / capacity).min(1.0);
    // A token arriving while its device runs someone's prefill waits, on
    // average, half a prefill, weighted by how often prefill occupies the
    // device (M/D/1-flavored first-order model).
    let prefill_share = profile.prefill_s / per_request;
    let interference =
        0.5 * profile.prefill_s * prefill_share * utilization / (1.0 - utilization).max(1e-6);
    PdPlan {
        prefill_devices: 0,
        decode_devices: devices,
        throughput_rps: capacity,
        decode_interference_s: interference,
    }
}

/// Disaggregated serving with `p` prefill and `d` decode devices.
/// Throughput is the min of the two pools; decode runs interference-free;
/// each request pays the KV handoff (overlapped with decode of others, so
/// it gates throughput only via the decode pool's occupancy).
pub fn disaggregated(profile: &PdProfile, p: usize, d: usize, _rate_rps: f64) -> PdPlan {
    let prefill_capacity = p as f64 / profile.prefill_s;
    let decode_capacity = d as f64 / (profile.decode_s() + profile.handoff_s());
    PdPlan {
        prefill_devices: p,
        decode_devices: d,
        throughput_rps: prefill_capacity.min(decode_capacity),
        decode_interference_s: 0.0,
    }
}

/// Search pool splits of `devices` for the best disaggregated throughput;
/// returns the winner and the colocated baseline.
pub fn best_split(profile: &PdProfile, devices: usize, rate_rps: f64) -> (PdPlan, PdPlan) {
    let baseline = colocated(profile, devices, rate_rps);
    let mut best = disaggregated(profile, 1, devices.saturating_sub(1).max(1), rate_rps);
    for p in 1..devices {
        let plan = disaggregated(profile, p, devices - p, rate_rps);
        if plan.throughput_rps > best.throughput_rps {
            best = plan;
        }
    }
    (best, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gptj_profile_sanity() {
        let p = PdProfile::gptj_paper();
        assert!((p.decode_s() - 1.53).abs() < 0.01);
        assert!(p.handoff_s() < 0.02, "33 MB over 25 GbE ≈ 10 ms");
    }

    #[test]
    fn disaggregation_removes_interference() {
        let p = PdProfile::gptj_paper();
        let colo = colocated(&p, 8, 3.0);
        let (split, _) = best_split(&p, 8, 3.0);
        assert!(colo.decode_interference_s > 0.0);
        assert_eq!(split.decode_interference_s, 0.0);
    }

    #[test]
    fn optimal_split_matches_work_ratio() {
        // Prefill is ~12% of request work; the best split should give it
        // roughly that share of devices.
        let p = PdProfile::gptj_paper();
        let (split, _) = best_split(&p, 16, 5.0);
        assert!(
            (1..=4).contains(&split.prefill_devices),
            "prefill pool {}",
            split.prefill_devices
        );
        assert_eq!(split.prefill_devices + split.decode_devices, 16);
    }

    #[test]
    fn disaggregated_throughput_is_competitive() {
        // PD splits approach colocated throughput (within the handoff
        // tax) while eliminating interference entirely.
        let p = PdProfile::gptj_paper();
        let (split, colo) = best_split(&p, 16, 5.0);
        assert!(split.throughput_rps > 0.85 * colo.throughput_rps);
    }

    #[test]
    fn expensive_handoff_erodes_pd() {
        // Over a 1 Gbps interconnect the 33 MB handoff costs ~0.26 s per
        // request — PD throughput degrades markedly.
        let cheap = PdProfile::gptj_paper();
        let dear = PdProfile {
            interconnect: 1e9 / 8.0,
            ..cheap
        };
        let (s_cheap, _) = best_split(&cheap, 8, 3.0);
        let (s_dear, _) = best_split(&dear, 8, 3.0);
        assert!(s_dear.throughput_rps < s_cheap.throughput_rps);
    }

    #[test]
    fn interference_grows_with_load() {
        let p = PdProfile::gptj_paper();
        let lo = colocated(&p, 8, 1.0);
        let hi = colocated(&p, 8, 4.4); // near capacity (~4.6 rps)
        assert!(hi.decode_interference_s > lo.decode_interference_s * 2.0);
    }
}
