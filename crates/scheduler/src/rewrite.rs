//! Graph-rewrite pre-pass (§3.3 extension point 1).
//!
//! Rewrites run before placement and return a transformed SRG. The
//! built-in rewrite fuses straight-line elementwise chains into single
//! `Fused` nodes: fewer nodes means fewer kernel launches, fewer
//! scheduling decisions, and no chance of a blind policy splitting a
//! pointwise chain across the network.

use genie_srg::{Edge, Node, NodeId, OpKind, Srg};
use std::collections::BTreeMap;

/// Whether an op is a cheap pointwise candidate for fusion.
fn fusible(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Relu | OpKind::Gelu | OpKind::Silu | OpKind::Add | OpKind::Mul | OpKind::Softmax
    )
}

/// Fuse maximal straight-line chains of pointwise ops (each node with one
/// input edge, one output edge, both fusible). Returns the rewritten graph
/// and the number of nodes eliminated.
pub fn fuse_elementwise_chains(srg: &Srg) -> (Srg, usize) {
    // Identify chain interior: fusible node whose single predecessor is
    // fusible and has out-degree 1.
    let mut absorbed_into: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let order = match genie_srg::traverse::topo_order(srg) {
        Ok(o) => o,
        Err(_) => return (srg.clone(), 0),
    };

    // chain_head[n] = the head node this run starts from.
    let mut chain_head: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for &id in &order {
        let node = srg.node(id);
        if !fusible(&node.op) {
            continue;
        }
        // Single data input from a fusible predecessor with fan-out 1?
        let preds: Vec<_> = srg.in_edges(id).collect();
        if preds.len() == 1 {
            let p = preds[0].src;
            if fusible(&srg.node(p).op) && srg.out_degree(p) == 1 {
                let head = chain_head.get(&p).copied().unwrap_or(p);
                chain_head.insert(id, head);
                absorbed_into.insert(id, head);
                continue;
            }
        }
        chain_head.insert(id, id);
    }

    if absorbed_into.is_empty() {
        return (srg.clone(), 0);
    }

    // Build the rewritten graph: absorbed nodes disappear; their head
    // becomes a Fused node accumulating cost; edges re-route.
    let mut out = Srg::new(srg.name.clone());
    let mut remap: BTreeMap<NodeId, NodeId> = BTreeMap::new();

    // Count absorbed per head and accumulate costs.
    let mut absorbed_count: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut fused_cost: BTreeMap<NodeId, genie_srg::CostHints> = BTreeMap::new();
    for (&node, &head) in &absorbed_into {
        *absorbed_count.entry(head).or_insert(0) += 1;
        let acc = fused_cost.entry(head).or_insert(srg.node(head).cost);
        *acc = acc.combine(&srg.node(node).cost);
    }

    for &id in &order {
        if absorbed_into.contains_key(&id) {
            continue;
        }
        let mut node: Node = srg.node(id).clone();
        if let Some(&count) = absorbed_count.get(&id) {
            node.op = OpKind::Fused(count + 1);
            node.name = format!("fused_{}", node.name);
            node.cost = fused_cost[&id];
        }
        let new_id = out.add_node(node);
        remap.insert(id, new_id);
    }

    // The exit of each chain: follow absorbed tail edges to the outside.
    // An edge src is remapped to the head's new id if absorbed.
    let resolve = |id: NodeId| -> NodeId {
        let head = absorbed_into.get(&id).copied().unwrap_or(id);
        remap[&head]
    };
    for edge in srg.edges() {
        // Internal chain edges vanish.
        if absorbed_into.get(&edge.dst).copied()
            == Some(absorbed_into.get(&edge.src).copied().unwrap_or(edge.src))
        {
            continue;
        }
        let mut e: Edge = edge.clone();
        e.src = resolve(edge.src);
        e.dst = resolve(edge.dst);
        out.add_edge(e);
    }

    (out, absorbed_into.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::ElemType;

    #[test]
    fn pointwise_chain_fuses() {
        let ctx = CaptureCtx::new("chain");
        let x = ctx.input("x", [4, 4], ElemType::F32, None);
        let w = ctx.parameter("w", [4, 4], ElemType::F32, None);
        // matmul → relu → gelu → silu: the three activations fuse.
        let y = x.matmul(&w).relu().gelu().silu();
        y.mark_output();
        let srg = ctx.finish().srg;
        let before = srg.node_count();
        let (fused, eliminated) = fuse_elementwise_chains(&srg);
        assert_eq!(eliminated, 2, "gelu and silu absorb into relu");
        assert_eq!(fused.node_count(), before - 2);
        assert!(genie_srg::validate::validate(&fused).is_empty());
        let f = fused
            .nodes()
            .find(|n| matches!(n.op, OpKind::Fused(_)))
            .unwrap();
        assert_eq!(f.op, OpKind::Fused(3));
        // Cost accumulated from all three.
        assert!(f.cost.flops >= 3.0 * 16.0);
    }

    #[test]
    fn fan_out_blocks_fusion() {
        let ctx = CaptureCtx::new("fanout");
        let x = ctx.input("x", [2, 2], ElemType::F32, None);
        let a = x.relu();
        let b = a.gelu(); // a has two consumers → cannot absorb b
        let c = a.silu();
        b.add(&c).mark_output();
        let srg = ctx.finish().srg;
        let (_, eliminated) = fuse_elementwise_chains(&srg);
        assert_eq!(eliminated, 0);
    }

    #[test]
    fn non_pointwise_graph_unchanged() {
        let ctx = CaptureCtx::new("mm");
        let x = ctx.input("x", [2, 2], ElemType::F32, None);
        let w = ctx.parameter("w", [2, 2], ElemType::F32, None);
        x.matmul(&w).mark_output();
        let srg = ctx.finish().srg;
        let (fused, eliminated) = fuse_elementwise_chains(&srg);
        assert_eq!(eliminated, 0);
        assert_eq!(fused.node_count(), srg.node_count());
    }

    #[test]
    fn fused_graph_preserves_connectivity() {
        let ctx = CaptureCtx::new("c");
        let x = ctx.input("x", [2, 2], ElemType::F32, None);
        let y = x.relu().gelu();
        let w = ctx.parameter("w", [2, 2], ElemType::F32, None);
        y.matmul(&w).mark_output();
        let srg = ctx.finish().srg;
        let (fused, _) = fuse_elementwise_chains(&srg);
        // input → fused → matmul, with w → matmul.
        let order = genie_srg::traverse::topo_order(&fused).unwrap();
        assert_eq!(order.len(), fused.node_count());
        let mm = fused.nodes().find(|n| n.op == OpKind::MatMul).unwrap();
        assert_eq!(fused.in_degree(mm.id), 2);
    }
}
