//! The scheduler's side of the semantic lint gate (§3.3 meets GA1xx).
//!
//! `genie-analysis` defines the plan-level passes against its
//! scheduler-neutral [`PlanFacts`] trait; this module implements that
//! trait for [`ExecutionPlan`] and exposes [`lint_plan`], the entry point
//! [`schedule`](crate::schedule::schedule) uses to record diagnostics on
//! every plan it emits.

use crate::plan::ExecutionPlan;
use genie_analysis::{run_plan_passes, LintConfig, PlanFacts, Report, TransferFact};
use genie_cluster::{ClusterState, DevId, Topology};
use genie_srg::{NodeId, Srg, TensorId};

impl PlanFacts for ExecutionPlan {
    fn subject(&self) -> String {
        format!("{}@{}", self.srg.name, self.policy)
    }

    fn srg(&self) -> &Srg {
        &self.srg
    }

    fn node_device(&self, node: NodeId) -> Option<DevId> {
        self.location(node).device()
    }

    fn transfers(&self) -> Vec<TransferFact> {
        self.transfers
            .iter()
            .map(|t| TransferFact {
                edge: t.edge,
                tensor: t.tensor,
                from: t.from.device(),
                to: t.to.device(),
                bytes: t.bytes,
                via_handle: t.via_handle,
            })
            .collect()
    }

    fn pinned_uploads(&self) -> Vec<(TensorId, DevId, u64)> {
        self.pinned_uploads.clone()
    }
}

/// Run every `GA1xx` plan pass over `plan` against the cluster it was
/// scheduled for, returning the canonical report.
pub fn lint_plan(
    plan: &ExecutionPlan,
    topo: &Topology,
    state: &ClusterState,
    cfg: &LintConfig,
) -> Report {
    run_plan_passes(plan, topo, state, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::plan::{CostBreakdown, Location};
    use crate::policy::{RoundRobin, SemanticsAware};
    use crate::schedule::{schedule, schedule_checked};
    use genie_analysis::LintCode;
    use genie_cluster::{GpuSpec, NicSpec};
    use genie_frontend::capture::CaptureCtx;
    use genie_models::{KvState, TransformerConfig, TransformerLm};
    use genie_srg::{Node, NodeId, OpKind, Residency, TensorMeta};
    use std::collections::BTreeMap;

    fn decode_graph() -> Srg {
        let m = TransformerLm::new_spec(TransformerConfig::tiny());
        let ctx = CaptureCtx::new("decode");
        let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
        cap.logits.sample().mark_output();
        for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
            k.mark_output();
            v.mark_output();
        }
        ctx.finish().srg
    }

    fn tiny_device_topo(mem_capacity: u64) -> Topology {
        let mut t = Topology::new();
        let client = t.add_host("client", NicSpec::commodity_25g());
        let server = t.add_host("server", NicSpec::rnic_100g());
        let spec = GpuSpec {
            mem_capacity,
            ..GpuSpec::a100_80gb()
        };
        t.add_device(server, spec);
        t.add_link(client, server, 25e9, 250e-6);
        t
    }

    #[test]
    fn scheduled_plans_carry_deny_clean_diagnostics() {
        let srg = decode_graph();
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let plan = schedule(
            &srg,
            &topo,
            &state,
            &CostModel::ideal_25g(),
            &SemanticsAware::new(),
        );
        let denies: Vec<_> = plan
            .diagnostics
            .iter()
            .filter(|d| d.severity == genie_analysis::Severity::Deny)
            .collect();
        assert!(denies.is_empty(), "real plans lint deny-clean: {denies:?}");
    }

    #[test]
    fn schedule_checked_rejects_overcommitted_device() {
        let srg = decode_graph();
        // A "GPU" with 4 KB of memory: even the tiny model's weights
        // cannot be pinned, so GA101 fires at deny level.
        let topo = tiny_device_topo(4096);
        let state = ClusterState::new();
        let err = schedule_checked(
            &srg,
            &topo,
            &state,
            &CostModel::ideal_25g(),
            &SemanticsAware::new(),
            &LintConfig::new(),
        )
        .expect_err("4 KB device must overcommit");
        assert!(err.has_deny(), "{err}");
        assert!(
            !err.with_code(LintCode::DeviceOvercommit).is_empty(),
            "{err}"
        );
    }

    #[test]
    fn schedule_checked_warn_override_lets_plan_through() {
        let srg = decode_graph();
        let topo = tiny_device_topo(4096);
        let state = ClusterState::new();
        let cfg = LintConfig::new().warn(LintCode::DeviceOvercommit);
        let plan = schedule_checked(
            &srg,
            &topo,
            &state,
            &CostModel::ideal_25g(),
            &SemanticsAware::new(),
            &cfg,
        )
        .expect("demoted to warn, plan goes through");
        assert!(plan
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::DeviceOvercommit));
    }

    #[test]
    fn hand_built_overcommit_plan_is_flagged() {
        let topo = tiny_device_topo(1_000_000);
        let dev = topo.devices()[0].id;
        let mut srg = Srg::new("hand");
        let w = srg.add_node(
            Node::new(NodeId::new(0), OpKind::Parameter, "w")
                .with_residency(Residency::PersistentWeight),
        );
        let mm = srg.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
        srg.connect(
            w,
            mm,
            TensorMeta::new([1024, 1024], genie_srg::ElemType::F32),
        );
        let tensor = srg.edge(genie_srg::EdgeId::new(0)).tensor;
        let plan = ExecutionPlan {
            policy: "hand".into(),
            srg,
            placements: [(w, Location::ClientCpu), (mm, Location::Device(dev))]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
            transfers: Vec::new(),
            pinned_uploads: vec![(tensor, dev, 8_000_000)], // 8 MB into 1 MB
            estimate: CostBreakdown::default(),
            diagnostics: Vec::new(),
        };
        let r = lint_plan(&plan, &topo, &ClusterState::new(), &LintConfig::new());
        assert!(r.has_deny(), "{r}");
        assert_eq!(r.with_code(LintCode::DeviceOvercommit).len(), 1, "{r}");
    }

    #[test]
    fn round_robin_kv_splits_surface_as_warnings() {
        let srg = decode_graph();
        let topo = Topology::rack(4, 25e9);
        let state = ClusterState::new();
        let plan = schedule(&srg, &topo, &state, &CostModel::ideal_25g(), &RoundRobin);
        // Blind placement splits KV caches from their consumers; the lint
        // records it without rejecting the (legal, just bad) plan.
        assert!(
            plan.diagnostics
                .iter()
                .any(|d| d.code == LintCode::KvCacheNotColocated),
            "{:?}",
            plan.diagnostics
        );
    }
}
