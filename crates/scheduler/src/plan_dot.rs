//! DOT rendering of execution plans: the SRG colored by placement, with
//! transfers as labeled cross-device edges — the picture a human asks for
//! when debugging a placement.

use crate::plan::{ExecutionPlan, Location};
use std::fmt::Write as _;

/// Stable fill colors per device index (cycled).
const DEVICE_COLORS: [&str; 6] = [
    "lightblue",
    "lightsalmon",
    "palegreen",
    "plum",
    "khaki",
    "lightcyan",
];

/// Render a plan as Graphviz DOT: nodes grouped into clusters per
/// location, scheduled transfers drawn bold with byte labels, handle
/// references dotted.
pub fn plan_to_dot(plan: &ExecutionPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", plan.srg.name.replace('"', "'"));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    // Group nodes by location.
    let mut locations: Vec<Location> = plan.placements.values().copied().collect();
    locations.sort();
    locations.dedup();
    for (ci, loc) in locations.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{ci} {{");
        let _ = writeln!(out, "    label=\"{loc}\";");
        let color = match loc {
            Location::ClientCpu => "gray92",
            Location::Device(d) => DEVICE_COLORS[d.0 as usize % DEVICE_COLORS.len()],
        };
        let _ = writeln!(out, "    style=filled; color={color};");
        for node in plan.srg.nodes() {
            if plan.location(node.id) == *loc {
                let _ = writeln!(
                    out,
                    "    {} [label=\"{}\\n{}\"];",
                    node.id.index(),
                    node.name.replace('"', "'"),
                    node.op.mnemonic()
                );
            }
        }
        let _ = writeln!(out, "  }}");
    }

    // Edges: transfers annotated, local edges plain.
    for edge in plan.srg.edges() {
        let transfer = plan.transfers.iter().find(|t| t.edge == edge.id);
        match transfer {
            Some(t) if t.via_handle => {
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dotted, label=\"handle\"];",
                    edge.src.index(),
                    edge.dst.index()
                );
            }
            Some(t) => {
                let _ = writeln!(
                    out,
                    "  {} -> {} [penwidth=2, color=red, label=\"{} B\"];",
                    edge.src.index(),
                    edge.dst.index(),
                    t.bytes
                );
            }
            None => {
                let _ = writeln!(out, "  {} -> {};", edge.src.index(), edge.dst.index());
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::policy::RoundRobin;
    use crate::schedule::schedule;
    use genie_cluster::{ClusterState, Topology};
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::ElemType;

    #[test]
    fn plan_dot_shows_placements_and_transfers() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [4, 4], ElemType::F32, None);
        let y = x.relu().gelu();
        y.mark_output();
        let srg = ctx.finish().srg;
        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let plan = schedule(&srg, &topo, &state, &cost, &RoundRobin);
        let dot = plan_to_dot(&plan);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("label=\"client\""));
        assert!(dot.contains("label=\"d0\""));
        assert!(dot.contains(" B\""), "transfer byte labels present");
        assert!(dot.ends_with("}\n"));
    }
}
