//! Runtime hint adaptation (§3.3, extension point 3).
//!
//! Policies decide with a cost model; the cost model is only as good as
//! its network constants. The [`HintAdapter`] folds live measurements —
//! RTT probes, observed transfer goodput, congestion estimates — into
//! exponentially-weighted averages and rewrites the cost model between
//! planning rounds, so decisions like dynamic recomputation track the
//! network the session actually has rather than the one it assumed.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};

/// EWMA-based adapter from live measurements to cost-model constants.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HintAdapter {
    /// Smoothing factor in `(0, 1]`: weight of the newest sample.
    pub alpha: f64,
    rtt_s: Option<f64>,
    bandwidth: Option<f64>,
    /// Samples folded in so far.
    pub samples: usize,
}

impl HintAdapter {
    /// Adapter with the conventional TCP-style smoothing (α = 1/8).
    pub fn new() -> Self {
        HintAdapter {
            alpha: 0.125,
            rtt_s: None,
            bandwidth: None,
            samples: 0,
        }
    }

    /// Fold in a measured round-trip time (e.g. from a transport ping).
    pub fn observe_rtt(&mut self, rtt_s: f64) {
        assert!(rtt_s.is_finite() && rtt_s >= 0.0, "bad RTT sample");
        self.rtt_s = Some(match self.rtt_s {
            Some(prev) => prev + self.alpha * (rtt_s - prev),
            None => rtt_s,
        });
        self.samples += 1;
    }

    /// Fold in an observed bulk transfer: `bytes` delivered in
    /// `seconds` of wall clock.
    pub fn observe_transfer(&mut self, bytes: u64, seconds: f64) {
        if seconds <= 0.0 || bytes == 0 {
            return;
        }
        let goodput = bytes as f64 / seconds;
        self.bandwidth = Some(match self.bandwidth {
            Some(prev) => prev + self.alpha * (goodput - prev),
            None => goodput,
        });
        self.samples += 1;
    }

    /// Current smoothed RTT, if any samples arrived.
    pub fn rtt(&self) -> Option<f64> {
        self.rtt_s
    }

    /// Current smoothed goodput, if any samples arrived.
    pub fn bandwidth(&self) -> Option<f64> {
        self.bandwidth
    }

    /// Rewrite a cost model with the measured constants. One-way latency
    /// is taken as RTT/2. Unmeasured fields keep their priors.
    pub fn apply(&self, cost: &mut CostModel) {
        if let Some(rtt) = self.rtt_s {
            cost.network_latency_s = rtt / 2.0;
        }
        if let Some(bw) = self.bandwidth {
            cost.network_bandwidth = bw;
        }
    }
}

impl Default for HintAdapter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_cluster::GpuSpec;
    use genie_srg::{CostHints, Node, NodeId, OpKind};

    #[test]
    fn ewma_converges_and_damps_outliers() {
        let mut a = HintAdapter::new();
        for _ in 0..100 {
            a.observe_rtt(0.001);
        }
        assert!((a.rtt().unwrap() - 0.001).abs() < 1e-6);
        // One wild outlier barely moves the estimate.
        a.observe_rtt(1.0);
        assert!(a.rtt().unwrap() < 0.13);
        assert_eq!(a.samples, 101);
    }

    #[test]
    fn first_sample_initializes() {
        let mut a = HintAdapter::new();
        assert!(a.rtt().is_none());
        a.observe_rtt(0.004);
        assert_eq!(a.rtt(), Some(0.004));
        a.observe_transfer(1_000_000, 0.01);
        assert_eq!(a.bandwidth(), Some(1e8));
    }

    #[test]
    fn degenerate_transfers_ignored() {
        let mut a = HintAdapter::new();
        a.observe_transfer(0, 1.0);
        a.observe_transfer(100, 0.0);
        assert!(a.bandwidth().is_none());
        assert_eq!(a.samples, 0);
    }

    #[test]
    fn applied_measurements_flip_recompute_decisions() {
        // With the optimistic prior the 64 MB fetch looks fine; after the
        // adapter learns the link is actually slow, recomputation wins by
        // an order of magnitude more — live hints change real decisions.
        let gpu = GpuSpec::a100_80gb();
        let producer = Node::new(NodeId::new(0), OpKind::Gelu, "act")
            .with_cost(CostHints::new(100e6, 64e6, 64e6));
        let mut cost = CostModel::ideal_25g();
        let before = cost.recompute_advantage(&producer, 64e6, &gpu, 0.0);

        let mut adapter = HintAdapter::new();
        for _ in 0..50 {
            adapter.observe_transfer(64_000_000, 2.0); // 32 MB/s measured
            adapter.observe_rtt(0.040);
        }
        adapter.apply(&mut cost);
        assert!((cost.network_bandwidth - 32e6).abs() / 32e6 < 0.01);
        assert!((cost.network_latency_s - 0.020).abs() < 1e-6);
        let after = cost.recompute_advantage(&producer, 64e6, &gpu, 0.0);
        assert!(after > before * 10.0, "before {before}, after {after}");
    }
}
