//! The scheduler's read-only view of the cluster.

use crate::cost::CostModel;
use genie_cluster::{ClusterState, DevId, Topology};

/// Everything `schedule()` may consult: static topology, live state, and
/// the cost model. Bundled so policies have one handle.
#[derive(Clone, Copy)]
pub struct ClusterView<'a> {
    /// Static cluster description.
    pub topo: &'a Topology,
    /// Live allocations / queues / residents / congestion.
    pub state: &'a ClusterState,
    /// Pluggable cost model.
    pub cost: &'a CostModel,
}

impl<'a> ClusterView<'a> {
    /// Construct a view.
    pub fn new(topo: &'a Topology, state: &'a ClusterState, cost: &'a CostModel) -> Self {
        ClusterView { topo, state, cost }
    }

    /// All device ids in the pool.
    pub fn devices(&self) -> Vec<DevId> {
        self.topo.devices().iter().map(|d| d.id).collect()
    }

    /// The device with the most free memory (embedding-table tiering).
    pub fn most_free_memory(&self) -> Option<DevId> {
        self.devices()
            .into_iter()
            .max_by_key(|&d| self.state.mem_free(self.topo, d))
    }

    /// The device with the highest peak compute.
    pub fn fastest_compute(&self) -> Option<DevId> {
        self.devices().into_iter().max_by(|&a, &b| {
            let fa = self.topo.device(a).spec.peak_flops;
            let fb = self.topo.device(b).spec.peak_flops;
            fa.partial_cmp(&fb).expect("finite flops").then(b.cmp(&a))
        })
    }

    /// The device with the highest memory bandwidth.
    pub fn highest_bandwidth(&self) -> Option<DevId> {
        self.devices().into_iter().max_by(|&a, &b| {
            let ba = self.topo.device(a).spec.mem_bandwidth;
            let bb = self.topo.device(b).spec.mem_bandwidth;
            ba.partial_cmp(&bb)
                .expect("finite bandwidth")
                .then(b.cmp(&a))
        })
    }

    /// The least-loaded device by queued seconds, ties to the lowest id.
    pub fn least_loaded(&self) -> Option<DevId> {
        self.devices().into_iter().min_by(|&a, &b| {
            self.state
                .queue_seconds(a)
                .partial_cmp(&self.state.queue_seconds(b))
                .expect("finite queues")
                .then(a.cmp(&b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_cluster::GpuSpec;

    #[test]
    fn selectors_pick_expected_devices() {
        let topo = Topology::heterogeneous_fleet(1, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let view = ClusterView::new(&topo, &state, &cost);
        assert_eq!(view.devices().len(), 3);
        let fastest = view.fastest_compute().unwrap();
        assert_eq!(topo.device(fastest).spec.name, GpuSpec::h100().name);
        let bw = view.highest_bandwidth().unwrap();
        assert_eq!(topo.device(bw).spec.name, "BW-OPT");
    }

    #[test]
    fn least_loaded_tracks_queues() {
        let topo = Topology::rack(3, 25e9);
        let mut state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        state.enqueue_work(DevId(0), 5.0);
        state.enqueue_work(DevId(1), 1.0);
        let view = ClusterView::new(&topo, &state, &cost);
        assert_eq!(view.least_loaded(), Some(DevId(2)));
    }
}
