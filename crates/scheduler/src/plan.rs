//! Execution plans: the scheduler's output (§3.3).
//!
//! `schedule(srg, cluster_state, policy)` returns the SRG *annotated* with
//! concrete device bindings per node and explicit transfer instructions
//! per cross-device edge, plus a cost estimate — a declarative plan a
//! backend can execute without policy knowledge.

use genie_cluster::DevId;
use genie_srg::{EdgeId, NodeId, Srg, TensorId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Location {
    /// On the client's CPU (sources, sampling, glue).
    ClientCpu,
    /// On a remote accelerator.
    Device(DevId),
}

impl Location {
    /// The device, if remote.
    pub fn device(self) -> Option<DevId> {
        match self {
            Location::Device(d) => Some(d),
            Location::ClientCpu => None,
        }
    }

    /// Whether this location is remote.
    pub fn is_remote(self) -> bool {
        matches!(self, Location::Device(_))
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::ClientCpu => write!(f, "client"),
            Location::Device(d) => write!(f, "{d}"),
        }
    }
}

/// One scheduled data movement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// The edge this transfer realizes.
    pub edge: EdgeId,
    /// Logical tensor being moved (fan-out edges to the same destination
    /// share one transfer).
    pub tensor: TensorId,
    /// Source location.
    pub from: Location,
    /// Destination location.
    pub to: Location,
    /// Payload bytes.
    pub bytes: u64,
    /// Whether the payload is addressed by a resident-object handle
    /// (weights / KV caches already pinned remotely) — a handle reference
    /// costs bytes only the first time.
    pub via_handle: bool,
}

/// Cost estimate attached to a plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Seconds of kernel execution on the critical path.
    pub compute_s: f64,
    /// Seconds of network transfer on the critical path.
    pub transfer_s: f64,
    /// Seconds of queueing before execution begins.
    pub queue_s: f64,
    /// Total payload bytes moved.
    pub bytes_moved: f64,
}

impl CostBreakdown {
    /// Estimated end-to-end latency.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.transfer_s + self.queue_s
    }
}

/// The scheduler's output: placements, transfers, and the estimate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Name of the policy that produced this plan.
    pub policy: String,
    /// The (possibly rewritten) graph this plan executes.
    pub srg: Srg,
    /// Location per node, indexed by node id.
    pub placements: BTreeMap<NodeId, Location>,
    /// Scheduled transfers in execution order.
    pub transfers: Vec<Transfer>,
    /// Tensors that must be uploaded once and pinned as resident objects
    /// (weights, caches), with their destination and size.
    pub pinned_uploads: Vec<(TensorId, DevId, u64)>,
    /// Cost estimate.
    pub estimate: CostBreakdown,
    /// Findings from the plan-level lint passes (`GA1xx`), recorded by
    /// [`schedule`](crate::schedule::schedule) so callers can inspect why
    /// a placement is suspect without re-running the analyzer.
    #[serde(default)]
    pub diagnostics: Vec<genie_analysis::Diagnostic>,
}

impl ExecutionPlan {
    /// Stable attribution label for this plan: `<graph>@<policy>`. Carried
    /// on trace events so a kernel or transfer can be traced back to the
    /// scheduling decision that caused it.
    pub fn label(&self) -> String {
        format!("{}@{}", self.srg.name, self.policy)
    }

    /// Location of a node (defaults to client for unplaced nodes).
    pub fn location(&self, node: NodeId) -> Location {
        self.placements
            .get(&node)
            .copied()
            .unwrap_or(Location::ClientCpu)
    }

    /// Total bytes crossing the network, excluding handle-addressed reuse.
    pub fn network_bytes(&self) -> u64 {
        self.transfers
            .iter()
            .filter(|t| !t.via_handle)
            .map(|t| t.bytes)
            .sum::<u64>()
            + self.pinned_uploads.iter().map(|(_, _, b)| *b).sum::<u64>()
    }

    /// Number of distinct devices used.
    pub fn devices_used(&self) -> usize {
        let devs: std::collections::BTreeSet<DevId> = self
            .placements
            .values()
            .filter_map(|l| l.device())
            .collect();
        devs.len()
    }

    /// Render a compact human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "plan[{}]: {} nodes on {} devices, {} transfers ({} B), est {:.3}s",
            self.policy,
            self.placements.len(),
            self.devices_used(),
            self.transfers.len(),
            self.network_bytes(),
            self.estimate.total_s(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_helpers() {
        let c = Location::ClientCpu;
        let d = Location::Device(DevId(3));
        assert!(!c.is_remote());
        assert!(d.is_remote());
        assert_eq!(d.device(), Some(DevId(3)));
        assert_eq!(c.device(), None);
        assert_eq!(format!("{d}"), "d3");
        assert_eq!(format!("{c}"), "client");
    }

    #[test]
    fn network_bytes_excludes_handle_reuse() {
        let plan = ExecutionPlan {
            policy: "test".into(),
            srg: Srg::new("g"),
            placements: BTreeMap::new(),
            transfers: vec![
                Transfer {
                    edge: EdgeId::new(0),
                    tensor: TensorId::new(0),
                    from: Location::ClientCpu,
                    to: Location::Device(DevId(0)),
                    bytes: 100,
                    via_handle: false,
                },
                Transfer {
                    edge: EdgeId::new(1),
                    tensor: TensorId::new(1),
                    from: Location::Device(DevId(0)),
                    to: Location::Device(DevId(0)),
                    bytes: 999,
                    via_handle: true,
                },
            ],
            pinned_uploads: vec![(TensorId::new(2), DevId(0), 50)],
            estimate: CostBreakdown::default(),
            diagnostics: Vec::new(),
        };
        assert_eq!(plan.network_bytes(), 150);
    }

    #[test]
    fn cost_breakdown_totals() {
        let c = CostBreakdown {
            compute_s: 1.0,
            transfer_s: 2.0,
            queue_s: 0.5,
            bytes_moved: 10.0,
        };
        assert_eq!(c.total_s(), 3.5);
    }
}
