//! The pluggable cost model (§3.3): end-to-end latency as a function of
//! compute, transfers, and queuing.

use genie_cluster::{ClusterState, DevId, GpuSpec, Topology};
use genie_srg::Node;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key for one memoized roofline estimate: the bit patterns of every
/// quantity [`CostModel::kernel_time`] actually reads. Keying on derated
/// denominators (not on op/shape labels) means a mutated efficiency field
/// or a different `GpuSpec` can never be served a stale entry.
type KernelTimeKey = (u64, u64, u64, u64, u64);

/// Memoization table for [`CostModel::kernel_time`]. Scheduling a graph
/// calls the roofline estimator once per (node, candidate device) per
/// pass; repeated `schedule`/`critical_path` invocations over a serving
/// loop recompute identical estimates thousands of times. Model zoos have
/// few distinct (flops, bytes, device) combinations, so a small table
/// absorbs nearly all of them.
#[derive(Debug, Default)]
pub struct KernelTimeCache {
    entries: Mutex<HashMap<KernelTimeKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl KernelTimeCache {
    fn lookup(&self, key: KernelTimeKey, compute: impl FnOnce() -> f64) -> f64 {
        if let Some(&v) = self.entries.lock().expect("cost cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        let v = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("cost cache poisoned")
            .insert(key, v);
        v
    }

    fn stats(&self) -> CostCacheStats {
        CostCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cost cache poisoned").len(),
        }
    }

    fn clear(&self) {
        self.entries.lock().expect("cost cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time counters for the kernel-time cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostCacheStats {
    /// Estimates served from the table.
    pub hits: u64,
    /// Estimates computed and inserted.
    pub misses: u64,
    /// Distinct (flops, bytes, device) keys resident.
    pub entries: usize,
}

impl CostCacheStats {
    /// Fraction of lookups served from the table (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cost-model parameters. Roofline kernel estimates are scaled by
/// empirical efficiency factors (real frameworks reach a fraction of peak,
/// especially at small batch), and transfers are priced with a per-call
/// overhead plus serialized payload time.
///
/// Kernel-time estimates are memoized in a cache shared by clones of this
/// model (equality, serialization, and debug output ignore it).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Fraction of peak FLOP/s actually achieved by compute-bound kernels.
    pub compute_efficiency: f64,
    /// Fraction of peak memory bandwidth achieved by memory-bound kernels.
    pub memory_efficiency: f64,
    /// Fixed cost charged per remote invocation (RPC overhead).
    pub per_call_overhead_s: f64,
    /// Effective network goodput in bytes/s (≤ line rate).
    pub network_bandwidth: f64,
    /// One-way network latency in seconds.
    pub network_latency_s: f64,
    #[serde(skip, default)]
    cache: Arc<KernelTimeCache>,
}

impl PartialEq for CostModel {
    fn eq(&self, other: &Self) -> bool {
        // The cache is an implementation detail, not part of model identity.
        self.compute_efficiency == other.compute_efficiency
            && self.memory_efficiency == other.memory_efficiency
            && self.per_call_overhead_s == other.per_call_overhead_s
            && self.network_bandwidth == other.network_bandwidth
            && self.network_latency_s == other.network_latency_s
    }
}

impl CostModel {
    /// Pure roofline (no efficiency derating) over an ideal zero-copy
    /// 25 GbE network — the §3.4 target datapath.
    pub fn ideal_25g() -> Self {
        CostModel {
            compute_efficiency: 1.0,
            memory_efficiency: 1.0,
            per_call_overhead_s: 8e-6,
            network_bandwidth: 25e9 / 8.0,
            network_latency_s: 250e-6,
            cache: Arc::default(),
        }
    }

    /// Calibrated to the paper's measured stack: PyTorch kernels at
    /// realistic efficiency, TensorPipe RPC from Python (0.45 s/call,
    /// 1.4 GB/s goodput). See `genie-bench::calibration` for the fit.
    pub fn paper_stack() -> Self {
        CostModel {
            compute_efficiency: 0.08,
            memory_efficiency: 0.20,
            per_call_overhead_s: 0.45,
            network_bandwidth: 1.4e9,
            network_latency_s: 250e-6,
            cache: Arc::default(),
        }
    }

    /// Per-tier derating of the roofline inputs: `(flops_scale,
    /// bytes_scale)` for a [`genie_analysis::KernelTier`] label. The
    /// quantized tiers move fewer bytes (int8 = ¼, fp16 = ½ of f32
    /// traffic) and ride the device's higher low-precision MAC
    /// throughput (modeled as 4×/2× effective FLOP rate); every f32
    /// tier is the reference. Unknown labels are priced as f32 so a
    /// malformed attribute can only over-estimate, never hide cost.
    pub fn tier_factors(tier: &str) -> (f64, f64) {
        match tier {
            "int8" => (0.25, 0.25),
            "fp16" => (0.5, 0.5),
            _ => (1.0, 1.0),
        }
    }

    /// Roofline kernel-time estimate for `node` on `gpu`, with efficiency
    /// derating applied to whichever side binds. A `kernel_tier` node
    /// attribute (see `genie_analysis::KERNEL_TIER_ATTR`) scales the
    /// roofline inputs by [`CostModel::tier_factors`], so quantized
    /// plans are priced cheaper exactly where GA3xx prices them looser.
    /// Memoized: repeated calls with the same (flops, bytes, derated
    /// device) are served from the model's cache.
    pub fn kernel_time(&self, node: &Node, gpu: &GpuSpec) -> f64 {
        let tier = node
            .attrs
            .get(genie_analysis::KERNEL_TIER_ATTR)
            .map(String::as_str)
            .unwrap_or("");
        let (fs, bs) = Self::tier_factors(tier);
        let flops = node.cost.flops * fs;
        let bytes = node.cost.bytes_total() * bs;
        let key = (
            flops.to_bits(),
            bytes.to_bits(),
            (gpu.peak_flops * self.compute_efficiency).to_bits(),
            (gpu.mem_bandwidth * self.memory_efficiency).to_bits(),
            gpu.kernel_launch_overhead.to_bits(),
        );
        self.cache.lookup(key, || {
            let compute = flops / (gpu.peak_flops * self.compute_efficiency);
            let memory = bytes / (gpu.mem_bandwidth * self.memory_efficiency);
            gpu.kernel_launch_overhead + compute.max(memory)
        })
    }

    /// The un-memoized roofline estimate at the f32 reference tier
    /// (reference for the cached path).
    pub fn kernel_time_uncached(&self, node: &Node, gpu: &GpuSpec) -> f64 {
        let compute = node.cost.flops / (gpu.peak_flops * self.compute_efficiency);
        let memory = node.cost.bytes_total() / (gpu.mem_bandwidth * self.memory_efficiency);
        gpu.kernel_launch_overhead + compute.max(memory)
    }

    /// Hit/miss/occupancy counters for the kernel-time cache.
    pub fn cache_stats(&self) -> CostCacheStats {
        self.cache.stats()
    }

    /// Drop every memoized estimate and reset the counters.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Time to move `bytes` across the network in one call.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.per_call_overhead_s + bytes / self.network_bandwidth + self.network_latency_s
    }

    /// Time to move `bytes` as part of an already-open call (no fresh
    /// per-call overhead).
    pub fn streaming_time(&self, bytes: f64) -> f64 {
        bytes / self.network_bandwidth
    }

    /// Queue-aware start delay on a device.
    pub fn queue_delay(&self, state: &ClusterState, dev: DevId) -> f64 {
        state.queue_seconds(dev)
    }

    /// Total estimated graph compute time on one device (no overlap).
    pub fn total_kernel_time(&self, srg: &genie_srg::Srg, gpu: &GpuSpec) -> f64 {
        srg.nodes()
            .filter(|n| !n.op.is_source() && !n.op.is_metadata_only())
            .map(|n| self.kernel_time(n, gpu))
            .sum()
    }

    /// Price of recomputing `node` remotely versus fetching its output of
    /// `bytes` over a link with `congestion` background load: positive
    /// means recomputation wins (§3.3 "dynamic recomputation").
    pub fn recompute_advantage(
        &self,
        node: &Node,
        bytes: f64,
        gpu: &GpuSpec,
        congestion: f64,
    ) -> f64 {
        let effective_bw = self.network_bandwidth * (1.0 - congestion.clamp(0.0, 0.99));
        let fetch = self.per_call_overhead_s + bytes / effective_bw + self.network_latency_s;
        let recompute = self.kernel_time(node, gpu);
        fetch - recompute
    }

    /// Relative price of a byte moved versus a flop computed — the
    /// exchange rate used when ranking critical paths.
    pub fn bytes_per_flop(&self, gpu: &GpuSpec) -> f64 {
        (gpu.peak_flops * self.compute_efficiency) / self.network_bandwidth
    }

    /// Convenience: the spec of a device in a topology.
    pub fn gpu<'a>(&self, topo: &'a Topology, dev: DevId) -> &'a GpuSpec {
        &topo.device(dev).spec
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ideal_25g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_srg::{CostHints, NodeId, OpKind};

    fn node(flops: f64, bytes: f64) -> Node {
        Node::new(NodeId::new(0), OpKind::MatMul, "k").with_cost(CostHints::new(
            flops,
            bytes / 2.0,
            bytes / 2.0,
        ))
    }

    #[test]
    fn kernel_time_rooflines() {
        let m = CostModel::ideal_25g();
        let gpu = GpuSpec::a100_80gb();
        // 312 TFLOP, no memory → 1 s compute-bound.
        let t = m.kernel_time(&node(312e12, 0.0), &gpu);
        assert!((t - 1.0).abs() < 1e-3);
        // 2 TB of traffic, no flops → 1 s memory-bound.
        let t = m.kernel_time(&node(0.0, 2e12), &gpu);
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    fn efficiency_derates_kernels() {
        let ideal = CostModel::ideal_25g();
        let real = CostModel::paper_stack();
        let gpu = GpuSpec::a100_80gb();
        let n = node(1e12, 1e9);
        assert!(real.kernel_time(&n, &gpu) > ideal.kernel_time(&n, &gpu));
    }

    #[test]
    fn transfer_time_components() {
        let m = CostModel::ideal_25g();
        // 3.125 GB at 3.125 GB/s = 1 s + overheads.
        let t = m.transfer_time(3.125e9);
        assert!(t > 1.0 && t < 1.001);
        assert!(m.streaming_time(3.125e9) < t);
    }

    #[test]
    fn congestion_flips_recompute_decision() {
        let m = CostModel::ideal_25g();
        let gpu = GpuSpec::a100_80gb();
        // A cheap intermediate (1 GFLOP ≈ 3 µs) producing 100 MB.
        let n = node(1e9, 1e6);
        let clear = m.recompute_advantage(&n, 100e6, &gpu, 0.0);
        let congested = m.recompute_advantage(&n, 100e6, &gpu, 0.9);
        assert!(congested > clear);
        assert!(
            congested > 0.0,
            "under 90% congestion recomputation must win"
        );
    }

    #[test]
    fn cached_kernel_time_matches_uncached() {
        let m = CostModel::paper_stack();
        let gpu = GpuSpec::a100_80gb();
        let n = node(3e12, 5e9);
        let uncached = m.kernel_time_uncached(&n, &gpu);
        assert_eq!(m.kernel_time(&n, &gpu), uncached);
        assert_eq!(
            m.kernel_time(&n, &gpu),
            uncached,
            "hit must serve same value"
        );
        let stats = m.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mutated_efficiency_is_not_served_stale() {
        let mut m = CostModel::ideal_25g();
        let gpu = GpuSpec::a100_80gb();
        let n = node(312e12, 0.0);
        let before = m.kernel_time(&n, &gpu);
        m.compute_efficiency = 0.5;
        let after = m.kernel_time(&n, &gpu);
        assert_eq!(after, m.kernel_time_uncached(&n, &gpu));
        assert!(after > before, "halved efficiency must cost more");
    }

    #[test]
    fn clear_cache_resets_counters() {
        let m = CostModel::ideal_25g();
        let gpu = GpuSpec::a100_80gb();
        m.kernel_time(&node(1e12, 1e9), &gpu);
        m.clear_cache();
        assert_eq!(m.cache_stats(), CostCacheStats::default());
        assert_eq!(m.cache_stats().hit_rate(), 0.0);
    }

    #[test]
    fn clones_share_the_cache() {
        let m = CostModel::ideal_25g();
        let gpu = GpuSpec::a100_80gb();
        let n = node(2e12, 3e9);
        let clone = m.clone();
        clone.kernel_time(&n, &gpu);
        m.kernel_time(&n, &gpu);
        let stats = m.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn serde_roundtrip_ignores_cache() {
        let m = CostModel::paper_stack();
        let gpu = GpuSpec::a100_80gb();
        m.kernel_time(&node(1e12, 1e9), &gpu);
        let json = serde_json::to_string(&m).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.cache_stats(), CostCacheStats::default());
    }

    #[test]
    fn quantized_tiers_are_priced_cheaper() {
        let m = CostModel::ideal_25g();
        let gpu = GpuSpec::a100_80gb();
        let f32_time = m.kernel_time(&node(1e12, 1e12), &gpu);
        for (tier, scale) in [("int8", 0.25), ("fp16", 0.5)] {
            let mut n = node(1e12, 1e12);
            n.attrs
                .insert(genie_analysis::KERNEL_TIER_ATTR.into(), tier.into());
            let t = m.kernel_time(&n, &gpu);
            let expected =
                gpu.kernel_launch_overhead + (f32_time - gpu.kernel_launch_overhead) * scale;
            assert!(
                (t - expected).abs() < 1e-9,
                "{tier}: {t} vs expected {expected}"
            );
        }
        // An unknown tier label falls back to f32 pricing.
        let mut n = node(1e12, 1e12);
        n.attrs
            .insert(genie_analysis::KERNEL_TIER_ATTR.into(), "fp4".into());
        assert_eq!(m.kernel_time(&n, &gpu), f32_time);
    }

    #[test]
    fn paper_stack_decode_step_time_matches_measurement() {
        // One GPT-J decode step on A100: ~12.1 GB of weight reads. At 20%
        // of 2 TB/s that is ~30 ms — the per-token kernel time implied by
        // the paper's local decode row (1.53 s / 50 tokens).
        let m = CostModel::paper_stack();
        let gpu = GpuSpec::a100_80gb();
        let cfg_bytes = 12.1e9;
        let n = node(12.1e9, cfg_bytes);
        let t = m.kernel_time(&n, &gpu);
        assert!((0.025..0.040).contains(&t), "decode step {t}s");
    }
}
