//! Pipelined CNN inference analysis (§3.3).
//!
//! The SRG's `pipeline_stage` annotations reveal consecutive convolutional
//! stages. Scheduling stage *i* of image *j* concurrently with stage *i+1*
//! of image *j−1* overlaps communication and computation: with `S` stages
//! on `D` devices and `B` images, the pipelined makespan approaches
//! `(S + B − 1) · t_stage` instead of the serial `B · S · t_stage`.

use crate::cost::CostModel;
use genie_cluster::Topology;
use genie_srg::Srg;
use std::collections::BTreeMap;

/// Per-stage summary extracted from an annotated SRG.
#[derive(Clone, Debug, PartialEq)]
pub struct StageProfile {
    /// Stage index.
    pub stage: usize,
    /// Total kernel seconds for this stage on the reference device.
    pub compute_s: f64,
    /// Bytes leaving this stage toward the next.
    pub boundary_bytes: f64,
}

/// Extract stage profiles from `pipeline_stage` annotations. Returns an
/// empty vector when the graph carries no pipeline annotations.
pub fn stage_profiles(srg: &Srg, topo: &Topology, cost: &CostModel) -> Vec<StageProfile> {
    let gpu = match topo.devices().first() {
        Some(d) => &d.spec,
        None => return Vec::new(),
    };
    let mut stages: BTreeMap<usize, StageProfile> = BTreeMap::new();
    for node in srg.nodes() {
        let Some(stage) = node
            .attrs
            .get("pipeline_stage")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let entry = stages.entry(stage).or_insert(StageProfile {
            stage,
            compute_s: 0.0,
            boundary_bytes: 0.0,
        });
        if !node.op.is_source() {
            entry.compute_s += cost.kernel_time(node, gpu);
        }
        // Boundary bytes: edges leaving this stage for a later one.
        for edge in srg.out_edges(node.id) {
            let dst_stage = srg
                .node(edge.dst)
                .attrs
                .get("pipeline_stage")
                .and_then(|s| s.parse::<usize>().ok());
            if dst_stage.is_some_and(|d| d > stage) {
                entry.boundary_bytes += edge.transfer_bytes();
            }
        }
    }
    stages.into_values().collect()
}

/// Estimated makespan for `batch` inputs executed serially on one device.
pub fn serial_makespan(stages: &[StageProfile], batch: usize) -> f64 {
    let per_item: f64 = stages.iter().map(|s| s.compute_s).sum();
    per_item * batch as f64
}

/// Estimated makespan for `batch` inputs pipelined across `devices`
/// devices connected by an interconnect of `interconnect_bytes` B/s.
///
/// Stages are grouped contiguously onto devices. Transfers overlap
/// compute (full-duplex NICs, async copies), so a group's steady-state
/// interval is `max(compute, boundary/bw)` — the paper's "overlapping
/// communication and computation". The pipeline fills once, then emits
/// one result per interval.
///
/// Whether this beats [`serial_makespan`] depends on the compute-to-
/// boundary-bytes ratio versus the interconnect: conv stages at ~9·Cin
/// FLOP/byte need NVLink-class links to win against a single A100 that
/// fits the model — exactly the crossover the pipelining ablation sweeps.
pub fn pipelined_makespan(
    stages: &[StageProfile],
    batch: usize,
    devices: usize,
    interconnect_bytes: f64,
) -> f64 {
    if stages.is_empty() || batch == 0 {
        return 0.0;
    }
    let devices = devices.max(1).min(stages.len());
    // Contiguous grouping: balance stage compute across devices greedily.
    let total: f64 = stages.iter().map(|s| s.compute_s).sum();
    let target = total / devices as f64;
    let mut groups: Vec<(f64, f64)> = Vec::new(); // (compute, boundary bytes out)
    let mut acc = 0.0;
    let mut boundary;
    let mut remaining = devices;
    for (i, s) in stages.iter().enumerate() {
        acc += s.compute_s;
        boundary = s.boundary_bytes;
        let stages_left = stages.len() - i - 1;
        if (acc >= target && remaining > 1 && stages_left >= remaining - 1) || stages_left == 0 {
            groups.push((acc, boundary));
            acc = 0.0;
            remaining = remaining.saturating_sub(1);
        }
    }
    let xfer = |b: f64| b / interconnect_bytes;
    // Steady-state interval: slowest group with overlap.
    let interval = groups
        .iter()
        .map(|(c, b)| c.max(xfer(*b)))
        .fold(0.0, f64::max);
    // Fill latency: one traversal (no overlap available for the first
    // item).
    let fill: f64 = groups.iter().map(|(c, b)| c + xfer(*b)).sum();
    fill + interval * (batch as f64 - 1.0)
}

/// The interconnect bandwidth (bytes/s) above which pipelining `stages`
/// over `devices` devices beats a single device for large batches: the
/// steady-state break-even point.
pub fn pipeline_breakeven_bandwidth(stages: &[StageProfile], devices: usize) -> f64 {
    if stages.is_empty() {
        return 0.0;
    }
    let total: f64 = stages.iter().map(|s| s.compute_s).sum();
    let max_boundary = stages.iter().map(|s| s.boundary_bytes).fold(0.0, f64::max);
    // Pipelined interval must drop below the serial per-item time:
    // max(total/D, boundary/bw) < total  ⇒  bw > boundary / total.
    let _ = devices;
    max_boundary / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_frontend::capture::CaptureCtx;
    use genie_frontend::patterns;
    use genie_models::{CnnConfig, SimpleCnn};
    use genie_srg::ElemType;

    fn annotated_cnn() -> Srg {
        let m = SimpleCnn::new_spec(CnnConfig::resnet_like());
        let ctx = CaptureCtx::new("cnn");
        m.capture_inference(&ctx, 1, None).mark_output();
        let mut srg = ctx.finish().srg;
        patterns::run_all(&mut srg);
        srg
    }

    #[test]
    fn profiles_cover_all_stages() {
        let srg = annotated_cnn();
        let topo = Topology::rack(4, 25e9);
        let cost = CostModel::ideal_25g();
        let stages = stage_profiles(&srg, &topo, &cost);
        assert_eq!(stages.len(), 8);
        assert!(stages.iter().all(|s| s.compute_s > 0.0));
        // Interior stages ship feature maps onward.
        assert!(stages[..7].iter().all(|s| s.boundary_bytes > 0.0));
    }

    #[test]
    fn pipelining_beats_serial_with_fast_interconnect() {
        let srg = annotated_cnn();
        let topo = Topology::rack(4, 25e9);
        let cost = CostModel::paper_stack();
        let stages = stage_profiles(&srg, &topo, &cost);
        let batch = 256;
        let serial = serial_makespan(&stages, batch);
        // NVLink-class interconnect: 300 GB/s.
        let piped = pipelined_makespan(&stages, batch, 4, 300e9);
        assert!(
            piped < serial,
            "pipelined {piped:.4}s must beat serial {serial:.4}s on NVLink"
        );
        assert!(serial / piped > 2.0, "speedup {}", serial / piped);
    }

    #[test]
    fn commodity_ethernet_pipelining_loses() {
        // The honest physics: ResNet boundary tensors at ~9·Cin FLOP/byte
        // cannot amortize a 25 GbE hop against an A100 that fits the
        // whole model. The scheduler must be able to *see* this.
        let srg = annotated_cnn();
        let topo = Topology::rack(4, 25e9);
        let cost = CostModel::paper_stack();
        let stages = stage_profiles(&srg, &topo, &cost);
        let batch = 256;
        let serial = serial_makespan(&stages, batch);
        let piped = pipelined_makespan(&stages, batch, 4, 25e9 / 8.0);
        assert!(piped > serial, "25 GbE pipelining should not pay");
        // And the break-even bandwidth separates the two regimes.
        let breakeven = pipeline_breakeven_bandwidth(&stages, 4);
        assert!(breakeven > 25e9 / 8.0);
        assert!(breakeven < 300e9);
    }

    #[test]
    fn single_item_prefers_serial() {
        let srg = annotated_cnn();
        let topo = Topology::rack(4, 25e9);
        let cost = CostModel::ideal_25g();
        let stages = stage_profiles(&srg, &topo, &cost);
        let serial = serial_makespan(&stages, 1);
        let piped = pipelined_makespan(&stages, 1, 4, 300e9);
        // A single image gains nothing from pipelining and pays
        // boundary transfers.
        assert!(piped >= serial);
    }

    #[test]
    fn no_annotations_no_stages() {
        let ctx = CaptureCtx::new("plain");
        let x = ctx.input("x", [2, 2], ElemType::F32, None);
        x.relu().mark_output();
        let srg = ctx.finish().srg;
        let topo = Topology::rack(2, 25e9);
        let cost = CostModel::ideal_25g();
        assert!(stage_profiles(&srg, &topo, &cost).is_empty());
        assert_eq!(pipelined_makespan(&[], 10, 2, 1e9), 0.0);
    }
}
