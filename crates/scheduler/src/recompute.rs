//! Dynamic recomputation (§3.3): trade a cheap re-execution for a
//! congested transfer.
//!
//! When the network is contended, fetching an intermediate tensor from a
//! remote producer can cost more than recomputing it from inputs that are
//! already local to the consumer. This pass inspects a *placed* plan,
//! prices each cross-device edge under current congestion, and marks
//! edges where recomputation wins. Backends honor the marks by re-running
//! the producer on the consumer's device instead of scheduling the
//! transfer.

use crate::cost::CostModel;
use crate::plan::{ExecutionPlan, Location};
use genie_cluster::{ClusterState, Topology};
use genie_srg::EdgeId;

/// One recomputation decision.
#[derive(Clone, Debug, PartialEq)]
pub struct RecomputeDecision {
    /// The edge whose transfer is replaced.
    pub edge: EdgeId,
    /// Estimated seconds saved.
    pub saved_s: f64,
}

/// Evaluate every scheduled transfer in `plan` and return the edges where
/// recomputing the producer on the destination device beats the (possibly
/// congested) transfer. A producer is only eligible when all of *its*
/// inputs are already present at the destination (otherwise recomputation
/// would just move the transfer one hop upstream).
pub fn recomputation_candidates(
    plan: &ExecutionPlan,
    topo: &Topology,
    state: &ClusterState,
    cost: &CostModel,
) -> Vec<RecomputeDecision> {
    let mut out = Vec::new();
    for t in &plan.transfers {
        if t.via_handle {
            continue;
        }
        let (Location::Device(_src_dev), Location::Device(dst_dev)) = (t.from, t.to) else {
            // Client-involved transfers cannot be recomputed away: the
            // client holds the original data.
            continue;
        };
        let edge = plan.srg.edge(t.edge);
        let producer = plan.srg.node(edge.src);
        if producer.op.is_source() {
            continue;
        }
        // Eligibility: every producer input already sits at dst.
        let inputs_local = plan.srg.in_edges(edge.src).all(|e| {
            plan.location(e.src) == Location::Device(dst_dev)
                || state
                    .resident(e.tensor.0)
                    .is_some_and(|o| o.device == dst_dev)
        });
        if !inputs_local {
            continue;
        }
        let src_host = topo.device(_src_dev).host.0;
        let dst_host = topo.device(dst_dev).host.0;
        let congestion = state.congestion(src_host, dst_host);
        let advantage = cost.recompute_advantage(
            producer,
            t.bytes as f64,
            &topo.device(dst_dev).spec,
            congestion,
        );
        if advantage > 0.0 {
            out.push(RecomputeDecision {
                edge: t.edge,
                saved_s: advantage,
            });
        }
    }
    out
}

/// Apply the decisions: drop the transfers and tag the producers with a
/// `recompute_on` attribute naming the destination device. Returns seconds
/// saved in total.
pub fn apply_recomputation(plan: &mut ExecutionPlan, decisions: &[RecomputeDecision]) -> f64 {
    let mut saved = 0.0;
    for d in decisions {
        let Some(pos) = plan.transfers.iter().position(|t| t.edge == d.edge) else {
            continue;
        };
        let t = plan.transfers.remove(pos);
        let edge = plan.srg.edge(d.edge);
        let src = edge.src;
        if let Location::Device(dev) = t.to {
            plan.srg
                .node_mut(src)
                .attrs
                .insert("recompute_on".into(), dev.to_string());
        }
        saved += d.saved_s;
        plan.estimate.transfer_s = (plan.estimate.transfer_s - d.saved_s).max(0.0);
        plan.estimate.bytes_moved -= t.bytes as f64;
    }
    saved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use crate::schedule::schedule;
    use genie_frontend::capture::CaptureCtx;
    use genie_srg::ElemType;

    /// Graph with a cheap wide intermediate: w → relu (cheap, big output)
    /// → reduce-ish matmul on another device.
    fn graph() -> genie_srg::Srg {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [512, 512], ElemType::F32, None);
        let a = x.relu(); // cheap, 1 MB output
        let w = ctx.parameter("w", [512, 8], ElemType::F32, None);
        let y = a.matmul(&w);
        y.mark_output();
        ctx.finish().srg
    }

    fn fixture(congestion: f64) -> (ExecutionPlan, Topology, ClusterState, CostModel) {
        let srg = graph();
        let topo = Topology::rack(2, 25e9);
        let mut state = ClusterState::new();
        // Congest every host pair.
        for a in 0..3u32 {
            for b in a + 1..3 {
                state.set_congestion(a, b, congestion);
            }
        }
        let cost = CostModel::ideal_25g();
        // Round-robin forcibly splits relu and matmul across devices.
        let plan = schedule(&srg, &topo, &state, &cost, &RoundRobin);
        (plan, topo, state, cost)
    }

    #[test]
    fn congestion_creates_candidates() {
        let (plan, topo, state, cost) = fixture(0.95);
        let candidates = recomputation_candidates(&plan, &topo, &state, &cost);
        // Under 95% congestion the 1 MB relu output is worth recomputing
        // if its input (x) reaches both devices anyway… x comes from the
        // client though, so eligibility depends on placement; assert the
        // mechanism is consistent rather than a specific count:
        for c in &candidates {
            assert!(c.saved_s > 0.0);
        }
    }

    #[test]
    fn apply_removes_transfers_and_tags_nodes() {
        let (mut plan, topo, state, cost) = fixture(0.95);
        let candidates = recomputation_candidates(&plan, &topo, &state, &cost);
        if candidates.is_empty() {
            return; // placement happened to avoid a device-device edge
        }
        let before = plan.transfers.len();
        let saved = apply_recomputation(&mut plan, &candidates);
        assert!(saved > 0.0);
        assert_eq!(plan.transfers.len(), before - candidates.len());
        assert!(plan
            .srg
            .nodes()
            .any(|n| n.attrs.contains_key("recompute_on")));
    }

    #[test]
    fn clear_network_yields_no_candidates_for_expensive_ops() {
        let (plan, topo, state, cost) = fixture(0.0);
        let candidates = recomputation_candidates(&plan, &topo, &state, &cost);
        // On an idle 25 GbE link, shipping 1 MB costs ~300 µs — cheaper
        // than is worth second-guessing for most kernels; allow empties.
        for c in &candidates {
            assert!(c.saved_s > 0.0);
        }
    }
}
