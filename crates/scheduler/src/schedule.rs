//! The scheduler's core entry point:
//! `plan = schedule(srg, cluster_state, policy)` (§3.3).
//!
//! Policies only choose *where* nodes run; this module does the shared
//! work that makes placements executable and comparable:
//!
//! 1. derive transfers for every cross-location edge, deduplicated per
//!    `(tensor, destination)` — a value ships at most once per device;
//! 2. route pinnable residencies (weights, KV caches, embedding tables)
//!    through the resident-object directory: already-pinned state costs a
//!    handle reference, new state becomes a one-time pinned upload;
//! 3. estimate end-to-end latency via a critical-path pass over kernel
//!    and transfer times plus queue delays.

use crate::cost::CostModel;
use crate::plan::{CostBreakdown, ExecutionPlan, Location, Transfer};
use crate::policy::Policy;
use crate::view::ClusterView;
use genie_analysis::{LintConfig, Report, Severity};
use genie_cluster::{ClusterState, Topology};
use genie_srg::{Srg, TensorId};
use std::collections::{BTreeMap, BTreeSet};

/// Produce an execution plan for `srg` on the given cluster using
/// `policy`. Pure: neither the graph nor the cluster state is mutated.
///
/// Every plan is run through the `GA1xx` plan lints (under the default
/// [`LintConfig`]) and carries the findings in
/// [`ExecutionPlan::diagnostics`]; use [`schedule_checked`] to turn
/// deny-level findings into a hard error.
pub fn schedule(
    srg: &Srg,
    topo: &Topology,
    state: &ClusterState,
    cost: &CostModel,
    policy: &dyn Policy,
) -> ExecutionPlan {
    schedule_with_lints(srg, topo, state, cost, policy, &LintConfig::new())
}

/// [`schedule`] with a caller-supplied lint policy governing the `GA1xx`
/// severities recorded on the plan.
pub fn schedule_with_lints(
    srg: &Srg,
    topo: &Topology,
    state: &ClusterState,
    cost: &CostModel,
    policy: &dyn Policy,
    lints: &LintConfig,
) -> ExecutionPlan {
    let telemetry = genie_telemetry::global();
    let begin = std::time::Instant::now();
    let mut span = telemetry.collector.span_with(
        "schedule",
        "scheduler",
        genie_telemetry::SemAttrs::new()
            .with("graph", srg.name.clone())
            .with("policy", policy.name()),
    );
    let view = ClusterView::new(topo, state, cost);
    let mut placements = policy.place(srg, &view);

    // Fault awareness: a device whose host is partitioned from the client
    // is unreachable for the lifetime of this plan, so scheduling work
    // there would stall the run. Reroute those placements to the client —
    // slower, but correct — and count the degradation.
    if state.has_partitions() {
        let client = topo.client_host();
        let mut reroutes = 0u64;
        for loc in placements.values_mut() {
            if let Location::Device(dev) = *loc {
                let host = topo.device(dev).host;
                if state.is_partitioned(client.0, host.0) {
                    *loc = Location::ClientCpu;
                    reroutes += 1;
                }
            }
        }
        if reroutes > 0 {
            telemetry
                .metrics
                .counter("genie_schedule_reroutes_total", &[("reason", "partition")])
                .add(reroutes);
        }
    }

    // Effective bandwidth between two placements: a derated link divides
    // goodput, multiplying the time estimate for anything crossing it.
    let host_of = |loc: Location| match loc {
        Location::ClientCpu => topo.client_host(),
        Location::Device(dev) => topo.device(dev).host,
    };

    let mut transfers = Vec::new();
    let mut pinned_uploads: Vec<(TensorId, genie_cluster::DevId, u64)> = Vec::new();
    let mut arrived: BTreeSet<(TensorId, Location)> = BTreeSet::new();
    let mut edge_cost: BTreeMap<genie_srg::EdgeId, f64> = BTreeMap::new();

    let order = genie_srg::traverse::topo_order(srg).expect("valid SRG");
    for &dst in &order {
        let dst_loc = placements.get(&dst).copied().unwrap_or(Location::ClientCpu);
        let in_edges: Vec<_> = srg.in_edges(dst).map(|e| e.id).collect();
        for eid in in_edges {
            let edge = srg.edge(eid);
            let src_loc = placements
                .get(&edge.src)
                .copied()
                .unwrap_or(Location::ClientCpu);
            if src_loc == dst_loc {
                continue;
            }
            let bytes = edge.transfer_bytes() as u64;
            let derate = state.link_derate(host_of(src_loc).0, host_of(dst_loc).0);
            if !arrived.insert((edge.tensor, dst_loc)) {
                // Already shipped to this destination: free fan-out.
                transfers.push(Transfer {
                    edge: eid,
                    tensor: edge.tensor,
                    from: src_loc,
                    to: dst_loc,
                    bytes,
                    via_handle: true,
                });
                continue;
            }
            let pinnable = srg.node(edge.src).residency.prefers_remote_pinning();
            if pinnable {
                if let Location::Device(dev) = dst_loc {
                    let already_resident = state
                        .resident(edge.tensor.0)
                        .is_some_and(|obj| obj.device == dev);
                    if already_resident {
                        transfers.push(Transfer {
                            edge: eid,
                            tensor: edge.tensor,
                            from: src_loc,
                            to: dst_loc,
                            bytes,
                            via_handle: true,
                        });
                    } else {
                        pinned_uploads.push((edge.tensor, dev, bytes));
                        edge_cost.insert(eid, cost.streaming_time(bytes as f64) / derate);
                    }
                    continue;
                }
            }
            edge_cost.insert(eid, cost.transfer_time(bytes as f64) / derate);
            transfers.push(Transfer {
                edge: eid,
                tensor: edge.tensor,
                from: src_loc,
                to: dst_loc,
                bytes,
                via_handle: false,
            });
        }
    }

    // Cost estimate: critical path with device-aware kernel times and the
    // transfer costs derived above.
    let cp = genie_srg::critical_path::critical_path(
        srg,
        |node| match placements.get(&node.id).copied() {
            Some(Location::Device(dev)) if !node.op.is_source() => {
                cost.kernel_time(node, &topo.device(dev).spec)
            }
            _ => 0.0,
        },
        |edge| edge_cost.get(&edge.id).copied().unwrap_or(0.0),
    )
    .expect("valid SRG");

    let queue_s = placements
        .values()
        .filter_map(|l| l.device())
        .map(|d| state.queue_seconds(d))
        .fold(0.0, f64::max);

    let transfer_s: f64 = edge_cost.values().sum();
    let compute_s = (cp.length - transfer_s).max(0.0);

    let mut plan = ExecutionPlan {
        policy: policy.name().to_string(),
        srg: srg.clone(),
        placements,
        transfers,
        pinned_uploads,
        estimate: CostBreakdown {
            compute_s,
            transfer_s,
            queue_s,
            bytes_moved: 0.0,
        },
        diagnostics: Vec::new(),
    };
    plan.estimate.bytes_moved = plan.network_bytes() as f64;
    plan.diagnostics = crate::lint::lint_plan(&plan, topo, state, lints).diagnostics;

    let label = plan.label();
    span.annotate(|a| a.plan = Some(label.clone()));
    telemetry
        .metrics
        .counter("genie_schedule_plans_total", &[("policy", policy.name())])
        .inc();
    let wire = plan.transfers.iter().filter(|t| !t.via_handle).count() as u64;
    let handle = plan.transfers.len() as u64 - wire;
    telemetry
        .metrics
        .counter("genie_schedule_transfers_total", &[("kind", "wire")])
        .add(wire);
    telemetry
        .metrics
        .counter("genie_schedule_transfers_total", &[("kind", "handle")])
        .add(handle);
    telemetry
        .metrics
        .counter("genie_schedule_pinned_uploads_total", &[])
        .add(plan.pinned_uploads.len() as u64);
    for d in &plan.diagnostics {
        telemetry
            .metrics
            .counter(
                "genie_schedule_lint_findings_total",
                &[("severity", d.severity.label())],
            )
            .inc();
        let mut attrs = genie_telemetry::SemAttrs::new()
            .plan(label.clone())
            .with("severity", d.severity.label())
            .with("message", d.message.clone());
        if let genie_analysis::Anchor::Node(n) = d.anchor {
            attrs.node = Some(n);
        }
        telemetry
            .collector
            .instant(format!("lint.{}", d.code), "scheduler", attrs);
    }
    telemetry
        .metrics
        .histogram(
            "genie_schedule_seconds",
            &[],
            &genie_telemetry::DEFAULT_TIME_BOUNDS,
        )
        .observe(begin.elapsed().as_secs_f64());
    telemetry
        .metrics
        .gauge("genie_cost_cache_hit_rate", &[])
        .set(cost.cache_stats().hit_rate());
    plan
}

/// [`schedule`], gated: returns `Err` with the full lint report when any
/// plan-level finding is deny under `lints` (e.g. the plan overcommits a
/// device's memory). Demote a code with [`LintConfig::warn`] to accept
/// such plans anyway.
pub fn schedule_checked(
    srg: &Srg,
    topo: &Topology,
    state: &ClusterState,
    cost: &CostModel,
    policy: &dyn Policy,
    lints: &LintConfig,
) -> Result<ExecutionPlan, Report> {
    let plan = schedule_with_lints(srg, topo, state, cost, policy, lints);
    if plan
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Deny)
    {
        let subject = format!("{}@{}", plan.srg.name, plan.policy);
        return Err(Report {
            subject,
            diagnostics: plan.diagnostics,
        });
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DataAware, RoundRobin, SemanticsAware};
    use genie_cluster::ResidentObject;
    use genie_frontend::capture::CaptureCtx;
    use genie_models::{KvState, TransformerConfig, TransformerLm};
    use genie_srg::ElemType;

    fn decode_graph() -> Srg {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("decode");
        let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
        cap.logits.sample().mark_output();
        for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
            k.mark_output();
            v.mark_output();
        }
        ctx.finish().srg
    }

    #[test]
    fn semantics_aware_moves_orders_of_magnitude_less() {
        let srg = decode_graph();
        let topo = Topology::rack(4, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();

        let blind = schedule(&srg, &topo, &state, &cost, &RoundRobin);
        let aware = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());

        // Round-robin ships activations between every pair of adjacent
        // ops; semantics-aware ships the token in and the sampled token
        // out, with weights as one-time pinned uploads in both cases.
        let blind_recurring: u64 = blind
            .transfers
            .iter()
            .filter(|t| !t.via_handle)
            .map(|t| t.bytes)
            .sum();
        let aware_recurring: u64 = aware
            .transfers
            .iter()
            .filter(|t| !t.via_handle)
            .map(|t| t.bytes)
            .sum();
        assert!(
            blind_recurring > aware_recurring.max(1) * 100,
            "blind {blind_recurring} vs aware {aware_recurring}"
        );
    }

    #[test]
    fn pinned_weights_upload_once_then_reference() {
        let srg = decode_graph();
        let topo = Topology::paper_testbed();
        let mut state = ClusterState::new();
        let cost = CostModel::ideal_25g();

        // First plan: weights become pinned uploads (~12 GB).
        let first = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        let upload_bytes: u64 = first.pinned_uploads.iter().map(|(_, _, b)| b).sum();
        assert!(
            upload_bytes > 11_000_000_000,
            "first plan uploads weights: {upload_bytes}"
        );

        // Register those residents (as the backend would after executing).
        for (tensor, dev, bytes) in &first.pinned_uploads {
            state
                .register_resident(
                    &topo,
                    ResidentObject {
                        key: tensor.0,
                        device: *dev,
                        bytes: *bytes,
                        epoch: 1,
                    },
                )
                .unwrap();
        }

        // Second plan over the same graph: everything pinned is a handle.
        let second = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        assert!(second.pinned_uploads.is_empty(), "nothing re-uploads");
        assert!(
            second.network_bytes() < 1_000_000,
            "steady-state decode ships ~KBs, got {}",
            second.network_bytes()
        );
    }

    #[test]
    fn estimate_reflects_placement_quality() {
        let srg = decode_graph();
        let topo = Topology::rack(4, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let blind = schedule(&srg, &topo, &state, &cost, &RoundRobin);
        let aware = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        assert!(
            aware.estimate.total_s() < blind.estimate.total_s(),
            "aware {} vs blind {}",
            aware.estimate.total_s(),
            blind.estimate.total_s()
        );
    }

    #[test]
    fn fan_out_ships_once_per_destination() {
        // One weight consumed by two ops on the same device: one upload.
        let ctx = CaptureCtx::new("fanout");
        let x = ctx.input("x", [1, 8], ElemType::F32, None);
        let w = ctx.parameter("w", [8, 8], ElemType::F32, None);
        let a = x.matmul(&w);
        let b = x.matmul(&w);
        a.add(&b).mark_output();
        let srg = ctx.finish().srg;

        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let plan = schedule(&srg, &topo, &state, &cost, &DataAware);
        // Input x crosses once for real; its second consumer reuses.
        let x_edges: Vec<_> = plan
            .transfers
            .iter()
            .filter(|t| t.from == Location::ClientCpu)
            .collect();
        let real: usize = x_edges.iter().filter(|t| !t.via_handle).count();
        let reused: usize = x_edges.iter().filter(|t| t.via_handle).count();
        assert_eq!(real, 1, "{x_edges:?}");
        // Two handle reuses: x's second consumer and w's second consumer
        // (w's first consumer is a pinned upload, not a transfer).
        assert_eq!(reused, 2);
        assert_eq!(plan.pinned_uploads.len(), 1);
    }

    #[test]
    fn scheduling_feeds_telemetry() {
        // Global metrics are shared across tests: assert growth only.
        let plans = || {
            genie_telemetry::global()
                .metrics
                .snapshot()
                .counter("genie_schedule_plans_total", &[("policy", "round_robin")])
                .unwrap_or(0)
        };
        let before = plans();
        let srg = decode_graph();
        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let plan = schedule(&srg, &topo, &state, &cost, &RoundRobin);
        assert!(plans() > before);
        let label = plan.label();
        let records = genie_telemetry::global().collector.snapshot();
        assert!(
            records
                .iter()
                .any(|r| r.name == "schedule" && r.attrs.plan.as_deref() == Some(label.as_str())),
            "schedule span carries the plan label"
        );
    }

    #[test]
    fn repeated_scheduling_warms_cost_cache() {
        let srg = decode_graph();
        let topo = Topology::rack(2, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let policy = SemanticsAware::new();

        schedule(&srg, &topo, &state, &cost, &policy);
        let cold = cost.cache_stats();
        schedule(&srg, &topo, &state, &cost, &policy);
        let warm = cost.cache_stats();

        assert!(warm.hits > cold.hits, "re-scheduling must hit the cache");
        assert_eq!(
            warm.misses, cold.misses,
            "no new estimates on an identical re-schedule"
        );
        let gauge = genie_telemetry::global()
            .metrics
            .snapshot()
            .gauge("genie_cost_cache_hit_rate", &[]);
        assert!(gauge.is_some(), "hit-rate gauge published");
    }

    #[test]
    fn degraded_link_inflates_transfer_estimate() {
        let srg = decode_graph();
        let topo = Topology::paper_testbed();
        let cost = CostModel::ideal_25g();

        let healthy = ClusterState::new();
        let base = schedule(&srg, &topo, &healthy, &cost, &SemanticsAware::new());

        // Client (host 0) to gpu-server (host 1) at 25% bandwidth.
        let mut state = ClusterState::new();
        state.set_link_derate(0, 1, 0.25);
        let derated = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());

        assert_eq!(
            base.placements, derated.placements,
            "derating slows transfers but does not move work"
        );
        assert!(
            derated.estimate.transfer_s > base.estimate.transfer_s * 3.9,
            "4x less bandwidth ~4x the transfer estimate: {} vs {}",
            derated.estimate.transfer_s,
            base.estimate.transfer_s
        );
    }

    #[test]
    fn partitioned_host_reroutes_to_client() {
        let srg = decode_graph();
        let topo = Topology::paper_testbed();
        let cost = CostModel::ideal_25g();

        let mut state = ClusterState::new();
        state.set_partitioned(0, 1, true);

        let reroutes = || {
            genie_telemetry::global()
                .metrics
                .snapshot()
                .counter("genie_schedule_reroutes_total", &[("reason", "partition")])
                .unwrap_or(0)
        };
        let before = reroutes();
        let plan = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        assert!(
            plan.placements.values().all(|l| *l == Location::ClientCpu),
            "nothing may be placed across a severed link"
        );
        assert!(plan.transfers.is_empty() && plan.pinned_uploads.is_empty());
        assert!(reroutes() > before, "reroutes are counted");

        // Healing the partition restores remote placement.
        state.set_partitioned(0, 1, false);
        let healed = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        assert!(healed
            .placements
            .values()
            .any(|l| matches!(l, Location::Device(_))));
    }

    #[test]
    fn plan_summary_is_printable() {
        let srg = decode_graph();
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        let plan = schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        let s = plan.summary();
        assert!(s.contains("semantics_aware"));
        assert!(s.contains("devices"));
    }
}
