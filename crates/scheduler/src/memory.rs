//! Memory feasibility of execution plans.
//!
//! A placement is only executable if each device can hold its share of
//! pinned state (weights, caches, embedding shards) plus peak transient
//! activations. The §3.3 cost model prices time; this module prices
//! space — and gives the semantics-aware policy the spill information it
//! needs when a workload (e.g. a 66 GB DLRM table set) cannot fit beside
//! an existing tenant.

use crate::plan::ExecutionPlan;
use genie_cluster::{ClusterState, DevId, Topology};
use std::collections::BTreeMap;

/// Per-device memory demand of a plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemoryDemand {
    /// Bytes of pinned state the plan uploads to each device.
    pub pinned: BTreeMap<DevId, u64>,
    /// Peak transient bytes (the largest single activation the device
    /// produces — a lower bound on scratch needs).
    pub transient: BTreeMap<DevId, u64>,
}

/// A device that cannot satisfy a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryViolation {
    /// The overloaded device.
    pub device: DevId,
    /// Bytes the plan needs there.
    pub required: u64,
    /// Bytes actually free.
    pub free: u64,
}

/// Compute a plan's per-device memory demand.
pub fn demand(plan: &ExecutionPlan) -> MemoryDemand {
    let mut d = MemoryDemand::default();
    for (_, dev, bytes) in &plan.pinned_uploads {
        *d.pinned.entry(*dev).or_insert(0) += bytes;
    }
    for node in plan.srg.nodes() {
        if let Some(dev) = plan.location(node.id).device() {
            // Terminal outputs have no out-edges; fall back to the cost
            // hints' write volume.
            let out_bytes = plan
                .srg
                .out_edges(node.id)
                .map(|e| e.meta.size_bytes() as u64)
                .max()
                .unwrap_or(0)
                .max(node.cost.bytes_written as u64);
            let e = d.transient.entry(dev).or_insert(0);
            *e = (*e).max(out_bytes);
        }
    }
    d
}

/// Check a plan against current free memory. Empty result = feasible.
pub fn check(plan: &ExecutionPlan, topo: &Topology, state: &ClusterState) -> Vec<MemoryViolation> {
    let d = demand(plan);
    let mut devices: Vec<DevId> = d.pinned.keys().chain(d.transient.keys()).copied().collect();
    devices.sort_unstable();
    devices.dedup();
    devices
        .into_iter()
        .filter_map(|dev| {
            let required = d.pinned.get(&dev).copied().unwrap_or(0)
                + d.transient.get(&dev).copied().unwrap_or(0);
            let free = state.mem_free(topo, dev);
            (required > free).then_some(MemoryViolation {
                device: dev,
                required,
                free,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::policy::SemanticsAware;
    use crate::schedule::schedule;
    use genie_frontend::capture::CaptureCtx;
    use genie_models::{KvState, TransformerConfig, TransformerLm};
    use genie_srg::ElemType;

    fn gptj_plan(topo: &Topology, state: &ClusterState) -> ExecutionPlan {
        let m = TransformerLm::new_spec(TransformerConfig::gptj_6b());
        let ctx = CaptureCtx::new("decode");
        let cap = m.capture_decode_step(&ctx, 0, &KvState::default());
        cap.logits.sample().mark_output();
        let srg = ctx.finish().srg;
        schedule(
            &srg,
            topo,
            state,
            &CostModel::paper_stack(),
            &SemanticsAware::new(),
        )
    }

    #[test]
    fn gptj_fits_an_a100() {
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let plan = gptj_plan(&topo, &state);
        assert!(check(&plan, &topo, &state).is_empty());
        let d = demand(&plan);
        let dev = *d.pinned.keys().next().unwrap();
        assert!(d.pinned[&dev] > 11_000_000_000, "weights pinned");
    }

    #[test]
    fn occupied_device_violates() {
        let topo = Topology::paper_testbed();
        let mut state = ClusterState::new();
        let dev = topo.devices()[0].id;
        // Another tenant already pinned 75 of the 80 GB.
        state.alloc(&topo, dev, 75 << 30).unwrap();
        let plan = gptj_plan(&topo, &state);
        let violations = check(&plan, &topo, &state);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].device, dev);
        assert!(violations[0].required > violations[0].free);
    }

    #[test]
    fn transient_peak_counts_largest_activation() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1024, 1024], ElemType::F32, None); // 4 MB
        let y = x.relu();
        y.mark_output();
        let srg = ctx.finish().srg;
        let topo = Topology::paper_testbed();
        let state = ClusterState::new();
        let plan = schedule(
            &srg,
            &topo,
            &state,
            &CostModel::ideal_25g(),
            &SemanticsAware::new(),
        );
        let d = demand(&plan);
        let dev = topo.devices()[0].id;
        assert!(d.transient[&dev] >= 4 << 20);
    }
}
