//! Elementwise arithmetic and broadcasting helpers.

use crate::tensor::Tensor;

/// Elementwise addition of same-shape tensors.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip(a, b, |x, y| x + y)
}

/// Elementwise subtraction.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip(a, b, |x, y| x - y)
}

/// Elementwise multiplication.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip(a, b, |x, y| x * y)
}

/// Multiply every element by a scalar.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    Tensor::build(a.dims().to_vec(), |out| {
        for (o, &v) in out.iter_mut().zip(a.data()) {
            *o = v * s;
        }
    })
}

/// Add a rank-1 bias over the innermost dimension (broadcast).
pub fn add_bias(a: &Tensor, bias: &Tensor) -> Tensor {
    let inner = *a.dims().last().expect("add_bias requires rank >= 1");
    assert_eq!(bias.dims(), &[inner], "bias must be [{inner}]");
    Tensor::build(a.dims().to_vec(), |out| {
        for (i, (o, &v)) in out.iter_mut().zip(a.data()).enumerate() {
            *o = v + bias.data()[i % inner];
        }
    })
}

fn zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
    Tensor::build(a.dims().to_vec(), |out| {
        for ((o, &x), &y) in out.iter_mut().zip(a.data()).zip(b.data()) {
            *o = f(x, y);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![0.5, 0.5, 0.5]);
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn mul_and_scale_agree() {
        let a = Tensor::from_vec([2], vec![3.0, 4.0]);
        let twos = Tensor::full([2], 2.0);
        assert_eq!(mul(&a, &twos), scale(&a, 2.0));
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let a = Tensor::zeros([2, 3]);
        let bias = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let y = add_bias(&a, &bias);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        add(&Tensor::zeros([2]), &Tensor::zeros([3]));
    }
}
