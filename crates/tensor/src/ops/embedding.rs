//! Embedding-table gathers — the sparse access pattern of LLM token
//! embeddings and recommendation models.

use crate::tensor::{IndexTensor, Tensor};

/// Gather rows from a `[vocab, dim]` table: returns `[n, dim]` for `n`
/// indices. Panics on out-of-range indices.
pub fn gather_rows(table: &Tensor, indices: &IndexTensor) -> Tensor {
    assert_eq!(table.rank(), 2, "embedding table must be [vocab, dim]");
    let (vocab, dim) = (table.dims()[0], table.dims()[1]);
    let n = indices.len();
    Tensor::build([n, dim], |out| {
        for (r, &idx) in indices.data().iter().enumerate() {
            assert!(
                idx >= 0 && (idx as usize) < vocab,
                "index {idx} out of range for vocab {vocab}"
            );
            let base = idx as usize * dim;
            out[r * dim..(r + 1) * dim].copy_from_slice(&table.data()[base..base + dim]);
        }
    })
}

/// Sum-pool a multi-hot bag of indices into one `[dim]` vector — the
/// EmbeddingBag operation used by DLRM-style models.
pub fn gather_sum(table: &Tensor, indices: &IndexTensor) -> Tensor {
    assert_eq!(table.rank(), 2);
    let dim = table.dims()[1];
    let rows = gather_rows(table, indices);
    Tensor::build([dim], |out| {
        for r in 0..indices.len() {
            for (d, o) in out.iter_mut().enumerate() {
                *o += rows.data()[r * dim + d];
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::arange;

    #[test]
    fn gather_selects_rows() {
        let table = arange([4, 3]); // rows [0,1,2],[3,4,5],[6,7,8],[9,10,11]
        let idx = IndexTensor::from_slice(&[2, 0]);
        let out = gather_rows(&table, &idx);
        assert_eq!(out.dims(), &[2, 3]);
        assert_eq!(out.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn gather_repeats_allowed() {
        let table = arange([2, 2]);
        let idx = IndexTensor::from_slice(&[1, 1, 1]);
        let out = gather_rows(&table, &idx);
        assert_eq!(out.data(), &[2.0, 3.0, 2.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_out_of_range_panics() {
        gather_rows(&arange([2, 2]), &IndexTensor::from_slice(&[5]));
    }

    #[test]
    fn gather_sum_pools() {
        let table = arange([3, 2]); // [0,1],[2,3],[4,5]
        let idx = IndexTensor::from_slice(&[0, 2]);
        let out = gather_sum(&table, &idx);
        assert_eq!(out.data(), &[4.0, 6.0]);
    }
}
