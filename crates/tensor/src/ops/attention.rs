//! Scaled dot-product attention — the core kernel of transformer models.
//!
//! [`multi_head_attention`] dispatches between a sequential head loop (the
//! reference) and a parallel variant that computes heads on separate cores.
//! Heads are independent, so both orders produce bit-identical output.

use crate::ops::activation::softmax_lastdim;
use crate::ops::linalg::{matmul, transpose2d, MATMUL_BLOCK_MIN_FLOPS, MATMUL_PAR_MIN_FLOPS};
use crate::par;
use crate::stats::{self, Path};
use crate::tensor::Tensor;

/// Approximate FLOPs below which multi-head attention stays sequential.
pub const ATTENTION_PAR_MIN_FLOPS: usize = 1 << 18;

/// Single-head scaled dot-product attention with optional causal masking.
///
/// `q: [tq, d]`, `k: [tk, d]`, `v: [tk, dv]` → `[tq, dv]`.
///
/// With `causal = true`, query position `i` may attend only to key
/// positions `j <= i + (tk - tq)` — the offset form supports incremental
/// decode where `tq = 1` attends over the whole cache.
pub fn attention(q: &Tensor, k: &Tensor, v: &Tensor, causal: bool) -> Tensor {
    assert_eq!(q.rank(), 2, "q must be [tq, d]");
    assert_eq!(k.rank(), 2, "k must be [tk, d]");
    assert_eq!(v.rank(), 2, "v must be [tk, dv]");
    let (tq, d) = (q.dims()[0], q.dims()[1]);
    let (tk, d2) = (k.dims()[0], k.dims()[1]);
    assert_eq!(d, d2, "q/k depth mismatch");
    assert_eq!(v.dims()[0], tk, "k/v length mismatch");

    let scale = 1.0 / (d as f32).sqrt();
    // Decode steps (tq == 1) compute QK^T straight off the row-major K
    // cache; everything else goes through the transposed matmul.
    let forced = stats::forced_path();
    let mut scores = if tq == 1 && tk > 0 && !forced.is_some_and(Path::is_quantized) {
        qk_decode_scores(q, k, forced)
    } else {
        matmul(q, &transpose2d(k))
    };
    for s in scores.data_mut() {
        *s *= scale;
    }
    if causal {
        let offset = tk.saturating_sub(tq);
        for i in 0..tq {
            for j in 0..tk {
                if j > i + offset {
                    *scores.at_mut(&[i, j]) = f32::NEG_INFINITY;
                }
            }
        }
    }
    let weights = softmax_lastdim(&scores);
    matmul(&weights, v)
}

/// Decode-shape (`tq == 1`) QK^T scores computed without materializing
/// `transpose2d(k)`. Every score keeps one f32 accumulator walking the
/// depth axis in ascending order with the same `av == 0.0` skip as the
/// matmul kernels, so the result is bit-identical to
/// `matmul(q, transpose2d(k))` on every non-quantized tier — which is
/// why a forced scalar/blocked/parallel/simd path may all take it.
fn qk_decode_scores(q: &Tensor, k: &Tensor, forced: Option<Path>) -> Tensor {
    let (tk, d) = (k.dims()[0], k.dims()[1]);
    let flops = 2 * tk * d;
    let path = forced.unwrap_or(if flops < MATMUL_BLOCK_MIN_FLOPS {
        Path::Scalar
    } else if flops >= MATMUL_PAR_MIN_FLOPS && par::worker_count(tk) > 1 {
        Path::Parallel
    } else {
        Path::Simd
    });
    stats::note("matmul", path);
    let qd = q.data();
    let kd = k.data();
    Tensor::build([1usize, tk], |out| {
        let mut j = 0;
        // Eight scores at a time: eight independent accumulators, each
        // still strictly `p`-ascending.
        while j + 8 <= tk {
            let mut acc = [0.0f32; 8];
            for (p, &av) in qd.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (l, a) in acc.iter_mut().enumerate() {
                    *a += av * kd[(j + l) * d + p];
                }
            }
            out[j..j + 8].copy_from_slice(&acc);
            j += 8;
        }
        for (jj, o) in out.iter_mut().enumerate().skip(j) {
            let row = &kd[jj * d..(jj + 1) * d];
            let mut acc = 0.0f32;
            for (&av, &bv) in qd.iter().zip(row) {
                if av == 0.0 {
                    continue;
                }
                acc += av * bv;
            }
            *o = acc;
        }
    })
}

/// Multi-head attention over packed `[t, heads*dh]` projections. Splits
/// heads, runs [`attention`] per head, and re-packs. Dispatches between
/// the sequential reference loop and a head-parallel variant.
pub fn multi_head_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    causal: bool,
) -> Tensor {
    let (tq, dm) = (q.dims()[0], q.dims()[1]);
    let tk = k.dims()[0];
    // Single-query (decode) calls take the fused head loop, which reads
    // straight out of the packed projections — bit-identical to the
    // slice-per-head reference on every non-quantized tier.
    let forced = stats::forced_path();
    if tq == 1 && tk > 0 && !forced.is_some_and(Path::is_quantized) {
        return mha_decode(q, k, v, heads, forced);
    }
    // A forced non-parallel path maps to the sequential head loop; the
    // inner QK^T and weights·V matmuls dispatch through the same forced
    // path, which is how the simd and quantized attention tiers run.
    match forced {
        Some(Path::Parallel) => return multi_head_attention_parallel(q, k, v, heads, causal),
        Some(_) => return multi_head_attention_sequential(q, k, v, heads, causal),
        None => {}
    }
    // QK^T plus weights·V, both 2·tq·tk·dh per head, over all heads.
    let flops = 4 * tq * tk * dm;
    if heads > 1 && flops >= ATTENTION_PAR_MIN_FLOPS && par::worker_count(heads) > 1 {
        multi_head_attention_parallel(q, k, v, heads, causal)
    } else {
        multi_head_attention_sequential(q, k, v, heads, causal)
    }
}

/// Fused single-query multi-head attention: heads read their `dh`-wide
/// column bands straight out of the packed `[1, dm]` / `[tk, dm]`
/// projections, skipping the per-head `slice_head` copies and the
/// transposed-K materialization. Per score, the depth axis is walked
/// ascending with the matmul kernels' `av == 0.0` skip; per output
/// element, keys are walked ascending with the `w == 0.0` skip — the
/// exact accumulation orders of the sliced reference, so the result is
/// bit-for-bit identical on every non-quantized tier. Causal masking is
/// a no-op for a single query attending over its whole cache.
fn mha_decode(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, forced: Option<Path>) -> Tensor {
    let (_, tk, dm, dh) = head_geometry(q, k, heads);
    assert_eq!(v.dims(), k.dims(), "k/v shape mismatch");
    let path = forced.unwrap_or(Path::Simd);
    stats::note("attention", path);
    let qd = q.data();
    let kd = k.data();
    let vd = v.data();
    let scale = 1.0 / (dh as f32).sqrt();
    let mut scores = vec![0.0f32; tk];
    Tensor::build([1usize, dm], |out| {
        for h in 0..heads {
            let off = h * dh;
            let qh = &qd[off..off + dh];
            // QK^T for this head, eight keys at a time.
            let mut j = 0;
            while j + 8 <= tk {
                let mut acc = [0.0f32; 8];
                for (p, &av) in qh.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    for (l, a) in acc.iter_mut().enumerate() {
                        *a += av * kd[(j + l) * dm + off + p];
                    }
                }
                scores[j..j + 8].copy_from_slice(&acc);
                j += 8;
            }
            for (jj, s) in scores.iter_mut().enumerate().skip(j) {
                let row = &kd[jj * dm + off..jj * dm + off + dh];
                let mut acc = 0.0f32;
                for (&av, &bv) in qh.iter().zip(row) {
                    if av == 0.0 {
                        continue;
                    }
                    acc += av * bv;
                }
                *s = acc;
            }
            // Scale + softmax over the single row.
            for s in scores.iter_mut() {
                *s *= scale;
            }
            let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for s in scores.iter_mut() {
                let e = (*s - max).exp();
                *s = e;
                sum += e;
            }
            for s in scores.iter_mut() {
                *s /= sum;
            }
            // weights · V straight into the packed output band.
            let oh = &mut out[off..off + dh];
            for (j, &w) in scores.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let row = &vd[j * dm + off..j * dm + off + dh];
                for (o, &bv) in oh.iter_mut().zip(row) {
                    *o += w * bv;
                }
            }
        }
    })
}

fn head_geometry(q: &Tensor, k: &Tensor, heads: usize) -> (usize, usize, usize, usize) {
    assert_eq!(q.rank(), 2);
    let (tq, dm) = (q.dims()[0], q.dims()[1]);
    let tk = k.dims()[0];
    assert_eq!(
        dm % heads,
        0,
        "model dim {dm} not divisible by {heads} heads"
    );
    (tq, tk, dm, dm / heads)
}

fn head_output(q: &Tensor, k: &Tensor, v: &Tensor, h: usize, dh: usize, causal: bool) -> Tensor {
    let qh = slice_head(q, h, dh);
    let kh = slice_head(k, h, dh);
    let vh = slice_head(v, h, dh);
    attention(&qh, &kh, &vh, causal)
}

fn pack_heads(head_outs: &[Tensor], tq: usize, dm: usize, dh: usize) -> Tensor {
    Tensor::build([tq, dm], |out| {
        for (h, oh) in head_outs.iter().enumerate() {
            for t in 0..tq {
                out[t * dm + h * dh..t * dm + h * dh + dh]
                    .copy_from_slice(&oh.data()[t * dh..(t + 1) * dh]);
            }
        }
    })
}

/// Reference multi-head attention: heads computed one after another.
/// Notes the forced path when one is set — under `force_path(Int8)` the
/// inner matmuls really did run quantized, and the dispatch mix should
/// say so.
pub fn multi_head_attention_sequential(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    causal: bool,
) -> Tensor {
    let (tq, _tk, dm, dh) = head_geometry(q, k, heads);
    stats::note("attention", stats::forced_path().unwrap_or(Path::Scalar));
    let outs: Vec<Tensor> = (0..heads)
        .map(|h| head_output(q, k, v, h, dh, causal))
        .collect();
    pack_heads(&outs, tq, dm, dh)
}

/// Multi-head attention with heads fanned out over cores (forced, for
/// benches/tests). Bit-identical to the sequential reference.
pub fn multi_head_attention_parallel(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    causal: bool,
) -> Tensor {
    let (tq, _tk, dm, dh) = head_geometry(q, k, heads);
    stats::note("attention", Path::Parallel);
    let outs = par::par_map(heads, |h| head_output(q, k, v, h, dh, causal));
    pack_heads(&outs, tq, dm, dh)
}

fn slice_head(x: &Tensor, head: usize, dh: usize) -> Tensor {
    let (t, dm) = (x.dims()[0], x.dims()[1]);
    Tensor::build([t, dh], |out| {
        for row in 0..t {
            let base = row * dm + head * dh;
            out[row * dh..(row + 1) * dh].copy_from_slice(&x.data()[base..base + dh]);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn;

    #[test]
    fn attention_output_shape() {
        let q = randn([3, 8], 1);
        let k = randn([5, 8], 2);
        let v = randn([5, 4], 3);
        let o = attention(&q, &k, &v, false);
        assert_eq!(o.dims(), &[3, 4]);
    }

    #[test]
    fn uniform_keys_average_values() {
        // Identical keys ⇒ uniform weights ⇒ output = mean of values.
        let q = randn([1, 4], 1);
        let k = Tensor::ones([3, 4]);
        let v = Tensor::from_vec([3, 1], vec![1.0, 2.0, 3.0]);
        let o = attention(&q, &k, &v, false);
        assert!((o.data()[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn causal_mask_blocks_future() {
        // v rows are one-hot so output reveals the attended positions.
        let q = Tensor::zeros([2, 2]);
        let k = Tensor::zeros([2, 2]);
        let v = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let o = attention(&q, &k, &v, true);
        // Row 0 can only see position 0.
        assert!((o.at(&[0, 0]) - 1.0).abs() < 1e-6);
        assert!(o.at(&[0, 1]).abs() < 1e-6);
        // Row 1 sees both equally.
        assert!((o.at(&[1, 0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn decode_offset_attends_full_cache() {
        // tq=1 against tk=4 with causal=true must not mask anything.
        let q = Tensor::zeros([1, 2]);
        let k = Tensor::zeros([4, 2]);
        let v = Tensor::from_vec([4, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let o = attention(&q, &k, &v, true);
        assert!((o.data()[0] - 2.5).abs() < 1e-5);
    }

    #[test]
    fn incremental_decode_matches_full_prefill() {
        // Attention over a cache built incrementally equals attention over
        // the full sequence — the correctness basis for KV caching.
        let t = 6;
        let d = 4;
        let q_all = randn([t, d], 10);
        let k_all = randn([t, d], 11);
        let v_all = randn([t, d], 12);
        let full = attention(&q_all, &k_all, &v_all, true);

        // Last row via incremental decode path: q = last row, cache = all.
        let q_last = crate::ops::shape_ops::narrow(&q_all, 0, t - 1, 1);
        let inc = attention(&q_last, &k_all, &v_all, true);
        let full_last = crate::ops::shape_ops::narrow(&full, 0, t - 1, 1);
        assert!(inc.approx_eq(&full_last, 1e-5));
    }

    #[test]
    fn multi_head_shape_and_determinism() {
        let q = randn([3, 8], 1);
        let k = randn([3, 8], 2);
        let v = randn([3, 8], 3);
        let a = multi_head_attention(&q, &k, &v, 2, true);
        let b = multi_head_attention(&q, &k, &v, 2, true);
        assert_eq!(a.dims(), &[3, 8]);
        assert_eq!(a, b);
    }

    #[test]
    fn mha_paths_agree_bitwise() {
        let q = randn([5, 12], 21);
        let k = randn([7, 12], 22);
        let v = randn([7, 12], 23);
        let seq = multi_head_attention_sequential(&q, &k, &v, 3, true);
        let par = multi_head_attention_parallel(&q, &k, &v, 3, true);
        assert_eq!(seq.dims(), par.dims());
        assert_eq!(seq.data(), par.data());
    }

    #[test]
    fn single_head_mha_equals_attention() {
        let q = randn([4, 6], 4);
        let k = randn([4, 6], 5);
        let v = randn([4, 6], 6);
        let mha = multi_head_attention(&q, &k, &v, 1, false);
        let att = attention(&q, &k, &v, false);
        assert!(mha.approx_eq(&att, 1e-6));
    }
}
