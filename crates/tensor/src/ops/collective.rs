//! Deterministic collectives for sharded execution.
//!
//! Real collective libraries pick reduction trees by topology, so the
//! same all-reduce can return different bits run to run. Here the tree
//! is *fixed*: a left-leaning chain in ascending rank order, i.e. the
//! degenerate tree whose fold order is exactly the sequential sum
//! `((r0 + r1) + r2) + …`. That choice is load-bearing — f32 addition
//! is not associative, so a balanced pairwise tree would NOT be
//! bit-identical to the sequential oracle; the left-leaning chain is,
//! by construction, and `collective_props.rs` pins it across shard
//! counts, shapes, and dispatch tiers.

use crate::ops::elementwise::add;
use crate::ops::shape_ops::concat;
use crate::tensor::Tensor;

/// Fixed-order all-reduce: sum `parts` in ascending rank order with a
/// left-leaning fold. Bit-identical to sequentially accumulating the
/// shards on one device.
pub fn all_reduce_sum(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "all_reduce_sum of zero shards");
    let mut acc = parts[0].clone();
    for p in &parts[1..] {
        acc = add(&acc, p);
    }
    acc
}

/// Fixed-order all-gather: concatenate `parts` along `dim` in ascending
/// rank order. Reassembles column-split (output-dimension-split) shards
/// into the tensor the unsharded computation would have produced.
pub fn all_gather(parts: &[&Tensor], dim: usize) -> Tensor {
    assert!(!parts.is_empty(), "all_gather of zero shards");
    let mut acc = parts[0].clone();
    for p in &parts[1..] {
        acc = concat(&acc, p, dim);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn;
    use crate::ops::linalg::{matmul, matmul_acc};
    use crate::ops::shape_ops::narrow;

    #[test]
    fn all_reduce_is_the_sequential_fold() {
        let a = randn([3, 5], 1);
        let b = randn([3, 5], 2);
        let c = randn([3, 5], 3);
        let seq = add(&add(&a, &b), &c);
        assert_eq!(all_reduce_sum(&[&a, &b, &c]), seq);
    }

    #[test]
    fn all_gather_reassembles_column_splits() {
        let x = randn([4, 6], 7);
        let w = randn([6, 8], 8);
        let full = matmul(&x, &w);
        let parts: Vec<Tensor> = (0..4)
            .map(|r| matmul(&x, &narrow(&w, 1, r * 2, 2)))
            .collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        assert_eq!(all_gather(&refs, 1), full);
    }

    #[test]
    fn chained_matmul_acc_is_bit_exact_row_split() {
        let x = randn([4, 6], 9);
        let w = randn([6, 8], 10);
        let full = matmul(&x, &w);
        let p0 = matmul(&narrow(&x, 1, 0, 3), &narrow(&w, 0, 0, 3));
        let p1 = matmul_acc(&narrow(&x, 1, 3, 3), &narrow(&w, 0, 3, 3), &p0);
        assert_eq!(p1, full);
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn empty_all_reduce_panics() {
        all_reduce_sum(&[]);
    }
}
