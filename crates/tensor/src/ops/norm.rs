//! Normalization kernels.

use crate::tensor::Tensor;

/// Layer normalization over the innermost dimension with learned scale and
/// bias: `y = (x - mean) / sqrt(var + eps) * gamma + beta`.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
    let dims = x.dims().to_vec();
    let inner = *dims.last().expect("layer_norm requires rank >= 1");
    assert_eq!(gamma.dims(), &[inner], "gamma must be [{inner}]");
    assert_eq!(beta.dims(), &[inner], "beta must be [{inner}]");
    let rows = x.len() / inner;
    Tensor::build(dims, |out| {
        for r in 0..rows {
            let row = &x.data()[r * inner..(r + 1) * inner];
            let mean: f32 = row.iter().sum::<f32>() / inner as f32;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / inner as f32;
            let denom = (var + eps).sqrt();
            for (i, (o, &v)) in out[r * inner..(r + 1) * inner]
                .iter_mut()
                .zip(row)
                .enumerate()
            {
                *o = (v - mean) / denom * gamma.data()[i] + beta.data()[i];
            }
        }
    })
}

/// RMS normalization over the innermost dimension: `y = x / rms(x) * gamma`.
pub fn rms_norm(x: &Tensor, gamma: &Tensor, eps: f32) -> Tensor {
    let dims = x.dims().to_vec();
    let inner = *dims.last().expect("rms_norm requires rank >= 1");
    assert_eq!(gamma.dims(), &[inner]);
    let rows = x.len() / inner;
    Tensor::build(dims, |out| {
        for r in 0..rows {
            let row = &x.data()[r * inner..(r + 1) * inner];
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / inner as f32;
            let denom = (ms + eps).sqrt();
            for (i, (o, &v)) in out[r * inner..(r + 1) * inner]
                .iter_mut()
                .zip(row)
                .enumerate()
            {
                *o = v / denom * gamma.data()[i];
            }
        }
    })
}

/// Inference-mode batch normalization for NCHW images with per-channel
/// statistics.
pub fn batch_norm_2d(
    x: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Tensor {
    assert_eq!(x.rank(), 4, "batch_norm_2d expects NCHW");
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    for t in [mean, var, gamma, beta] {
        assert_eq!(t.dims(), &[c], "per-channel stats must be [{c}]");
    }
    let plane = h * w;
    Tensor::build([n, c, h, w], |out| {
        for ni in 0..n {
            for ci in 0..c {
                let denom = (var.data()[ci] + eps).sqrt();
                let g = gamma.data()[ci];
                let b = beta.data()[ci];
                let m = mean.data()[ci];
                let base = (ni * c + ci) * plane;
                for i in 0..plane {
                    out[base + i] = (x.data()[base + i] - m) / denom * g + b;
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn;

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = randn([4, 64], 11);
        let gamma = Tensor::ones([64]);
        let beta = Tensor::zeros([64]);
        let y = layer_norm(&x, &gamma, &beta, 1e-5);
        for r in 0..4 {
            let row = &y.data()[r * 64..(r + 1) * 64];
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_applies_affine() {
        let x = randn([1, 8], 3);
        let gamma = Tensor::full([8], 2.0);
        let beta = Tensor::full([8], 1.0);
        let base = layer_norm(&x, &Tensor::ones([8]), &Tensor::zeros([8]), 1e-5);
        let affine = layer_norm(&x, &gamma, &beta, 1e-5);
        for i in 0..8 {
            assert!((affine.data()[i] - (base.data()[i] * 2.0 + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn rms_norm_unit_rms() {
        let x = randn([2, 32], 5);
        let y = rms_norm(&x, &Tensor::ones([32]), 1e-6);
        for r in 0..2 {
            let row = &y.data()[r * 32..(r + 1) * 32];
            let rms: f32 = (row.iter().map(|v| v * v).sum::<f32>() / 32.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batch_norm_normalizes_channels() {
        let x = Tensor::from_vec([1, 2, 1, 2], vec![2.0, 4.0, 10.0, 20.0]);
        let mean = Tensor::from_vec([2], vec![3.0, 15.0]);
        let var = Tensor::from_vec([2], vec![1.0, 25.0]);
        let y = batch_norm_2d(
            &x,
            &mean,
            &var,
            &Tensor::ones([2]),
            &Tensor::zeros([2]),
            0.0,
        );
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
        assert!((y.data()[2] + 1.0).abs() < 1e-6);
        assert!((y.data()[3] - 1.0).abs() < 1e-6);
    }
}
