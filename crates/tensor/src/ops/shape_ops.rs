//! Concatenation and slicing along arbitrary dimensions — the operations
//! behind KV-cache growth.

use crate::tensor::Tensor;

/// Concatenate two tensors along dimension `dim`. All other dimensions must
/// match.
pub fn concat(a: &Tensor, b: &Tensor, dim: usize) -> Tensor {
    assert_eq!(a.rank(), b.rank(), "concat rank mismatch");
    assert!(dim < a.rank(), "concat dim {dim} out of range");
    for d in 0..a.rank() {
        if d != dim {
            assert_eq!(
                a.dims()[d],
                b.dims()[d],
                "concat non-dim sizes must match at {d}"
            );
        }
    }
    let mut out_dims = a.dims().to_vec();
    out_dims[dim] += b.dims()[dim];

    // Treat layout as [outer, dim, inner].
    let (outer, a_dim, inner) = a.shape().split_at_dim(dim);
    let b_dim = b.dims()[dim];

    let a_chunk = a_dim * inner;
    let b_chunk = b_dim * inner;
    Tensor::build(out_dims, |out| {
        for o in 0..outer {
            let base = o * (a_chunk + b_chunk);
            out[base..base + a_chunk].copy_from_slice(&a.data()[o * a_chunk..(o + 1) * a_chunk]);
            out[base + a_chunk..base + a_chunk + b_chunk]
                .copy_from_slice(&b.data()[o * b_chunk..(o + 1) * b_chunk]);
        }
    })
}

/// Narrow dimension `dim` to `[start, start + len)`.
pub fn narrow(x: &Tensor, dim: usize, start: usize, len: usize) -> Tensor {
    assert!(dim < x.rank(), "narrow dim out of range");
    assert!(
        start + len <= x.dims()[dim],
        "narrow [{start}, {start}+{len}) exceeds dim size {}",
        x.dims()[dim]
    );
    let (outer, d, inner) = x.shape().split_at_dim(dim);
    let mut dims = x.dims().to_vec();
    dims[dim] = len;
    let chunk = len * inner;
    Tensor::build(dims, |out| {
        for o in 0..outer {
            let base = (o * d + start) * inner;
            out[o * chunk..(o + 1) * chunk].copy_from_slice(&x.data()[base..base + chunk]);
        }
    })
}

/// Select a single index along `dim`, dropping that dimension.
pub fn select(x: &Tensor, dim: usize, index: usize) -> Tensor {
    let narrowed = narrow(x, dim, index, 1);
    let dims: Vec<usize> = narrowed
        .dims()
        .iter()
        .enumerate()
        .filter(|&(d, _)| d != dim)
        .map(|(_, &s)| s)
        .collect();
    narrowed.reshape(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::arange;

    #[test]
    fn concat_dim0() {
        let a = arange([2, 2]);
        let b = Tensor::full([1, 2], 9.0);
        let c = concat(&a, &b, 0);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 2.0, 3.0, 9.0, 9.0]);
    }

    #[test]
    fn concat_dim1() {
        let a = arange([2, 2]);
        let b = Tensor::full([2, 1], 9.0);
        let c = concat(&a, &b, 1);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[0.0, 1.0, 9.0, 2.0, 3.0, 9.0]);
    }

    #[test]
    fn kv_cache_growth_pattern() {
        // Repeated concat along the sequence dim mimics KV append.
        let mut cache = Tensor::zeros([0usize, 4].to_vec());
        for step in 0..5 {
            let kv = Tensor::full([1, 4], step as f32);
            cache = concat(&cache, &kv, 0);
        }
        assert_eq!(cache.dims(), &[5, 4]);
        assert_eq!(cache.at(&[3, 0]), 3.0);
    }

    #[test]
    fn narrow_extracts_span() {
        let x = arange([4, 2]);
        let y = narrow(&x, 0, 1, 2);
        assert_eq!(y.dims(), &[2, 2]);
        assert_eq!(y.data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn narrow_inner_dim() {
        let x = arange([2, 4]);
        let y = narrow(&x, 1, 2, 2);
        assert_eq!(y.data(), &[2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn select_drops_dim() {
        let x = arange([3, 4]);
        let row = select(&x, 0, 1);
        assert_eq!(row.dims(), &[4]);
        assert_eq!(row.data(), &[4.0, 5.0, 6.0, 7.0]);
        let col = select(&x, 1, 0);
        assert_eq!(col.dims(), &[3]);
        assert_eq!(col.data(), &[0.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds dim size")]
    fn narrow_out_of_range_panics() {
        narrow(&arange([2, 2]), 0, 1, 2);
    }

    #[test]
    fn concat_then_narrow_roundtrip() {
        let a = arange([2, 3]);
        let b = arange([4, 3]);
        let c = concat(&a, &b, 0);
        assert_eq!(narrow(&c, 0, 0, 2), a);
        assert_eq!(narrow(&c, 0, 2, 4), b);
    }
}
