//! Convolution and pooling kernels (NCHW layout).
//!
//! [`conv2d`] dispatches between the scalar reference loop, a simd
//! variant that register-blocks eight contiguous output columns, and a
//! parallel variant that fans the `(n, cout)` output planes out over the
//! worker pool; all compute every output element identically, so results
//! are bit-for-bit equal. The quantized tiers do not cover convolution:
//! forcing `int8`/`fp16` runs the exact scalar kernel.

use crate::par;
use crate::stats::{self, Path};
use crate::tensor::Tensor;

/// Multiply-accumulates below which conv2d stays on the scalar loop.
pub const CONV_SIMD_MIN_MACS: usize = 1 << 12;

/// Multiply-accumulates at which conv2d is worth spreading over cores.
pub const CONV_PAR_MIN_MACS: usize = 1 << 19;

/// Lane width of the simd conv kernel (one `[f32; 8]` register block).
const LANES: usize = 8;

struct ConvGeom {
    n: usize,
    cin: usize,
    h: usize,
    wd: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    stride: usize,
    padding: usize,
}

fn conv_geom(x: &Tensor, w: &Tensor, bias: &Tensor, stride: usize, padding: usize) -> ConvGeom {
    assert_eq!(x.rank(), 4, "conv2d input must be NCHW");
    assert_eq!(w.rank(), 4, "conv2d weight must be [Cout,Cin,Kh,Kw]");
    assert!(stride >= 1, "stride must be >= 1");
    let (n, cin, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (cout, cin2, kh, kw) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    assert_eq!(cin, cin2, "channel mismatch: {cin} vs {cin2}");
    assert_eq!(bias.dims(), &[cout]);
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (wd + 2 * padding - kw) / stride + 1;
    ConvGeom {
        n,
        cin,
        h,
        wd,
        cout,
        kh,
        kw,
        oh,
        ow,
        stride,
        padding,
    }
}

/// Compute one `(ni, co)` output plane into `plane` (`oh*ow` elements).
fn conv_plane(
    plane: &mut [f32],
    g: &ConvGeom,
    xd: &[f32],
    wdta: &[f32],
    b: f32,
    ni: usize,
    co: usize,
) {
    for oy in 0..g.oh {
        for ox in 0..g.ow {
            let mut acc = b;
            for ci in 0..g.cin {
                for ky in 0..g.kh {
                    let iy = oy * g.stride + ky;
                    if iy < g.padding || iy - g.padding >= g.h {
                        continue;
                    }
                    let iy = iy - g.padding;
                    for kx in 0..g.kw {
                        let ix = ox * g.stride + kx;
                        if ix < g.padding || ix - g.padding >= g.wd {
                            continue;
                        }
                        let ix = ix - g.padding;
                        let xv = xd[((ni * g.cin + ci) * g.h + iy) * g.wd + ix];
                        let wv = wdta[((co * g.cin + ci) * g.kh + ky) * g.kw + kx];
                        acc += xv * wv;
                    }
                }
            }
            plane[oy * g.ow + ox] = acc;
        }
    }
}

/// Simd variant of [`conv_plane`]: eight contiguous output columns share
/// one `[f32; 8]` accumulator block held across the whole reduction.
/// Per output element the accumulation order — bias first, then
/// `(ci, ky, kx)` ascending with the same padding skips — is identical
/// to [`conv_plane`], so results are bit-for-bit equal.
fn conv_plane_simd(
    plane: &mut [f32],
    g: &ConvGeom,
    xd: &[f32],
    wdta: &[f32],
    b: f32,
    ni: usize,
    co: usize,
) {
    for oy in 0..g.oh {
        let full = g.ow - g.ow % LANES;
        for ox0 in (0..full).step_by(LANES) {
            let mut acc = [b; LANES];
            for ci in 0..g.cin {
                let xplane = ((ni * g.cin + ci) * g.h) * g.wd;
                let wplane = ((co * g.cin + ci) * g.kh) * g.kw;
                for ky in 0..g.kh {
                    let iy = oy * g.stride + ky;
                    if iy < g.padding || iy - g.padding >= g.h {
                        continue;
                    }
                    let xrow = xplane + (iy - g.padding) * g.wd;
                    for kx in 0..g.kw {
                        let wv = wdta[wplane + ky * g.kw + kx];
                        for (l, o) in acc.iter_mut().enumerate() {
                            let ix = (ox0 + l) * g.stride + kx;
                            if ix < g.padding || ix - g.padding >= g.wd {
                                continue;
                            }
                            *o += xd[xrow + ix - g.padding] * wv;
                        }
                    }
                }
            }
            plane[oy * g.ow + ox0..oy * g.ow + ox0 + LANES].copy_from_slice(&acc);
        }
        // Column tail: the scalar per-element loop, same order.
        for ox in full..g.ow {
            let mut acc = b;
            for ci in 0..g.cin {
                for ky in 0..g.kh {
                    let iy = oy * g.stride + ky;
                    if iy < g.padding || iy - g.padding >= g.h {
                        continue;
                    }
                    let iy = iy - g.padding;
                    for kx in 0..g.kw {
                        let ix = ox * g.stride + kx;
                        if ix < g.padding || ix - g.padding >= g.wd {
                            continue;
                        }
                        let ix = ix - g.padding;
                        let xv = xd[((ni * g.cin + ci) * g.h + iy) * g.wd + ix];
                        let wv = wdta[((co * g.cin + ci) * g.kh + ky) * g.kw + kx];
                        acc += xv * wv;
                    }
                }
            }
            plane[oy * g.ow + ox] = acc;
        }
    }
}

/// 2-D convolution: input `[N, Cin, H, W]`, weight `[Cout, Cin, Kh, Kw]`,
/// bias `[Cout]`, with the given stride and symmetric zero padding.
/// Dispatches between the scalar reference and the parallel kernel.
pub fn conv2d(x: &Tensor, w: &Tensor, bias: &Tensor, stride: usize, padding: usize) -> Tensor {
    let g = conv_geom(x, w, bias, stride, padding);
    // Forced `blocked` maps to the scalar reference (conv has no
    // distinct blocked kernel); forced quantized tiers also fall back to
    // the exact scalar kernel — quantization covers matmul/attention.
    match stats::forced_path() {
        Some(Path::Parallel) => return conv2d_parallel(x, w, bias, stride, padding),
        Some(Path::Simd) => return conv2d_simd(x, w, bias, stride, padding),
        Some(_) => return conv2d_scalar(x, w, bias, stride, padding),
        None => {}
    }
    let macs = g.n * g.cout * g.oh * g.ow * g.cin * g.kh * g.kw;
    let planes = g.n * g.cout;
    if g.oh * g.ow == 0 || macs < CONV_SIMD_MIN_MACS {
        conv2d_scalar(x, w, bias, stride, padding)
    } else if macs >= CONV_PAR_MIN_MACS && par::worker_count(planes) > 1 {
        conv2d_parallel(x, w, bias, stride, padding)
    } else {
        conv2d_simd(x, w, bias, stride, padding)
    }
}

/// conv2d with eight output columns per `[f32; 8]` register block.
/// Bit-identical to [`conv2d_scalar`].
pub fn conv2d_simd(x: &Tensor, w: &Tensor, bias: &Tensor, stride: usize, padding: usize) -> Tensor {
    let g = conv_geom(x, w, bias, stride, padding);
    stats::note("conv2d", Path::Simd);
    let xd = x.data();
    let wdta = w.data();
    let bd = bias.data();
    let plane_len = g.oh * g.ow;
    Tensor::build([g.n, g.cout, g.oh, g.ow], |out| {
        if plane_len > 0 {
            for (idx, plane) in out.chunks_mut(plane_len).enumerate() {
                let (ni, co) = (idx / g.cout, idx % g.cout);
                conv_plane_simd(plane, &g, xd, wdta, bd[co], ni, co);
            }
        }
    })
}

/// Reference conv2d: the scalar loop over every output element.
pub fn conv2d_scalar(
    x: &Tensor,
    w: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
) -> Tensor {
    let g = conv_geom(x, w, bias, stride, padding);
    stats::note("conv2d", Path::Scalar);
    let xd = x.data();
    let wdta = w.data();
    let plane_len = g.oh * g.ow;
    Tensor::build([g.n, g.cout, g.oh, g.ow], |out| {
        if plane_len > 0 {
            for (idx, plane) in out.chunks_mut(plane_len).enumerate() {
                let (ni, co) = (idx / g.cout, idx % g.cout);
                conv_plane(plane, &g, xd, wdta, bias.data()[co], ni, co);
            }
        }
    })
}

/// conv2d with `(n, cout)` output planes spread over cores (forced, for
/// benches/tests). Bit-identical to [`conv2d_scalar`].
pub fn conv2d_parallel(
    x: &Tensor,
    w: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
) -> Tensor {
    let g = conv_geom(x, w, bias, stride, padding);
    stats::note("conv2d", Path::Parallel);
    let xd = x.data();
    let wdta = w.data();
    let bd = bias.data();
    let plane_len = g.oh * g.ow;
    Tensor::build([g.n, g.cout, g.oh, g.ow], |out| {
        if plane_len > 0 {
            par::par_rows(out, plane_len, |plane0, chunk| {
                for (pi, plane) in chunk.chunks_mut(plane_len).enumerate() {
                    let idx = plane0 + pi;
                    let (ni, co) = (idx / g.cout, idx % g.cout);
                    conv_plane_simd(plane, &g, xd, wdta, bd[co], ni, co);
                }
            });
        }
    })
}

/// Pooling mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolMode {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// 2-D pooling over `[N, C, H, W]` with a square `k×k` window and the given
/// stride.
pub fn pool2d(x: &Tensor, k: usize, stride: usize, mode: PoolMode) -> Tensor {
    assert_eq!(x.rank(), 4, "pool2d input must be NCHW");
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    assert!(k >= 1 && stride >= 1 && h >= k && w >= k);
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let xd = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = match mode {
                        PoolMode::Max => f32::NEG_INFINITY,
                        PoolMode::Avg => 0.0,
                    };
                    for ky in 0..k {
                        for kx in 0..k {
                            let v =
                                xd[((ni * c + ci) * h + oy * stride + ky) * w + ox * stride + kx];
                            match mode {
                                PoolMode::Max => acc = acc.max(v),
                                PoolMode::Avg => acc += v,
                            }
                        }
                    }
                    if mode == PoolMode::Avg {
                        acc /= (k * k) as f32;
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec([n, c, oh, ow], out)
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 4);
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let plane = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            out[ni * c + ci] = x.data()[base..base + h * w].iter().sum::<f32>() / plane;
        }
    }
    Tensor::from_vec([n, c], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::arange;

    #[test]
    fn conv2d_identity_kernel() {
        let x = arange([1, 1, 3, 3]);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 1, 0);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_sum_kernel_known_values() {
        // 2x2 all-ones kernel over arange 3x3 = sums of 2x2 windows.
        let x = arange([1, 1, 3, 3]);
        let w = Tensor::ones([1, 1, 2, 2]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 1, 0);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn conv2d_padding_preserves_size() {
        let x = arange([1, 1, 4, 4]);
        let w = Tensor::ones([1, 1, 3, 3]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 1, 1);
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
    }

    #[test]
    fn conv2d_stride_downsamples() {
        let x = arange([1, 1, 4, 4]);
        let w = Tensor::ones([1, 1, 2, 2]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 2, 0);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn conv2d_bias_added() {
        let x = Tensor::zeros([1, 1, 2, 2]);
        let w = Tensor::ones([2, 1, 1, 1]);
        let bias = Tensor::from_vec([2], vec![3.0, -1.0]);
        let y = conv2d(&x, &w, &bias, 1, 0);
        assert_eq!(&y.data()[..4], &[3.0; 4]);
        assert_eq!(&y.data()[4..], &[-1.0; 4]);
    }

    #[test]
    fn conv2d_paths_agree_bitwise() {
        let x = crate::init::randn([2, 3, 9, 11], 7);
        let w = crate::init::randn([4, 3, 3, 3], 8);
        let bias = crate::init::randn([4], 9);
        let reference = conv2d_scalar(&x, &w, &bias, 2, 1);
        let par = conv2d_parallel(&x, &w, &bias, 2, 1);
        let simd = conv2d_simd(&x, &w, &bias, 2, 1);
        assert_eq!(reference.dims(), par.dims());
        assert_eq!(reference.data(), par.data());
        assert_eq!(reference.data(), simd.data());
        // Stride 1 with padding hits the contiguous-row lane loads.
        let r1 = conv2d_scalar(&x, &w, &bias, 1, 1);
        let s1 = conv2d_simd(&x, &w, &bias, 1, 1);
        assert_eq!(r1.data(), s1.data());
    }

    #[test]
    fn max_pool_picks_maxima() {
        let x = arange([1, 1, 4, 4]);
        let y = pool2d(&x, 2, 2, PoolMode::Max);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let x = arange([1, 1, 2, 2]);
        let y = pool2d(&x, 2, 2, PoolMode::Avg);
        assert_eq!(y.data(), &[1.5]);
    }

    #[test]
    fn global_avg_pool_shapes() {
        let x = arange([2, 3, 4, 4]);
        let y = global_avg_pool(&x);
        assert_eq!(y.dims(), &[2, 3]);
        // channel 0 of batch 0 is mean of 0..16 = 7.5
        assert!((y.data()[0] - 7.5).abs() < 1e-6);
    }
}
