//! Convolution and pooling kernels (NCHW layout).

use crate::tensor::Tensor;

/// 2-D convolution: input `[N, Cin, H, W]`, weight `[Cout, Cin, Kh, Kw]`,
/// bias `[Cout]`, with the given stride and symmetric zero padding.
pub fn conv2d(x: &Tensor, w: &Tensor, bias: &Tensor, stride: usize, padding: usize) -> Tensor {
    assert_eq!(x.rank(), 4, "conv2d input must be NCHW");
    assert_eq!(w.rank(), 4, "conv2d weight must be [Cout,Cin,Kh,Kw]");
    assert!(stride >= 1, "stride must be >= 1");
    let (n, cin, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (cout, cin2, kh, kw) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    assert_eq!(cin, cin2, "channel mismatch: {cin} vs {cin2}");
    assert_eq!(bias.dims(), &[cout]);
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (wd + 2 * padding - kw) / stride + 1;

    let xd = x.data();
    let wdta = w.data();
    let mut out = vec![0.0f32; n * cout * oh * ow];
    for ni in 0..n {
        for co in 0..cout {
            let b = bias.data()[co];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ci in 0..cin {
                        for ky in 0..kh {
                            let iy = oy * stride + ky;
                            if iy < padding || iy - padding >= h {
                                continue;
                            }
                            let iy = iy - padding;
                            for kx in 0..kw {
                                let ix = ox * stride + kx;
                                if ix < padding || ix - padding >= wd {
                                    continue;
                                }
                                let ix = ix - padding;
                                let xv = xd[((ni * cin + ci) * h + iy) * wd + ix];
                                let wv = wdta[((co * cin + ci) * kh + ky) * kw + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    out[((ni * cout + co) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec([n, cout, oh, ow], out)
}

/// Pooling mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolMode {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// 2-D pooling over `[N, C, H, W]` with a square `k×k` window and the given
/// stride.
pub fn pool2d(x: &Tensor, k: usize, stride: usize, mode: PoolMode) -> Tensor {
    assert_eq!(x.rank(), 4, "pool2d input must be NCHW");
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    assert!(k >= 1 && stride >= 1 && h >= k && w >= k);
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let xd = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = match mode {
                        PoolMode::Max => f32::NEG_INFINITY,
                        PoolMode::Avg => 0.0,
                    };
                    for ky in 0..k {
                        for kx in 0..k {
                            let v =
                                xd[((ni * c + ci) * h + oy * stride + ky) * w + ox * stride + kx];
                            match mode {
                                PoolMode::Max => acc = acc.max(v),
                                PoolMode::Avg => acc += v,
                            }
                        }
                    }
                    if mode == PoolMode::Avg {
                        acc /= (k * k) as f32;
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec([n, c, oh, ow], out)
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 4);
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let plane = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            out[ni * c + ci] = x.data()[base..base + h * w].iter().sum::<f32>() / plane;
        }
    }
    Tensor::from_vec([n, c], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::arange;

    #[test]
    fn conv2d_identity_kernel() {
        let x = arange([1, 1, 3, 3]);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 1, 0);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_sum_kernel_known_values() {
        // 2x2 all-ones kernel over arange 3x3 = sums of 2x2 windows.
        let x = arange([1, 1, 3, 3]);
        let w = Tensor::ones([1, 1, 2, 2]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 1, 0);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn conv2d_padding_preserves_size() {
        let x = arange([1, 1, 4, 4]);
        let w = Tensor::ones([1, 1, 3, 3]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 1, 1);
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
    }

    #[test]
    fn conv2d_stride_downsamples() {
        let x = arange([1, 1, 4, 4]);
        let w = Tensor::ones([1, 1, 2, 2]);
        let y = conv2d(&x, &w, &Tensor::zeros([1]), 2, 0);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn conv2d_bias_added() {
        let x = Tensor::zeros([1, 1, 2, 2]);
        let w = Tensor::ones([2, 1, 1, 1]);
        let bias = Tensor::from_vec([2], vec![3.0, -1.0]);
        let y = conv2d(&x, &w, &bias, 1, 0);
        assert_eq!(&y.data()[..4], &[3.0; 4]);
        assert_eq!(&y.data()[4..], &[-1.0; 4]);
    }

    #[test]
    fn max_pool_picks_maxima() {
        let x = arange([1, 1, 4, 4]);
        let y = pool2d(&x, 2, 2, PoolMode::Max);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let x = arange([1, 1, 2, 2]);
        let y = pool2d(&x, 2, 2, PoolMode::Avg);
        assert_eq!(y.data(), &[1.5]);
    }

    #[test]
    fn global_avg_pool_shapes() {
        let x = arange([2, 3, 4, 4]);
        let y = global_avg_pool(&x);
        assert_eq!(y.dims(), &[2, 3]);
        // channel 0 of batch 0 is mean of 0..16 = 7.5
        assert!((y.data()[0] - 7.5).abs() < 1e-6);
    }
}
