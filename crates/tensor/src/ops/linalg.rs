//! Dense linear algebra kernels.

use crate::tensor::Tensor;

/// `C[m,n] = A[m,k] · B[k,n]`. Naive triple loop with k-inner blocking via
/// iterator sums — adequate for the tiny functional-plane models.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2, got {}", a.shape());
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", a.shape(), b.shape());

    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Batched matmul over matching leading batch dims:
/// `C[b,m,n] = A[b,m,k] · B[b,k,n]`.
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "batched_matmul lhs must be rank-3");
    assert_eq!(b.rank(), 3, "batched_matmul rhs must be rank-3");
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "batch dims differ");
    assert_eq!(k, k2, "inner dims differ");
    let mut out = vec![0.0f32; ba * m * n];
    let ad = a.data();
    let bd = b.data();
    for batch in 0..ba {
        let abase = batch * m * k;
        let bbase = batch * k * n;
        let obase = batch * m * n;
        for i in 0..m {
            for p in 0..k {
                let av = ad[abase + i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[obase + i * n + j] += av * bd[bbase + p * n + j];
                }
            }
        }
    }
    Tensor::from_vec([ba, m, n], out)
}

/// Transpose a rank-2 tensor.
pub fn transpose2d(a: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "transpose2d requires rank-2");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec([n, m], out)
}

/// `y[m] = A[m,k] · x[k]` as a rank-1 result.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(x.rank(), 1);
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(k, x.dims()[0]);
    let ad = a.data();
    let xd = x.data();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            ad[i * k..(i + 1) * k]
                .iter()
                .zip(xd)
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect();
    Tensor::from_vec([m], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::arange;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = arange([3, 3]);
        let mut eye = Tensor::zeros([3, 3]);
        for i in 0..3 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn batched_matches_loop_of_matmuls() {
        let a = arange([2, 3, 4]);
        let b = arange([2, 4, 5]);
        let c = batched_matmul(&a, &b);
        for batch in 0..2 {
            let a2 = Tensor::from_vec([3, 4], a.data()[batch * 12..(batch + 1) * 12].to_vec());
            let b2 = Tensor::from_vec([4, 5], b.data()[batch * 20..(batch + 1) * 20].to_vec());
            let expect = matmul(&a2, &b2);
            let got = &c.data()[batch * 15..(batch + 1) * 15];
            assert_eq!(got, expect.data());
        }
    }

    #[test]
    fn transpose_involution() {
        let a = arange([3, 5]);
        assert_eq!(transpose2d(&transpose2d(&a)), a);
        assert_eq!(transpose2d(&a).at(&[4, 2]), a.at(&[2, 4]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = arange([4, 3]);
        let x = Tensor::from_vec([3], vec![1., 2., 3.]);
        let y = matvec(&a, &x);
        let x_col = x.clone().reshape([3, 1]);
        let y2 = matmul(&a, &x_col).reshape([4]);
        assert_eq!(y, y2);
    }
}
