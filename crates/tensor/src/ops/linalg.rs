//! Dense linear algebra kernels.
//!
//! Each heavy kernel has four exact implementations that produce
//! bit-identical results (accumulation order per output element is
//! ascending `p` with a single accumulator in all of them):
//!
//! * `*_scalar` — the naive reference loop, kept as ground truth;
//! * `*_blocked` — register/cache-blocked: 4 output rows × 64 output
//!   columns per tile, so each loaded B row is reused 4× and C is written
//!   exactly once;
//! * `*_simd` — the `[f32; 8]` register-blocked tier in [`crate::simd`]:
//!   the accumulator tile stays in vector registers for the whole
//!   reduction;
//! * `*_parallel` — the simd kernel with output rows (or batches)
//!   fanned out over the persistent worker pool.
//!
//! Two further *approximate* tiers live in [`crate::quant`] (int8 and
//! fp16) and are reachable here via [`crate::stats::force_path`]; their
//! error is bounded by the GA3xx error model, not bit-identity.
//!
//! The public entry points ([`matmul`], [`batched_matmul`]) dispatch on
//! problem size and record the chosen path in [`crate::stats`].

use crate::par;
use crate::quant;
use crate::simd;
use crate::stats::{self, Path};
use crate::tensor::Tensor;

/// Below this many FLOPs (`2·m·k·n`) the register-blocked kernel's tile
/// overhead outweighs its reuse: stay on the scalar loop.
pub const MATMUL_BLOCK_MIN_FLOPS: usize = 1 << 14;

/// At or above this many FLOPs the kernel is worth spreading over cores
/// (a pool hand-off costs ~1 µs; a 2²⁰-FLOP matmul runs ~100 µs scalar).
pub const MATMUL_PAR_MIN_FLOPS: usize = 1 << 20;

/// Output-row tile height of the blocked kernel.
const MR: usize = 4;
/// Output-column tile width of the blocked kernel.
const NR: usize = 64;

fn matmul_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2, got {}", a.shape());
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", a.shape(), b.shape());
    (m, k, n)
}

/// Reference triple loop over row slices, shared by [`matmul_scalar`] and
/// [`batched_matmul_scalar`].
fn matmul_scalar_into(out: &mut [f32], ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked kernel over a contiguous range of output rows. `out_rows` holds
/// rows `[row0, row0 + out_rows.len()/n)` of C; `ad`/`bd` are the full A
/// and B buffers. Accumulates each output element in ascending-`p` order,
/// so results are bit-identical to [`matmul_scalar_into`].
fn matmul_blocked_rows(
    out_rows: &mut [f32],
    row0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
) {
    let rows = out_rows.len() / n;
    let mut acc = [[0.0f32; NR]; MR];
    for i0 in (0..rows).step_by(MR) {
        let ir = (rows - i0).min(MR);
        for jt in (0..n).step_by(NR) {
            let jw = (n - jt).min(NR);
            for row in acc.iter_mut().take(ir) {
                row[..jw].fill(0.0);
            }
            for p in 0..k {
                let brow = &bd[p * n + jt..p * n + jt + jw];
                for (r, row) in acc.iter_mut().enumerate().take(ir) {
                    let av = ad[(row0 + i0 + r) * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in row[..jw].iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            for (r, arow) in acc.iter().enumerate().take(ir) {
                let obase = (i0 + r) * n + jt;
                out_rows[obase..obase + jw].copy_from_slice(&arow[..jw]);
            }
        }
    }
}

/// `C[m,n] = A[m,k] · B[k,n]`. Dispatches between the scalar reference,
/// the simd kernel, and the simd+parallel kernel on problem size; all
/// exact tiers produce bit-identical results. The blocked tier and the
/// quantized tiers are reachable via [`stats::force_path`].
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = matmul_dims(a, b);
    match stats::forced_path() {
        Some(Path::Scalar) => return matmul_scalar(a, b),
        Some(Path::Blocked) => return matmul_blocked(a, b),
        Some(Path::Simd) => return matmul_simd(a, b),
        Some(Path::Parallel) => return matmul_parallel(a, b),
        Some(Path::Int8) => return quant::matmul_int8(a, b),
        Some(Path::Fp16) => return quant::matmul_fp16(a, b),
        None => {}
    }
    let flops = 2 * m * k * n;
    if flops < MATMUL_BLOCK_MIN_FLOPS || m == 0 || k == 0 || n == 0 {
        return matmul_scalar(a, b);
    }
    if flops >= MATMUL_PAR_MIN_FLOPS && par::worker_count(m) > 1 {
        return matmul_parallel(a, b);
    }
    matmul_simd(a, b)
}

/// The naive reference matmul (always the scalar loop).
pub fn matmul_scalar(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = matmul_dims(a, b);
    stats::note("matmul", Path::Scalar);
    Tensor::build([m, n], |out| {
        matmul_scalar_into(out, a.data(), b.data(), m, k, n);
    })
}

/// The cache-blocked matmul on one thread (forced, for benches/tests).
pub fn matmul_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = matmul_dims(a, b);
    stats::note("matmul", Path::Blocked);
    Tensor::build([m, n], |out| {
        if n > 0 {
            matmul_blocked_rows(out, 0, a.data(), b.data(), k, n);
        }
    })
}

/// The `[f32; 8]` register-blocked matmul on one thread.
pub fn matmul_simd(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = matmul_dims(a, b);
    stats::note("matmul", Path::Simd);
    Tensor::build([m, n], |out| {
        if n > 0 {
            simd::matmul_simd_rows(out, 0, a.data(), b.data(), k, n);
        }
    })
}

/// The simd matmul with rows spread over the worker pool (forced, for
/// benches/tests).
pub fn matmul_parallel(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = matmul_dims(a, b);
    stats::note("matmul", Path::Parallel);
    Tensor::build([m, n], |out| {
        if n > 0 {
            let (ad, bd) = (a.data(), b.data());
            par::par_rows(out, n, |row0, chunk| {
                simd::matmul_simd_rows(chunk, row0, ad, bd, k, n);
            });
        }
    })
}

fn batched_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(a.rank(), 3, "batched_matmul lhs must be rank-3");
    assert_eq!(b.rank(), 3, "batched_matmul rhs must be rank-3");
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "batch dims differ");
    assert_eq!(k, k2, "inner dims differ");
    (ba, m, k, n)
}

/// Batched matmul over matching leading batch dims:
/// `C[b,m,n] = A[b,m,k] · B[b,k,n]`. Dispatches like [`matmul`], with
/// parallelism across batches.
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (ba, m, k, n) = batched_dims(a, b);
    match stats::forced_path() {
        Some(Path::Scalar) => return batched_matmul_scalar(a, b),
        Some(Path::Blocked) => return batched_matmul_blocked(a, b),
        Some(Path::Simd) => return batched_matmul_simd(a, b),
        Some(Path::Parallel) => return batched_matmul_parallel(a, b),
        Some(Path::Int8) => return quant::batched_matmul_int8(a, b),
        Some(Path::Fp16) => return quant::batched_matmul_fp16(a, b),
        None => {}
    }
    let flops = 2 * ba * m * k * n;
    if flops < MATMUL_BLOCK_MIN_FLOPS || ba * m * k * n == 0 {
        return batched_matmul_scalar(a, b);
    }
    if flops >= MATMUL_PAR_MIN_FLOPS && par::worker_count(ba) > 1 {
        return batched_matmul_parallel(a, b);
    }
    batched_matmul_simd(a, b)
}

/// Reference batched matmul: the scalar row-slice loop applied per batch.
pub fn batched_matmul_scalar(a: &Tensor, b: &Tensor) -> Tensor {
    let (ba, m, k, n) = batched_dims(a, b);
    stats::note("batched_matmul", Path::Scalar);
    let (ad, bd) = (a.data(), b.data());
    Tensor::build([ba, m, n], |out| {
        for batch in 0..ba {
            matmul_scalar_into(
                &mut out[batch * m * n..][..m * n],
                &ad[batch * m * k..][..m * k],
                &bd[batch * k * n..][..k * n],
                m,
                k,
                n,
            );
        }
    })
}

/// Blocked batched matmul on one thread (forced, for benches/tests).
pub fn batched_matmul_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (ba, m, k, n) = batched_dims(a, b);
    stats::note("batched_matmul", Path::Blocked);
    let (ad, bd) = (a.data(), b.data());
    Tensor::build([ba, m, n], |out| {
        if n > 0 {
            for batch in 0..ba {
                matmul_blocked_rows(
                    &mut out[batch * m * n..][..m * n],
                    0,
                    &ad[batch * m * k..][..m * k],
                    &bd[batch * k * n..][..k * n],
                    k,
                    n,
                );
            }
        }
    })
}

/// Register-blocked batched matmul on one thread.
pub fn batched_matmul_simd(a: &Tensor, b: &Tensor) -> Tensor {
    let (ba, m, k, n) = batched_dims(a, b);
    stats::note("batched_matmul", Path::Simd);
    let (ad, bd) = (a.data(), b.data());
    Tensor::build([ba, m, n], |out| {
        if n > 0 {
            for batch in 0..ba {
                simd::matmul_simd_rows(
                    &mut out[batch * m * n..][..m * n],
                    0,
                    &ad[batch * m * k..][..m * k],
                    &bd[batch * k * n..][..k * n],
                    k,
                    n,
                );
            }
        }
    })
}

/// Simd batched matmul with batches spread over the worker pool (forced,
/// for benches/tests).
pub fn batched_matmul_parallel(a: &Tensor, b: &Tensor) -> Tensor {
    let (ba, m, k, n) = batched_dims(a, b);
    stats::note("batched_matmul", Path::Parallel);
    let (ad, bd) = (a.data(), b.data());
    Tensor::build([ba, m, n], |out| {
        if m * n > 0 {
            par::par_rows(out, m * n, |b0, chunk| {
                for (bi, osub) in chunk.chunks_mut(m * n).enumerate() {
                    let batch = b0 + bi;
                    simd::matmul_simd_rows(
                        osub,
                        0,
                        &ad[batch * m * k..][..m * k],
                        &bd[batch * k * n..][..k * n],
                        k,
                        n,
                    );
                }
            });
        }
    })
}

/// `C[m,n] = init[m,n] + A[m,k] · B[k,n]`, continuing `init`'s
/// accumulation: each output element starts from the carried partial and
/// folds `A`'s reduction in ascending-`p` order with the same zero-skip
/// as [`matmul_scalar_into`]. Chaining
/// `matmul_acc(a_i, b_i, partial_{i-1})` over contiguous k-range chunks
/// `(a_i, b_i)` therefore replays the *identical* f32 operation sequence
/// as the unsharded `matmul(a, b)` — the bit-exact row-parallel
/// (reduction-split) sharding primitive.
pub fn matmul_acc(a: &Tensor, b: &Tensor, init: &Tensor) -> Tensor {
    let (m, k, n) = matmul_dims(a, b);
    assert_eq!(
        init.dims(),
        &[m, n],
        "matmul_acc init must be [{m},{n}], got {}",
        init.shape()
    );
    // Recorded under the matmul family: it is a matmul, pinned to the
    // scalar tier so the carried fold order is the reference order.
    stats::note("matmul", Path::Scalar);
    let id = init.data();
    Tensor::build([m, n], |out| {
        out.copy_from_slice(id);
        matmul_scalar_into(out, a.data(), b.data(), m, k, n);
    })
}

/// Transpose a rank-2 tensor.
pub fn transpose2d(a: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "transpose2d requires rank-2");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let ad = a.data();
    Tensor::build([n, m], |out| {
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = ad[i * n + j];
            }
        }
    })
}

/// `y[m] = A[m,k] · x[k]` as a rank-1 result.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(x.rank(), 1);
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(k, x.dims()[0]);
    let ad = a.data();
    let xd = x.data();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            ad[i * k..(i + 1) * k]
                .iter()
                .zip(xd)
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect();
    Tensor::from_vec([m], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::arange;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = arange([3, 3]);
        let mut eye = Tensor::zeros([3, 3]);
        for i in 0..3 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn all_matmul_paths_agree_bitwise() {
        // Ragged dims exercise partial MR/NR tiles and the simd column
        // tail.
        let a = crate::init::randn([37, 53], 1);
        let b = crate::init::randn([53, 71], 2);
        let reference = matmul_scalar(&a, &b);
        assert_eq!(matmul_blocked(&a, &b), reference);
        assert_eq!(matmul_simd(&a, &b), reference);
        assert_eq!(matmul_parallel(&a, &b), reference);
        assert_eq!(matmul(&a, &b), reference);
    }

    #[test]
    fn batched_paths_agree_bitwise() {
        let a = crate::init::randn([3, 17, 29], 3);
        let b = crate::init::randn([3, 29, 19], 4);
        let reference = batched_matmul_scalar(&a, &b);
        assert_eq!(batched_matmul_blocked(&a, &b), reference);
        assert_eq!(batched_matmul_simd(&a, &b), reference);
        assert_eq!(batched_matmul_parallel(&a, &b), reference);
        assert_eq!(batched_matmul(&a, &b), reference);
    }

    #[test]
    fn degenerate_dims_are_fine() {
        let a = Tensor::zeros([0usize, 4].to_vec());
        let b = Tensor::zeros([4, 5]);
        assert_eq!(matmul(&a, &b).dims(), &[0, 5]);
        let a = Tensor::zeros([3, 0usize].to_vec());
        let b = Tensor::zeros([0usize, 5].to_vec());
        assert_eq!(matmul(&a, &b), Tensor::zeros([3, 5]));
    }

    #[test]
    fn dispatch_records_path() {
        let before = crate::stats::snapshot();
        let a = crate::init::randn([64, 64], 5);
        let b = crate::init::randn([64, 64], 6);
        let _ = matmul(&a, &b); // 512k FLOPs: simd or parallel, not scalar
        let delta = crate::stats::snapshot().since(&before);
        assert!(
            delta.get("matmul", Path::Simd) + delta.get("matmul", Path::Parallel) >= 1,
            "large matmul must leave the scalar path"
        );
    }

    #[test]
    fn batched_matches_loop_of_matmuls() {
        let a = arange([2, 3, 4]);
        let b = arange([2, 4, 5]);
        let c = batched_matmul(&a, &b);
        for batch in 0..2 {
            let a2 = Tensor::from_vec([3, 4], a.data()[batch * 12..(batch + 1) * 12].to_vec());
            let b2 = Tensor::from_vec([4, 5], b.data()[batch * 20..(batch + 1) * 20].to_vec());
            let expect = matmul(&a2, &b2);
            let got = &c.data()[batch * 15..(batch + 1) * 15];
            assert_eq!(got, expect.data());
        }
    }

    #[test]
    fn transpose_involution() {
        let a = arange([3, 5]);
        assert_eq!(transpose2d(&transpose2d(&a)), a);
        assert_eq!(transpose2d(&a).at(&[4, 2]), a.at(&[2, 4]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = arange([4, 3]);
        let x = Tensor::from_vec([3], vec![1., 2., 3.]);
        let y = matvec(&a, &x);
        let x_col = x.clone().reshape([3, 1]);
        let y2 = matmul(&a, &x_col).reshape([4]);
        assert_eq!(y, y2);
    }
}
