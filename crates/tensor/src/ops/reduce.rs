//! Reductions over the innermost dimension.

use crate::tensor::{IndexTensor, Tensor};

/// Sum over the innermost dimension, dropping it.
pub fn sum_lastdim(x: &Tensor) -> Tensor {
    fold_lastdim(x, 0.0, |acc, v| acc + v, |acc, _| acc)
}

/// Mean over the innermost dimension, dropping it.
pub fn mean_lastdim(x: &Tensor) -> Tensor {
    fold_lastdim(x, 0.0, |acc, v| acc + v, |acc, n| acc / n as f32)
}

/// Max over the innermost dimension, dropping it.
pub fn max_lastdim(x: &Tensor) -> Tensor {
    fold_lastdim(x, f32::NEG_INFINITY, |acc, v| acc.max(v), |acc, _| acc)
}

/// Argmax over the innermost dimension, dropping it. First maximum wins on
/// ties (deterministic greedy decoding relies on this).
pub fn argmax_lastdim(x: &Tensor) -> IndexTensor {
    let inner = *x.dims().last().expect("argmax requires rank >= 1");
    let rows = x.len() / inner;
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &x.data()[r * inner..(r + 1) * inner];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best as i64);
    }
    let outer: Vec<usize> = x.dims()[..x.rank() - 1].to_vec();
    let shape = if outer.is_empty() { vec![1] } else { outer };
    IndexTensor::from_vec(shape, out)
}

fn fold_lastdim(
    x: &Tensor,
    init: f32,
    step: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Tensor {
    let inner = *x.dims().last().expect("reduction requires rank >= 1");
    let rows = x.len() / inner;
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let acc = x.data()[r * inner..(r + 1) * inner]
            .iter()
            .fold(init, |a, &v| step(a, v));
        out.push(finish(acc, inner));
    }
    let outer: Vec<usize> = x.dims()[..x.rank() - 1].to_vec();
    let shape = if outer.is_empty() { vec![1] } else { outer };
    Tensor::from_vec(shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_max() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, -5.0, 0.0]);
        assert_eq!(sum_lastdim(&x).data(), &[6.0, -6.0]);
        assert_eq!(mean_lastdim(&x).data(), &[2.0, -2.0]);
        assert_eq!(max_lastdim(&x).data(), &[3.0, 0.0]);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let x = Tensor::from_vec([1, 4], vec![5.0, 9.0, 9.0, 1.0]);
        assert_eq!(argmax_lastdim(&x).data(), &[1]);
    }

    #[test]
    fn argmax_per_row() {
        let x = Tensor::from_vec([3, 2], vec![0.0, 1.0, 1.0, 0.0, -2.0, -1.0]);
        assert_eq!(argmax_lastdim(&x).data(), &[1, 0, 1]);
    }

    #[test]
    fn rank1_reduces_to_single() {
        let x = Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum_lastdim(&x).data(), &[10.0]);
        assert_eq!(argmax_lastdim(&x).data(), &[3]);
    }
}
