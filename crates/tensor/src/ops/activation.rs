//! Pointwise activations and softmax.

use crate::tensor::Tensor;

/// Elementwise ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    map(x, |v| v.max(0.0))
}

/// Elementwise GELU (tanh approximation, as used by GPT-style models).
pub fn gelu(x: &Tensor) -> Tensor {
    map(x, |v| {
        0.5 * v * (1.0 + (0.797_884_6 * (v + 0.044_715 * v * v * v)).tanh())
    })
}

/// Elementwise SiLU / swish.
pub fn silu(x: &Tensor) -> Tensor {
    map(x, |v| v / (1.0 + (-v).exp()))
}

/// Elementwise sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    map(x, |v| 1.0 / (1.0 + (-v).exp()))
}

/// Numerically-stable softmax over the innermost dimension.
pub fn softmax_lastdim(x: &Tensor) -> Tensor {
    let dims = x.dims().to_vec();
    assert!(!dims.is_empty(), "softmax requires rank >= 1");
    let inner = *dims.last().expect("non-empty dims");
    let rows = x.len() / inner;
    Tensor::build(dims, |out| {
        for r in 0..rows {
            let row = &x.data()[r * inner..(r + 1) * inner];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &v) in out[r * inner..(r + 1) * inner].iter_mut().zip(row) {
                let e = (v - max).exp();
                *o = e;
                sum += e;
            }
            for o in &mut out[r * inner..(r + 1) * inner] {
                *o /= sum;
            }
        }
    })
}

fn map(x: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    Tensor::build(x.dims().to_vec(), |out| {
        for (o, &v) in out.iter_mut().zip(x.data()) {
            *o = f(v);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec([4], vec![-2.0, -0.5, 0.0, 3.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn gelu_reference_points() {
        let x = Tensor::from_vec([3], vec![0.0, 1.0, -1.0]);
        let y = gelu(&x);
        assert!((y.data()[0] - 0.0).abs() < 1e-6);
        assert!((y.data()[1] - 0.8412).abs() < 1e-3);
        assert!((y.data()[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn silu_and_sigmoid_relation() {
        let x = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]);
        let s = silu(&x);
        let sig = sigmoid(&x);
        for i in 0..3 {
            assert!((s.data()[i] - x.data()[i] * sig.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let y = softmax_lastdim(&x);
        for r in 0..2 {
            let sum: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Large inputs must not overflow (stability check).
        assert!(y.data()[3].is_finite());
        // Monotonicity within a row.
        assert!(y.data()[0] < y.data()[1] && y.data()[1] < y.data()[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec([1, 4], vec![0.1, 0.2, 0.3, 0.4]);
        let shifted = Tensor::from_vec([1, 4], vec![100.1, 100.2, 100.3, 100.4]);
        assert!(softmax_lastdim(&x).approx_eq(&softmax_lastdim(&shifted), 1e-5));
    }
}
