//! Real CPU kernels for the functional execution plane.

pub mod activation;
pub mod attention;
pub mod collective;
pub mod conv;
pub mod elementwise;
pub mod embedding;
pub mod linalg;
pub mod norm;
pub mod reduce;
pub mod shape_ops;

pub use activation::{gelu, relu, sigmoid, silu, softmax_lastdim};
pub use attention::{
    attention, multi_head_attention, multi_head_attention_parallel,
    multi_head_attention_sequential, ATTENTION_PAR_MIN_FLOPS,
};
pub use collective::{all_gather, all_reduce_sum};
pub use conv::{
    conv2d, conv2d_parallel, conv2d_scalar, conv2d_simd, global_avg_pool, pool2d, PoolMode,
    CONV_PAR_MIN_MACS, CONV_SIMD_MIN_MACS,
};
pub use elementwise::{add, add_bias, mul, scale, sub};
pub use embedding::{gather_rows, gather_sum};
pub use linalg::{
    batched_matmul, batched_matmul_blocked, batched_matmul_parallel, batched_matmul_scalar,
    batched_matmul_simd, matmul, matmul_acc, matmul_blocked, matmul_parallel, matmul_scalar,
    matmul_simd, matvec, transpose2d, MATMUL_BLOCK_MIN_FLOPS, MATMUL_PAR_MIN_FLOPS,
};
pub use norm::{batch_norm_2d, layer_norm, rms_norm};
pub use reduce::{argmax_lastdim, max_lastdim, mean_lastdim, sum_lastdim};
pub use shape_ops::{concat, narrow, select};
