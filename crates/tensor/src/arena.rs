//! Recycling allocator for kernel output buffers.
//!
//! Every kernel output is an `Arc<[f32]>`. Allocating one per node per
//! step is pure churn in the interpreter's wavefront loop: a dead
//! intermediate's buffer is exactly the right size for the same node on
//! the next step. The arena keeps a bounded free list of uniquely-owned
//! buffers keyed by length; [`Tensor::build`](crate::Tensor::build)
//! draws from it and the interpreter returns dead intermediates via
//! [`recycle`].
//!
//! Buffers are handed out zeroed, so a recycled allocation is
//! observationally identical to a fresh `vec![0.0; len]` — reuse can
//! never change results, only allocation counts. Only buffers with no
//! other strong or weak references are retained; everything else is
//! dropped on the spot.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on retained floats (2^22 ≈ 16 MiB) — covers every tensor
/// in the functional-plane test zoo many times over while keeping the
/// worst-case footprint trivial.
const CAPACITY_FLOATS: usize = 1 << 22;

#[derive(Default)]
struct Arena {
    free: HashMap<usize, Vec<Arc<[f32]>>>,
    held_floats: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

static ARENA: OnceLock<Mutex<Arena>> = OnceLock::new();

static EMPTY: OnceLock<Arc<[f32]>> = OnceLock::new();

/// The shared zero-length buffer. `Tensor::into_storage` swaps it in so
/// the tensor's destructor sees shared storage and leaves it alone.
pub fn empty() -> Arc<[f32]> {
    EMPTY.get_or_init(|| Arc::from([] as [f32; 0])).clone()
}

fn arena() -> &'static Mutex<Arena> {
    ARENA.get_or_init(|| Mutex::new(Arena::default()))
}

/// A zeroed buffer of `len` floats, recycled when one of that exact
/// length is free, freshly allocated otherwise.
pub fn alloc_zeroed(len: usize) -> Arc<[f32]> {
    if len > 0 {
        let mut guard = arena().lock().unwrap();
        let reuse = guard.free.get_mut(&len).and_then(Vec::pop);
        if let Some(mut buf) = reuse {
            guard.held_floats -= len;
            guard.hits += 1;
            drop(guard);
            // `recycle` only retains unique buffers, so `get_mut`
            // succeeds; re-checked rather than unwrapped for safety.
            if let Some(slice) = Arc::get_mut(&mut buf) {
                slice.fill(0.0);
                return buf;
            }
        } else {
            guard.misses += 1;
        }
    }
    vec![0.0f32; len].into()
}

/// Offer a dead tensor's storage back to the arena. Shared or oversized
/// buffers are simply dropped.
pub fn recycle(buf: Arc<[f32]>) {
    let len = buf.len();
    if len == 0 || Arc::strong_count(&buf) != 1 || Arc::weak_count(&buf) != 0 {
        return;
    }
    let mut guard = arena().lock().unwrap();
    if guard.held_floats + len > CAPACITY_FLOATS {
        return;
    }
    guard.held_floats += len;
    guard.recycled += 1;
    guard.free.entry(len).or_default().push(buf);
}

/// `(hits, misses, recycled, held_floats)` — allocation-reuse counters
/// for benches and the arena effectiveness test.
pub fn counters() -> (u64, u64, u64, usize) {
    let guard = arena().lock().unwrap();
    (guard.hits, guard.misses, guard.recycled, guard.held_floats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused_and_zeroed() {
        // Use a length no kernel test allocates so the process-global
        // free list is predictable within this test.
        let len = 12_345;
        let mut buf = alloc_zeroed(len);
        Arc::get_mut(&mut buf).unwrap().fill(7.0);
        let ptr = Arc::as_ptr(&buf);
        recycle(buf);
        let again = alloc_zeroed(len);
        assert_eq!(Arc::as_ptr(&again), ptr, "same allocation came back");
        assert!(again.iter().all(|&v| v == 0.0), "recycled buffer zeroed");
    }

    #[test]
    fn shared_buffers_are_not_retained() {
        let len = 23_456;
        let buf = alloc_zeroed(len);
        let extra = Arc::clone(&buf);
        let before = counters().2;
        recycle(buf); // refused: strong_count == 2
        assert_eq!(counters().2, before, "shared buffer must not be pooled");
        drop(extra);
    }

    #[test]
    fn zero_len_is_fine() {
        let buf = alloc_zeroed(0);
        assert!(buf.is_empty());
        recycle(buf);
    }
}
