//! Minimal structured parallelism for kernels, built on the persistent
//! worker pool in [`crate::pool`].
//!
//! The functional plane cannot take a thread-pool *dependency*, so it
//! owns a tiny one: workers are spawned once per process and parallel
//! kernels fan disjoint row ranges out over them through
//! [`pool::scope`]. Work is only split when the host actually has spare
//! cores and the task list is wide enough to amortize the queue
//! hand-off; callers gate on a FLOP threshold on top of this. When
//! `available_parallelism()` errors or reports a single core, every
//! helper here degrades to a plain sequential call — no queue, no
//! threads, no per-call setup cost at all.

use crate::pool;
use std::sync::OnceLock;

/// Host core count (or the `GENIE_POOL_THREADS` override), probed once
/// per process: `available_parallelism` can be a syscall, and the kernel
/// hot path must not repeat it per call.
fn cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(pool::capacity)
}

/// Number of worker threads worth using for `tasks` independent pieces of
/// work: capped by available cores and by the task count itself.
pub(crate) fn worker_count(tasks: usize) -> usize {
    cores().min(tasks).max(1)
}

/// Run `f(start_row, rows_chunk)` over `out` split into contiguous chunks
/// of `row_len`-sized rows, in parallel across available cores. `f`
/// receives the index of the first row in its chunk and the mutable chunk
/// (a whole number of rows). Falls back to a single in-thread call when
/// parallelism would not help.
pub(crate) fn par_rows<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(row_len > 0 && out.len().is_multiple_of(row_len));
    if out.is_empty() {
        return;
    }
    let rows = out.len() / row_len;
    let workers = worker_count(rows);
    if workers <= 1 {
        f(0, out);
        return;
    }
    // Ceil-divide rows over workers; each chunk is a whole number of rows.
    let rows_per = rows.div_ceil(workers);
    pool::scope(|scope| {
        let mut rest = out;
        let mut row0 = 0;
        while !rest.is_empty() {
            let take = (rows_per * row_len).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fref = &f;
            let start = row0;
            scope.spawn(move || fref(start, chunk));
            row0 += take / row_len;
            rest = tail;
        }
    });
}

/// Run `f(i)` for every `i` in `0..tasks` in parallel, collecting results
/// in task order. Falls back to a sequential loop on a single core.
pub(crate) fn par_map<T, F>(tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(tasks);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let per = tasks.div_ceil(workers);
    pool::scope(|scope| {
        let mut rest = slots.as_mut_slice();
        let mut base = 0;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fref = &f;
            let start = base;
            scope.spawn(move || {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(fref(start + k));
                }
            });
            base += take;
            rest = tail;
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_covers_every_row_once() {
        let mut out = vec![0.0f32; 7 * 3];
        par_rows(&mut out, 3, |row0, chunk| {
            for (r, row) in chunk.chunks_mut(3).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + r) as f32;
                }
            }
        });
        for (r, row) in out.chunks(3).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r}: {row:?}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let got = par_map(13, |i| i * i);
        let want: Vec<usize> = (0..13).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut out: Vec<f32> = Vec::new();
        par_rows(&mut out, 4, |_, _| panic!("no work expected"));
        assert!(par_map(0, |i| i).is_empty());
    }

    #[test]
    fn repeated_calls_reuse_pool_threads() {
        // The old implementation spawned OS threads per call; the pool
        // must hold its thread count flat across many calls.
        let mut out = vec![0.0f32; 64];
        par_rows(&mut out, 8, |_, chunk| chunk.fill(1.0));
        let spawned = pool::threads_spawned();
        for _ in 0..16 {
            let _ = par_map(8, |i| i);
            par_rows(&mut out, 8, |_, chunk| chunk.fill(2.0));
        }
        assert_eq!(pool::threads_spawned(), spawned);
    }
}
