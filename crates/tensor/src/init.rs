//! Deterministic tensor initialization.
//!
//! Every random tensor in Genie flows through a seeded RNG so that lazy
//! capture, remote execution, and lineage replay can be checked for
//! bit-identical results.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform values in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..shape.num_elements())
        .map(|_| rng.gen_range(lo..hi))
        .collect();
    Tensor::from_vec(shape, data)
}

/// Approximately standard-normal values (sum of uniforms; exactness is
/// irrelevant — determinism and scale are what tests rely on).
pub fn randn(shape: impl Into<Shape>, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..shape.num_elements())
        .map(|_| {
            // Irwin–Hall approximation to N(0, 1): 12 uniforms.
            let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
            s - 6.0
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot-scaled initialization for a weight of shape
/// `[fan_in, fan_out]` (or any shape, scaled by its first two dims).
pub fn xavier(shape: impl Into<Shape>, seed: u64) -> Tensor {
    let shape = shape.into();
    let (fan_in, fan_out) = match shape.dims() {
        [] => (1, 1),
        [n] => (*n, *n),
        dims => (dims[0], dims[1]),
    };
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -limit, limit, seed)
}

/// `0, 1, 2, …` reshaped — handy for exactness tests.
pub fn arange(shape: impl Into<Shape>) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.num_elements()).map(|x| x as f32).collect();
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_init_is_deterministic() {
        let a = randn([4, 4], 42);
        let b = randn([4, 4], 42);
        assert_eq!(a, b);
        let c = randn([4, 4], 43);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform([1000], -0.5, 0.5, 7);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn randn_is_roughly_centered() {
        let t = randn([10_000], 1);
        let mean: f32 = t.data().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_limit_scales_with_fan() {
        let small = xavier([2, 2], 3);
        let big = xavier([1000, 1000], 3);
        let max_small = small.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let max_big = big.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(max_small > max_big);
    }

    #[test]
    fn arange_values() {
        let t = arange([2, 3]);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
