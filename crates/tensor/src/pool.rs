//! Lazily-initialized persistent worker pool.
//!
//! `std::thread::scope` spawns and joins OS threads on every call — ~10 µs
//! per spawn, paid again by every parallel kernel. This pool spawns
//! `available_parallelism() - 1` workers exactly once per process and
//! re-uses them for every scoped fan-out, so the steady-state cost of a
//! parallel kernel call is one mutex push + condvar signal per chunk.
//!
//! [`scope`] keeps the structured-concurrency contract of
//! `thread::scope`: spawned closures may borrow from the caller's stack,
//! and `scope` does not return until every closure submitted through it
//! has finished (a join barrier on an outstanding-job count). The queue
//! type-erases the borrow lifetime to move jobs to long-lived workers;
//! that erasure is the one `unsafe` in the crate and is sound precisely
//! because of the join barrier (see the safety comment in
//! [`Scope::spawn`]).
//!
//! Deadlock freedom: the thread that called [`scope`] *helps* — while
//! waiting on the barrier it pops and runs queued jobs (its own or those
//! of nested scopes) instead of parking. On a host with one core the pool
//! has zero workers and every job runs inline in `spawn`, preserving
//! strict sequential semantics with no thread creation at all.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// A queued unit of work: the (lifetime-erased) closure plus the scope
/// whose barrier it must release.
struct Job {
    run: Box<dyn FnOnce() + Send>,
    scope: Arc<ScopeState>,
}

/// Join barrier for one [`scope`] call.
struct ScopeState {
    /// Jobs spawned but not yet finished.
    pending: AtomicUsize,
    /// Set when any job of this scope panicked; re-raised by [`scope`].
    panicked: AtomicBool,
    lock: Mutex<()>,
    done: Condvar,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            done: Condvar::new(),
        }
    }

    /// Mark one job finished; wake the scope owner when the count hits 0.
    fn complete(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.done.notify_all();
        }
    }
}

/// Process-wide pool state.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Background worker threads (0 on a single-core host).
    workers: usize,
    /// Jobs currently executing (on workers or helping scope owners);
    /// exported as the `genie_worker_pool_busy` gauge.
    busy: AtomicUsize,
    /// High-water mark of `busy` since the last [`busy_peak_take`] —
    /// what the telemetry gauge actually reports, since `busy` itself
    /// has always settled back to zero by publish time.
    busy_peak: AtomicUsize,
    /// Total OS threads ever created by the pool. Stays constant after
    /// first use — the property the "created once per process" test pins.
    spawned: AtomicUsize,
}

static POOL: OnceLock<Shared> = OnceLock::new();

/// Usable cores: the `GENIE_POOL_THREADS` override when set (≥ 1), the
/// host's `available_parallelism()` otherwise (1 when it errors). Read
/// once at pool initialization; [`crate::par`] sizes its splits off the
/// same number so dispatch and pool capacity always agree.
pub(crate) fn capacity() -> usize {
    match std::env::var("GENIE_POOL_THREADS") {
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        Err(_) => thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

fn shared() -> &'static Shared {
    let pool = POOL.get_or_init(|| {
        let cores = capacity();
        Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers: cores.saturating_sub(1),
            busy: AtomicUsize::new(0),
            busy_peak: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
        }
    });
    // Spawn workers exactly once (guarded by `spawned` CAS from 0).
    if pool.workers > 0
        && pool
            .spawned
            .compare_exchange(0, pool.workers, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    {
        for i in 0..pool.workers {
            thread::Builder::new()
                .name(format!("genie-pool-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
        }
    }
    pool
}

fn worker_loop(pool: &'static Shared) {
    loop {
        let job = {
            let mut queue = pool.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = pool.available.wait(queue).unwrap();
            }
        };
        run_job(pool, job);
    }
}

/// Execute one job, tracking occupancy and routing panics to its scope.
fn run_job(pool: &Shared, job: Job) {
    let Job { run, scope } = job;
    let now = pool.busy.fetch_add(1, Ordering::Relaxed) + 1;
    pool.busy_peak.fetch_max(now, Ordering::Relaxed);
    let result = panic::catch_unwind(AssertUnwindSafe(run));
    pool.busy.fetch_sub(1, Ordering::Relaxed);
    if result.is_err() {
        scope.panicked.store(true, Ordering::Relaxed);
    }
    scope.complete();
}

/// Handle for spawning borrowing jobs inside one [`scope`] call.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    pool: &'static Shared,
    /// Invariant over `'env`, mirroring `std::thread::Scope`.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queue `f` onto the pool. With no background workers the job runs
    /// inline, so single-core hosts never pay a queue round-trip.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let run: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `scope` blocks until `pending` reaches 0 (with
        // Acquire/Release ordering on the counter) before returning —
        // including when the scope body panics — so every queued job
        // finishes while the `'env` borrows it captures are still live.
        // The transmute only erases the lifetime; the vtable and data
        // pointer are unchanged.
        #[allow(unsafe_code)]
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
        let job = Job {
            run,
            scope: Arc::clone(&self.state),
        };
        if self.pool.workers == 0 {
            run_job(self.pool, job);
            return;
        }
        self.pool.queue.lock().unwrap().push_back(job);
        self.pool.available.notify_one();
    }
}

/// Structured fan-out over the persistent pool: like
/// `std::thread::scope`, but jobs run on long-lived workers. Returns
/// only after every spawned job completed; panics in jobs (or in the
/// scope body itself) are surfaced after the join barrier.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let pool = shared();
    let state = Arc::new(ScopeState::new());
    let sc = Scope {
        state: Arc::clone(&state),
        pool,
        _marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&sc)));

    // Join barrier with work-stealing: run queued jobs (ours or a nested
    // scope's) rather than parking while our jobs are still in flight.
    while state.pending.load(Ordering::Acquire) != 0 {
        let stolen = pool.queue.lock().unwrap().pop_front();
        match stolen {
            Some(job) => run_job(pool, job),
            None => {
                let guard = state.lock.lock().unwrap();
                if state.pending.load(Ordering::Acquire) != 0 {
                    // Timed wait so newly queued (stealable) jobs are
                    // noticed even if our wakeup races the queue push.
                    let _ = state
                        .done
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        }
    }

    match result {
        Ok(value) => {
            if state.panicked.load(Ordering::Relaxed) {
                panic!("genie-tensor pool: a scoped task panicked");
            }
            value
        }
        // The body's own panic wins over task panics for the payload.
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Number of background worker threads (0 on single-core hosts). Forces
/// pool initialization.
pub fn size() -> usize {
    shared().workers
}

/// Jobs executing right now — the `genie_worker_pool_busy` gauge.
pub fn busy() -> usize {
    match POOL.get() {
        Some(pool) => pool.busy.load(Ordering::Relaxed),
        None => 0,
    }
}

/// High-water mark of [`busy`] since the previous call, consumed on
/// read. The interpreter publishes this as `genie_worker_pool_busy`.
pub fn busy_peak_take() -> usize {
    match POOL.get() {
        Some(pool) => pool.busy_peak.swap(0, Ordering::Relaxed),
        None => 0,
    }
}

/// Total OS threads the pool ever created. Constant after first use.
pub fn threads_spawned() -> usize {
    match POOL.get() {
        Some(pool) => pool.spawned.load(Ordering::Relaxed),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_borrowed_work() {
        let mut out = vec![0u64; 64];
        scope(|s| {
            for (i, chunk) in out.chunks_mut(8).enumerate() {
                s.spawn(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 8 + j) as u64;
                    }
                });
            }
        });
        let want: Vec<u64> = (0..64).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn pool_threads_created_once_per_process() {
        // Warm the pool, record the thread count, then hammer it with
        // many scopes: the count must not move — the whole point of
        // replacing per-call thread::scope.
        scope(|s| s.spawn(|| {}));
        let after_first = threads_spawned();
        assert!(after_first <= size().max(1));
        for _ in 0..32 {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        std::hint::black_box(0u64);
                    });
                }
            });
        }
        assert_eq!(
            threads_spawned(),
            after_first,
            "pool must not spawn threads after initialization"
        );
        assert_eq!(threads_spawned(), size());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More nested scopes than workers: the owner threads must help
        // drain the queue instead of all parking.
        let mut totals = [0u64; 4];
        scope(|outer| {
            for (i, slot) in totals.iter_mut().enumerate() {
                outer.spawn(move || {
                    let mut inner_out = [0u64; 8];
                    scope(|inner| {
                        for (j, v) in inner_out.iter_mut().enumerate() {
                            inner.spawn(move || *v = (i * 8 + j) as u64);
                        }
                    });
                    *slot = inner_out.iter().sum();
                });
            }
        });
        for (i, total) in totals.iter().enumerate() {
            let want: u64 = (0..8).map(|j| (i * 8 + j) as u64).sum();
            assert_eq!(*total, want);
        }
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let result = panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {});
            });
        });
        assert!(result.is_err(), "scope must re-raise task panics");
    }

    #[test]
    fn busy_settles_to_zero() {
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    std::hint::black_box(1u32);
                });
            }
        });
        assert_eq!(busy(), 0, "no jobs in flight after scope returns");
    }
}
