//! Tensor shapes and row-major index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape: dimension sizes, outermost first. The empty shape is a
/// scalar. All Genie CPU tensors are contiguous row-major; strides are
//  derived, never stored.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Construct from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Scalar shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count.
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Total element count — short alias for hot-path callers that used to
    /// recompute `dims().iter().product()` inline.
    pub fn numel(&self) -> usize {
        self.num_elements()
    }

    /// Split around dimension `dim` for `[outer, dim, inner]` layout
    /// arithmetic: returns `(outer, self.dim(dim), inner)` where `outer` is
    /// the product of dims before `dim` and `inner` the product after.
    pub fn split_at_dim(&self, dim: usize) -> (usize, usize, usize) {
        assert!(dim < self.rank(), "dim {dim} out of range for {self}");
        let outer = self.0[..dim].iter().product();
        let inner = self.0[dim + 1..].iter().product();
        (outer, self.0[dim], inner)
    }

    /// Size of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (innermost stride = 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flatten a multi-index into a linear offset. Panics (debug) on
    /// out-of-range indices. Horner's rule over the dims — no stride
    /// vector is allocated (this sits on the per-element access path).
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank());
        debug_assert!(index.iter().zip(&self.0).all(|(&i, &d)| i < d));
        index
            .iter()
            .zip(&self.0)
            .fold(0, |off, (&i, &d)| off * d + i)
    }

    /// Whether `other` has the same element count (valid reshape target).
    pub fn can_reshape_to(&self, other: &Shape) -> bool {
        self.num_elements() == other.num_elements()
    }

    /// Shape with dimension `dim` replaced by `size`.
    pub fn with_dim(&self, dim: usize, size: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[dim] = size;
        Shape(dims)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}]",
            self.0
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x")
        )
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn offset_arithmetic() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn reshape_compatibility() {
        let a = Shape::new([6, 4]);
        assert!(a.can_reshape_to(&Shape::new([24])));
        assert!(a.can_reshape_to(&Shape::new([2, 3, 4])));
        assert!(!a.can_reshape_to(&Shape::new([5, 5])));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Shape::new([2, 3])), "[2x3]");
        assert_eq!(format!("{}", Shape::scalar()), "[]");
    }

    #[test]
    fn numel_and_split() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.split_at_dim(0), (1, 2, 12));
        assert_eq!(s.split_at_dim(1), (2, 3, 4));
        assert_eq!(s.split_at_dim(2), (6, 4, 1));
    }

    #[test]
    fn with_dim_replaces() {
        let s = Shape::new([2, 3]).with_dim(1, 7);
        assert_eq!(s.dims(), &[2, 7]);
    }
}
