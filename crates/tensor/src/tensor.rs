//! The dense f32 tensor used by Genie's functional execution plane.
//!
//! Simulation-scale models never materialize data, but functional tests and
//! the local CPU backend execute real arithmetic so we can prove lazy
//! capture, remote execution, and lineage replay produce *numerically
//! identical* results to eager evaluation. One element type (f32) keeps the
//! kernel surface small; precision variants matter only to the cost model,
//! which works from `genie-srg`'s `TensorMeta`, not from this type.
//!
//! Storage is a shared `Arc<[f32]>`: cloning a tensor is a refcount bump,
//! and `reshape`/[`Tensor::reshaped`] are pure metadata edits over the same
//! buffer. Mutation goes through copy-on-write ([`Tensor::data_mut`]), so
//! value semantics are preserved — a clone can never observe a later write
//! to its sibling. This is what lets the wavefront interpreter hand values
//! between graph levels without deep-copying activations.

use crate::shape::Shape;
use serde::de::Error as _;
use serde::ser::SerializeStruct;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::sync::Arc;

/// A contiguous, row-major, f32 tensor with shared (`Arc`) storage.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<[f32]>,
}

impl Tensor {
    /// Construct from a shape and backing data. Panics if sizes mismatch.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.num_elements(),
            data.len(),
            "shape {shape} does not match {} elements",
            data.len()
        );
        Tensor {
            shape,
            data: data.into(),
        }
    }

    /// Construct from a shape and an already-shared buffer (zero-copy).
    /// Panics if sizes mismatch.
    pub fn from_shared(shape: impl Into<Shape>, data: Arc<[f32]>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.num_elements(),
            data.len(),
            "shape {shape} does not match {} elements",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Build a tensor by writing into a zeroed output buffer drawn from
    /// the recycling arena. This is the kernel output path: it skips the
    /// `Vec` → `Arc<[f32]>` copy of [`Tensor::from_vec`] and reuses dead
    /// intermediates' allocations when the interpreter recycles them.
    pub fn build(shape: impl Into<Shape>, f: impl FnOnce(&mut [f32])) -> Self {
        let shape = shape.into();
        let mut data = crate::arena::alloc_zeroed(shape.num_elements());
        f(Arc::get_mut(&mut data).expect("freshly allocated buffer is unique"));
        Tensor { shape, data }
    }

    /// Consume the tensor and return its backing buffer — the hand-off
    /// the interpreter uses to recycle dead intermediates into the
    /// arena.
    pub fn into_storage(mut self) -> Arc<[f32]> {
        std::mem::replace(&mut self.data, crate::arena::empty())
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = crate::arena::alloc_zeroed(shape.num_elements());
        Tensor { shape, data }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        Tensor::build(shape, |out| out.fill(value))
    }

    /// Scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value].into(),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (copy-on-write: a shared buffer is
    /// detached first, so clones of this tensor are never affected).
    pub fn data_mut(&mut self) -> &mut [f32] {
        if Arc::strong_count(&self.data) != 1 || Arc::weak_count(&self.data) != 0 {
            self.data = Arc::from(&self.data[..]);
        }
        Arc::get_mut(&mut self.data).expect("buffer was just detached")
    }

    /// Consume into the backing data (copies only if the buffer is shared
    /// with another tensor).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.to_vec()
    }

    /// True when both tensors share the same backing buffer — clones and
    /// zero-copy reshapes do, deep copies don't.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Element access by multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access by multi-index (copy-on-write).
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data_mut()[off]
    }

    /// Reshape (zero-copy). Panics if the element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert!(
            self.shape.can_reshape_to(&shape),
            "cannot reshape {} to {shape}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Zero-copy reshaped view: same buffer, new shape metadata. Panics if
    /// the element counts differ.
    pub fn reshaped(&self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert!(
            self.shape.can_reshape_to(&shape),
            "cannot reshape {} to {shape}",
            self.shape
        );
        Tensor {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Size of the payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Maximum absolute difference to another tensor of identical shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Approximate equality within `tol` (absolute, elementwise).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl Serialize for Tensor {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Matches the former `derive(Serialize)` layout so stored artifacts
        // and wire formats are unchanged by the Arc storage switch.
        let mut st = serializer.serialize_struct("Tensor", 2)?;
        st.serialize_field("shape", &self.shape)?;
        st.serialize_field("data", &self.data[..])?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Tensor {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        #[serde(rename = "Tensor")]
        struct Raw {
            shape: Shape,
            data: Vec<f32>,
        }
        let raw = Raw::deserialize(deserializer)?;
        if raw.shape.num_elements() != raw.data.len() {
            return Err(D::Error::custom(format!(
                "shape {} does not match {} elements",
                raw.shape,
                raw.data.len()
            )));
        }
        Ok(Tensor {
            shape: raw.shape,
            data: raw.data.into(),
        })
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // A dying tensor with uniquely-owned storage hands its buffer
        // back to the recycling arena, so the next kernel output of the
        // same size skips the allocator entirely. Shared storage (live
        // clones, reshapes) exits on the cheap refcount check.
        if Arc::strong_count(&self.data) == 1 && Arc::weak_count(&self.data) == 0 {
            crate::arena::recycle(std::mem::replace(&mut self.data, crate::arena::empty()));
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?}", &self.data[..])
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, … {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

/// An integer index tensor (token ids, embedding rows, argmax results).
/// Shares storage on clone exactly like [`Tensor`].
#[derive(Clone, PartialEq, Eq)]
pub struct IndexTensor {
    shape: Shape,
    data: Arc<[i64]>,
}

impl IndexTensor {
    /// Construct from a shape and indices.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<i64>) -> Self {
        let shape = shape.into();
        assert_eq!(shape.num_elements(), data.len());
        IndexTensor {
            shape,
            data: data.into(),
        }
    }

    /// 1-D index tensor.
    pub fn from_slice(data: &[i64]) -> Self {
        IndexTensor {
            shape: Shape::new([data.len()]),
            data: data.to_vec().into(),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only data view.
    pub fn data(&self) -> &[i64] {
        &self.data
    }
}

impl Serialize for IndexTensor {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("IndexTensor", 2)?;
        st.serialize_field("shape", &self.shape)?;
        st.serialize_field("data", &self.data[..])?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for IndexTensor {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        #[serde(rename = "IndexTensor")]
        struct Raw {
            shape: Shape,
            data: Vec<i64>,
        }
        let raw = Raw::deserialize(deserializer)?;
        if raw.shape.num_elements() != raw.data.len() {
            return Err(D::Error::custom(format!(
                "shape {} does not match {} elements",
                raw.shape,
                raw.data.len()
            )));
        }
        Ok(IndexTensor {
            shape: raw.shape,
            data: raw.data.into(),
        })
    }
}

impl fmt::Debug for IndexTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IndexTensor{} {:?}", self.shape, &self.data[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones([3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full([2], 5.0).data(), &[5.0, 5.0]);
        assert_eq!(Tensor::scalar(2.5).at(&[]), 2.5);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_data_panics() {
        Tensor::from_vec([2, 2], vec![1.0]);
    }

    #[test]
    fn indexing() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        let mut t = t;
        *t.at_mut(&[1, 0]) = 42.0;
        assert_eq!(t.at(&[1, 0]), 42.0);
    }

    #[test]
    fn clone_is_zero_copy() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let c = t.clone();
        assert!(t.shares_storage(&c));
    }

    #[test]
    fn copy_on_write_detaches_clones() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let mut b = a.clone();
        *b.at_mut(&[0]) = 9.0;
        assert_eq!(a.data(), &[1.0, 2.0, 3.0], "original must be untouched");
        assert_eq!(b.data(), &[9.0, 2.0, 3.0]);
        assert!(!a.shares_storage(&b));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.clone().reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
        assert!(r.shares_storage(&t), "reshape must not copy");
    }

    #[test]
    fn reshaped_view_is_zero_copy() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let v = t.reshaped([6]);
        assert_eq!(v.dims(), &[6]);
        assert_eq!(v.data(), t.data());
        assert!(v.shares_storage(&t));
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn bad_reshape_panics() {
        Tensor::zeros([2, 3]).reshape([4]);
    }

    #[test]
    fn from_shared_wraps_buffer() {
        let buf: Arc<[f32]> = vec![1.0, 2.0].into();
        let t = Tensor::from_shared([2], Arc::clone(&buf));
        let u = Tensor::from_shared([1, 2], buf);
        assert_eq!(t.data(), &[1.0, 2.0]);
        assert!(t.shares_storage(&u));
    }

    #[test]
    fn serde_roundtrip_preserves_layout() {
        let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, r#"{"shape":[2,2],"data":[1.0,2.0,3.0,4.0]}"#);
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);

        let i = IndexTensor::from_slice(&[7, 8]);
        let json = serde_json::to_string(&i).unwrap();
        assert_eq!(json, r#"{"shape":[2],"data":[7,8]}"#);
        let back: IndexTensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn serde_rejects_mismatched_payload() {
        let err = serde_json::from_str::<Tensor>(r#"{"shape":[3],"data":[1.0]}"#);
        assert!(err.is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2], vec![1.0005, 2.0]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        assert!((a.max_abs_diff(&b) - 0.0005).abs() < 1e-6);
    }

    #[test]
    fn index_tensor_basics() {
        let t = IndexTensor::from_slice(&[7, 8, 9]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.data(), &[7, 8, 9]);
        assert_eq!(t.shape().dims(), &[3]);
    }

    #[test]
    fn debug_output_truncates() {
        let t = Tensor::zeros([100]);
        let s = format!("{t:?}");
        assert!(s.contains("100 elems"));
    }
}
