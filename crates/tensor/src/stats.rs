//! Kernel-dispatch accounting.
//!
//! Every heavy kernel records which implementation served a call: the
//! `scalar` reference loop, the cache-`blocked` single-thread kernel, or
//! the `parallel` (blocked + multi-core) kernel. The counters are process
//! globals so the interpreter and benches can report the dispatch mix —
//! `genie-frontend` publishes deltas into the telemetry registry as
//! `genie_tensor_kernel_dispatch_total{op,path}`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Which implementation served a kernel call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Path {
    /// Naive reference loop.
    Scalar,
    /// Cache-blocked, single thread.
    Blocked,
    /// Cache-blocked and spread over cores.
    Parallel,
}

impl Path {
    /// Stable label used in metrics.
    pub fn label(self) -> &'static str {
        match self {
            Path::Scalar => "scalar",
            Path::Blocked => "blocked",
            Path::Parallel => "parallel",
        }
    }

    fn index(self) -> usize {
        match self {
            Path::Scalar => 0,
            Path::Blocked => 1,
            Path::Parallel => 2,
        }
    }
}

/// Instrumented kernel families.
pub const OPS: [&str; 4] = ["matmul", "batched_matmul", "conv2d", "attention"];

const PATHS: [Path; 3] = [Path::Scalar, Path::Blocked, Path::Parallel];

static COUNTS: [[AtomicU64; 3]; 4] = [
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
];

fn op_index(op: &str) -> usize {
    OPS.iter().position(|&o| o == op).expect("known op family")
}

pub(crate) fn note(op: &str, path: Path) {
    COUNTS[op_index(op)][path.index()].fetch_add(1, Ordering::Relaxed);
}

// 0 = no override; 1..=3 = Path::index() + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Override kernel dispatch process-wide: every instrumented kernel
/// takes `path` regardless of problem size until cleared with `None`.
///
/// Exists for differential testing — running the same graph on two
/// tiers and comparing outputs against the static error bounds from
/// `genie-analysis` — and for benchmarking a single tier in isolation.
/// Callers must reset to `None` afterwards; tests that force a path
/// cannot run concurrently with tests asserting the natural dispatch
/// mix.
pub fn force_path(path: Option<Path>) {
    let raw = match path {
        None => 0,
        Some(p) => p.index() as u8 + 1,
    };
    FORCED.store(raw, Ordering::Relaxed);
}

/// The currently-forced dispatch path, if any.
pub fn forced_path() -> Option<Path> {
    match FORCED.load(Ordering::Relaxed) {
        1 => Some(Path::Scalar),
        2 => Some(Path::Blocked),
        3 => Some(Path::Parallel),
        _ => None,
    }
}

/// A point-in-time copy of the dispatch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    counts: [[u64; 3]; 4],
}

impl Snapshot {
    /// Count for one `(op, path)` cell.
    pub fn get(&self, op: &str, path: Path) -> u64 {
        self.counts[op_index(op)][path.index()]
    }

    /// All non-zero `(op, path label, count)` cells, in stable order.
    pub fn cells(&self) -> Vec<(&'static str, &'static str, u64)> {
        let mut out = Vec::new();
        for (oi, op) in OPS.iter().enumerate() {
            for path in PATHS {
                let n = self.counts[oi][path.index()];
                if n > 0 {
                    out.push((*op, path.label(), n));
                }
            }
        }
        out
    }

    /// Per-cell difference versus an earlier snapshot (saturating).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut counts = [[0u64; 3]; 4];
        for (oi, row) in counts.iter_mut().enumerate() {
            for (pi, cell) in row.iter_mut().enumerate() {
                *cell = self.counts[oi][pi].saturating_sub(earlier.counts[oi][pi]);
            }
        }
        Snapshot { counts }
    }

    /// Total calls across all cells.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

/// Read the current dispatch counters.
pub fn snapshot() -> Snapshot {
    let mut counts = [[0u64; 3]; 4];
    for (oi, row) in counts.iter_mut().enumerate() {
        for (pi, cell) in row.iter_mut().enumerate() {
            *cell = COUNTS[oi][pi].load(Ordering::Relaxed);
        }
    }
    Snapshot { counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_path_round_trips() {
        // The only test in this crate touching the override, so no
        // parallel-test interference; dispatch results are identical
        // across paths regardless.
        force_path(Some(Path::Scalar));
        assert_eq!(forced_path(), Some(Path::Scalar));
        force_path(Some(Path::Parallel));
        assert_eq!(forced_path(), Some(Path::Parallel));
        force_path(None);
        assert_eq!(forced_path(), None);
    }

    #[test]
    fn note_increments_the_right_cell() {
        // Counters are process-global and other tests run kernels in
        // parallel, so assert growth, never absolute values.
        let before = snapshot();
        note("matmul", Path::Blocked);
        note("matmul", Path::Blocked);
        note("conv2d", Path::Parallel);
        let delta = snapshot().since(&before);
        assert!(delta.get("matmul", Path::Blocked) >= 2);
        assert!(delta.get("conv2d", Path::Parallel) >= 1);
        assert!(delta.total() >= 3);
        assert!(delta
            .cells()
            .contains(&("matmul", "blocked", delta.get("matmul", Path::Blocked))));
    }
}
