//! Kernel-dispatch accounting.
//!
//! Every heavy kernel records which implementation served a call: the
//! `scalar` reference loop, the cache-`blocked` single-thread kernel, the
//! `simd` register-blocked kernel, the `parallel` (simd + multi-core)
//! kernel, or one of the quantized tiers (`int8`, `fp16`). The counters
//! are process globals so the interpreter and benches can report the
//! dispatch mix — `genie-frontend` publishes deltas into the telemetry
//! registry as `genie_tensor_kernel_dispatch_total{op,path}`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Which implementation served a kernel call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Path {
    /// Naive reference loop.
    Scalar,
    /// Cache-blocked, single thread.
    Blocked,
    /// Register-blocked and spread over cores.
    Parallel,
    /// Register-blocked `[f32; 8]` lanes, single thread. Bit-identical
    /// to the scalar reference (per-element reduction order preserved).
    Simd,
    /// Per-row/-column absmax int8 quantization with i32 accumulation.
    /// Approximate: bounded by the GA3xx int8 error model.
    Int8,
    /// Half-precision storage with f32 accumulation. Approximate:
    /// bounded by the GA3xx fp16 error model.
    Fp16,
}

/// Number of dispatch paths (array width of the counter table).
pub const PATH_COUNT: usize = 6;

impl Path {
    /// Stable label used in metrics.
    pub fn label(self) -> &'static str {
        match self {
            Path::Scalar => "scalar",
            Path::Blocked => "blocked",
            Path::Parallel => "parallel",
            Path::Simd => "simd",
            Path::Int8 => "int8",
            Path::Fp16 => "fp16",
        }
    }

    /// Parse a stable label back into a path (inverse of [`Path::label`]).
    pub fn from_label(label: &str) -> Option<Path> {
        PATHS.into_iter().find(|p| p.label() == label)
    }

    /// True for tiers that trade accuracy for speed; the GA3xx error
    /// model prices these with a tier factor > 1.
    pub fn is_quantized(self) -> bool {
        matches!(self, Path::Int8 | Path::Fp16)
    }

    fn index(self) -> usize {
        match self {
            Path::Scalar => 0,
            Path::Blocked => 1,
            Path::Parallel => 2,
            Path::Simd => 3,
            Path::Int8 => 4,
            Path::Fp16 => 5,
        }
    }
}

/// Instrumented kernel families.
pub const OPS: [&str; 4] = ["matmul", "batched_matmul", "conv2d", "attention"];

/// All dispatch paths, in counter-index order.
pub const PATHS: [Path; PATH_COUNT] = [
    Path::Scalar,
    Path::Blocked,
    Path::Parallel,
    Path::Simd,
    Path::Int8,
    Path::Fp16,
];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ROW: [AtomicU64; PATH_COUNT] = [ZERO; PATH_COUNT];
static COUNTS: [[AtomicU64; PATH_COUNT]; 4] = [ROW; 4];

fn op_index(op: &str) -> usize {
    OPS.iter().position(|&o| o == op).expect("known op family")
}

pub(crate) fn note(op: &str, path: Path) {
    COUNTS[op_index(op)][path.index()].fetch_add(1, Ordering::Relaxed);
}

// 0 = no override; 1..=PATH_COUNT = Path::index() + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Override kernel dispatch process-wide: every instrumented kernel
/// takes `path` regardless of problem size until cleared with `None`.
///
/// Exists for differential testing — running the same graph on two
/// tiers and comparing outputs against the static error bounds from
/// `genie-analysis` — and for benchmarking a single tier in isolation.
/// Callers must reset to `None` afterwards; tests that force a path
/// cannot run concurrently with tests asserting the natural dispatch
/// mix.
pub fn force_path(path: Option<Path>) {
    let raw = match path {
        None => 0,
        Some(p) => p.index() as u8 + 1,
    };
    FORCED.store(raw, Ordering::Relaxed);
}

/// The currently-forced dispatch path, if any.
pub fn forced_path() -> Option<Path> {
    match FORCED.load(Ordering::Relaxed) {
        0 => None,
        raw => Some(PATHS[raw as usize - 1]),
    }
}

/// A point-in-time copy of the dispatch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    counts: [[u64; PATH_COUNT]; 4],
}

impl Snapshot {
    /// Count for one `(op, path)` cell.
    pub fn get(&self, op: &str, path: Path) -> u64 {
        self.counts[op_index(op)][path.index()]
    }

    /// All non-zero `(op, path label, count)` cells, in stable order.
    pub fn cells(&self) -> Vec<(&'static str, &'static str, u64)> {
        let mut out = Vec::new();
        for (oi, op) in OPS.iter().enumerate() {
            for path in PATHS {
                let n = self.counts[oi][path.index()];
                if n > 0 {
                    out.push((*op, path.label(), n));
                }
            }
        }
        out
    }

    /// Total calls per path label across all ops, in stable path order,
    /// including zero cells — the per-tier mix benches print.
    pub fn by_path(&self) -> Vec<(&'static str, u64)> {
        PATHS
            .into_iter()
            .map(|p| {
                let total = self.counts.iter().map(|row| row[p.index()]).sum();
                (p.label(), total)
            })
            .collect()
    }

    /// Per-cell difference versus an earlier snapshot (saturating).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut counts = [[0u64; PATH_COUNT]; 4];
        for (oi, row) in counts.iter_mut().enumerate() {
            for (pi, cell) in row.iter_mut().enumerate() {
                *cell = self.counts[oi][pi].saturating_sub(earlier.counts[oi][pi]);
            }
        }
        Snapshot { counts }
    }

    /// Total calls across all cells.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

/// Read the current dispatch counters.
pub fn snapshot() -> Snapshot {
    let mut counts = [[0u64; PATH_COUNT]; 4];
    for (oi, row) in counts.iter_mut().enumerate() {
        for (pi, cell) in row.iter_mut().enumerate() {
            *cell = COUNTS[oi][pi].load(Ordering::Relaxed);
        }
    }
    Snapshot { counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_path_round_trips() {
        // The only test in this crate touching the override, so no
        // parallel-test interference; dispatch results are identical
        // across paths regardless.
        for p in PATHS {
            force_path(Some(p));
            assert_eq!(forced_path(), Some(p));
        }
        force_path(None);
        assert_eq!(forced_path(), None);
    }

    #[test]
    fn labels_round_trip() {
        for p in PATHS {
            assert_eq!(Path::from_label(p.label()), Some(p));
        }
        assert_eq!(Path::from_label("tpu"), None);
        assert!(Path::Int8.is_quantized() && Path::Fp16.is_quantized());
        assert!(!Path::Simd.is_quantized());
    }

    #[test]
    fn note_increments_the_right_cell() {
        // Counters are process-global and other tests run kernels in
        // parallel, so assert growth, never absolute values.
        let before = snapshot();
        note("matmul", Path::Blocked);
        note("matmul", Path::Blocked);
        note("conv2d", Path::Parallel);
        note("matmul", Path::Simd);
        note("attention", Path::Int8);
        let delta = snapshot().since(&before);
        assert!(delta.get("matmul", Path::Blocked) >= 2);
        assert!(delta.get("conv2d", Path::Parallel) >= 1);
        assert!(delta.get("matmul", Path::Simd) >= 1);
        assert!(delta.get("attention", Path::Int8) >= 1);
        assert!(delta.total() >= 5);
        assert!(delta
            .cells()
            .contains(&("matmul", "blocked", delta.get("matmul", Path::Blocked))));
        let by_path = delta.by_path();
        assert_eq!(by_path.len(), PATH_COUNT);
        assert!(by_path.contains(&("simd", delta.get("matmul", Path::Simd))));
    }
}
