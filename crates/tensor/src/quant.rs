//! Quantized kernel tiers: int8 (per-row/-column absmax) and fp16
//! (half storage, f32 accumulate).
//!
//! These tiers trade accuracy for arithmetic density and are therefore
//! *not* bit-identical to the scalar reference. Each carries a
//! mechanical worst-case error bound, re-derived here and advertised to
//! `genie-analysis` as a per-MAC tier factor so GA301 can statically
//! deny a plan whose `tolerance_rel` the tier cannot meet:
//!
//! * **int8** — `A`'s row `i` is scaled by `s_a = max|A[i,:]| / 127`,
//!   `B`'s column `j` by `s_b = max|B[:,j]| / 127`, both rounded to
//!   nearest; the dot product runs in i32 and is rescaled once by
//!   `s_a·s_b`. With `δ ≤ s/2` per quantized element,
//!   `|err[i,j]| ≤ k·Amax_i·Bmax_j·(2/254 + 1/(4·127²)) ≈ k·Amax·Bmax·2^-7`.
//!   Advertised per-MAC relative bound: `2^-6` ([`INT8_MAC_RELERR`]),
//!   a 2× safety margin.
//! * **fp16** — inputs are rounded through IEEE binary16
//!   (round-to-nearest-even) and the product accumulates in f32:
//!   `a' = a(1+δ)` with `|δ| ≤ 2^-11` in the normal range, so
//!   `|err[i,j]| ≤ k·Amax_i·Bmax_j·(2^-10 + O(2^-22))`. Advertised
//!   per-MAC relative bound: `2^-9` ([`FP16_MAC_RELERR`]).

use crate::stats::{self, Path};
use crate::tensor::Tensor;

/// Advertised per-MAC relative error bound of the int8 tier (2^-6),
/// relative to `k · max|A row| · max|B column|`. The mechanical bound is
/// ≈2^-7; GA3xx prices this tier as `INT8_MAC_RELERR / eps_f32`.
pub const INT8_MAC_RELERR: f64 = 0.015625;

/// Advertised per-MAC relative error bound of the fp16 tier (2^-9).
pub const FP16_MAC_RELERR: f64 = 0.001953125;

// --- int8 -----------------------------------------------------------------

/// Per-row absmax quantization of an `[rows, k]` row-major buffer.
/// Returns `(q, scales)` with `data[r*k+p] ≈ q[r*k+p] as f32 * scales[r]`.
pub fn quantize_rows_i8(data: &[f32], rows: usize, k: usize) -> (Vec<i8>, Vec<f32>) {
    let mut q = vec![0i8; rows * k];
    let mut scales = vec![0.0f32; rows];
    for r in 0..rows {
        let row = &data[r * k..(r + 1) * k];
        let absmax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        // An all-zero row quantizes to zeros; scale 1 avoids 0/0.
        let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
        scales[r] = scale;
        for (qv, &v) in q[r * k..(r + 1) * k].iter_mut().zip(row) {
            *qv = (v / scale).round().clamp(-127.0, 127.0) as i8;
        }
    }
    (q, scales)
}

/// Per-column absmax quantization of a `[k, n]` row-major buffer,
/// transposing to `[n, k]` so the int8 dot walks both operands
/// contiguously. Returns `(q_t, scales)` with
/// `data[p*n+j] ≈ q_t[j*k+p] as f32 * scales[j]`.
pub fn quantize_cols_i8(data: &[f32], k: usize, n: usize) -> (Vec<i8>, Vec<f32>) {
    let mut q = vec![0i8; n * k];
    let mut scales = vec![0.0f32; n];
    for j in 0..n {
        let mut absmax = 0.0f32;
        for p in 0..k {
            absmax = absmax.max(data[p * n + j].abs());
        }
        let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
        scales[j] = scale;
        for p in 0..k {
            q[j * k + p] = (data[p * n + j] / scale).round().clamp(-127.0, 127.0) as i8;
        }
    }
    (q, scales)
}

fn matmul_int8_into(out: &mut [f32], ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize) {
    // i32 accumulation is exact while k·127² fits: k up to ~2^17.
    debug_assert!(
        k <= (i32::MAX / (127 * 127)) as usize,
        "int8 tier: k={k} would overflow i32 accumulation"
    );
    let (qa, sa) = quantize_rows_i8(ad, m, k);
    let (qbt, sb) = quantize_cols_i8(bd, k, n);
    for i in 0..m {
        let arow = &qa[i * k..(i + 1) * k];
        for j in 0..n {
            let bcol = &qbt[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&a, &b) in arow.iter().zip(bcol) {
                acc += a as i32 * b as i32;
            }
            out[i * n + j] = acc as f32 * sa[i] * sb[j];
        }
    }
}

/// int8 matmul: `C[m,n] ≈ A[m,k] · B[k,n]` within the int8 error bound.
pub fn matmul_int8(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", a.shape(), b.shape());
    stats::note("matmul", Path::Int8);
    Tensor::build([m, n], |out| {
        matmul_int8_into(out, a.data(), b.data(), m, k, n);
    })
}

/// int8 batched matmul over matching batch dims.
pub fn batched_matmul_int8(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "batched_matmul lhs must be rank-3");
    assert_eq!(b.rank(), 3, "batched_matmul rhs must be rank-3");
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "batch dims differ");
    assert_eq!(k, k2, "inner dims differ");
    stats::note("batched_matmul", Path::Int8);
    let (ad, bd) = (a.data(), b.data());
    Tensor::build([ba, m, n], |out| {
        for batch in 0..ba {
            matmul_int8_into(
                &mut out[batch * m * n..][..m * n],
                &ad[batch * m * k..][..m * k],
                &bd[batch * k * n..][..k * n],
                m,
                k,
                n,
            );
        }
    })
}

// --- fp16 -----------------------------------------------------------------

/// Convert f32 to IEEE binary16 bits, round-to-nearest-even, handling
/// subnormals, overflow to infinity, and NaN payload truncation.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf or NaN; keep NaN non-signaling by forcing a payload bit.
        let payload = if man != 0 {
            0x0200 | (man >> 13) as u16
        } else {
            0
        };
        return sign | 0x7c00 | payload;
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflow → ±0
        }
        // Subnormal half: shift the (implicit-bit) mantissa into place.
        let full = man | 0x0080_0000;
        let shift = (14 - e) as u32; // 14..=24
        let half = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = if rem > halfway || (rem == halfway && half & 1 == 1) {
            half + 1
        } else {
            half
        };
        return sign | rounded as u16;
    }
    let half = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    // Mantissa carry on round-up flows into the exponent field, which is
    // exactly how overflow to the next binade (or infinity) must behave.
    let rounded = if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        half + 1
    } else {
        half
    };
    sign | rounded as u16
}

/// Convert IEEE binary16 bits to f32 (exact: every f16 is an f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (man << 13));
    }
    if exp == 0 {
        // ±0 or subnormal: value = man · 2^-24, exact in f32.
        let v = man as f32 * f32::from_bits(0x3380_0000);
        return if sign != 0 { -v } else { v };
    }
    f32::from_bits(sign | ((exp + 127 - 15) << 23) | (man << 13))
}

/// Round every element through binary16 (the storage precision of the
/// fp16 tier).
pub fn round_trip_f16(data: &[f32]) -> Vec<f32> {
    data.iter()
        .map(|&v| f16_bits_to_f32(f32_to_f16_bits(v)))
        .collect()
}

/// fp16 matmul: operands stored in half precision, accumulation in f32.
pub fn matmul_fp16(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", a.shape(), b.shape());
    stats::note("matmul", Path::Fp16);
    let ah = round_trip_f16(a.data());
    let bh = round_trip_f16(b.data());
    Tensor::build([m, n], |out| {
        crate::simd::matmul_simd_rows(out, 0, &ah, &bh, k, n);
    })
}

/// fp16 batched matmul over matching batch dims.
pub fn batched_matmul_fp16(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "batched_matmul lhs must be rank-3");
    assert_eq!(b.rank(), 3, "batched_matmul rhs must be rank-3");
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "batch dims differ");
    assert_eq!(k, k2, "inner dims differ");
    stats::note("batched_matmul", Path::Fp16);
    let ah = round_trip_f16(a.data());
    let bh = round_trip_f16(b.data());
    Tensor::build([ba, m, n], |out| {
        for batch in 0..ba {
            crate::simd::matmul_simd_rows(
                &mut out[batch * m * n..][..m * n],
                0,
                &ah[batch * m * k..][..m * k],
                &bh[batch * k * n..][..k * n],
                k,
                n,
            );
        }
    })
}

/// Worst-case absolute error of one int8 output element, given the row
/// and column absolute maxima — the bound `quant_error.rs` pins and the
/// GA3xx tier factor must dominate.
pub fn int8_error_bound(k: usize, amax: f32, bmax: f32) -> f64 {
    k as f64 * amax as f64 * bmax as f64 * INT8_MAC_RELERR
}

/// Worst-case absolute error of one fp16 output element.
pub fn fp16_error_bound(k: usize, amax: f32, bmax: f32) -> f64 {
    k as f64 * amax as f64 * bmax as f64 * FP16_MAC_RELERR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trip_is_identity_on_f16_values() {
        // Every non-NaN binary16 value must survive f16 → f32 → f16
        // exactly; NaNs must stay NaN.
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            let exp = (h >> 10) & 0x1f;
            let man = h & 0x3ff;
            if exp == 0x1f && man != 0 {
                assert!(f.is_nan(), "h={h:#06x}");
                let back = f32_to_f16_bits(f);
                assert_eq!(back >> 10, h >> 10, "NaN class preserved: h={h:#06x}");
                assert!(back & 0x3ff != 0, "NaN stays NaN: h={h:#06x}");
            } else {
                assert_eq!(f32_to_f16_bits(f), h, "h={h:#06x} f={f}");
            }
        }
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // max finite half
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00); // overflow → inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        let min_sub = f32::from_bits(0x3380_0000); // 2^-24, min subnormal
        assert_eq!(f16_bits_to_f32(0x0001), min_sub);
        assert_eq!(f32_to_f16_bits(min_sub), 0x0001);
        // Round-to-nearest-even: 1 + 2^-11 is exactly halfway between
        // 1.0 and the next half; ties go to the even mantissa (1.0).
        assert_eq!(f32_to_f16_bits(1.0 + 0.00048828125), 0x3c00);
    }

    #[test]
    fn int8_quantization_inverts_within_half_step() {
        let data: Vec<f32> = (0..24).map(|i| (i as f32 - 11.5) * 0.37).collect();
        let (q, s) = quantize_rows_i8(&data, 3, 8);
        for r in 0..3 {
            for p in 0..8 {
                let back = q[r * 8 + p] as f32 * s[r];
                assert!(
                    (back - data[r * 8 + p]).abs() <= s[r] * 0.5 + 1e-6,
                    "r={r} p={p}"
                );
            }
        }
        // Column quantization transposes: same inversion property.
        let (qt, st) = quantize_cols_i8(&data, 3, 8);
        for j in 0..8 {
            for p in 0..3 {
                let back = qt[j * 3 + p] as f32 * st[j];
                assert!((back - data[p * 8 + j]).abs() <= st[j] * 0.5 + 1e-6);
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zero() {
        let (q, s) = quantize_rows_i8(&[0.0; 8], 1, 8);
        assert!(q.iter().all(|&v| v == 0));
        assert_eq!(s[0], 1.0);
    }

    #[test]
    fn int8_matmul_within_mechanical_bound() {
        let m = 9;
        let k = 33;
        let n = 14;
        let ad: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37) % 100) as f32 * 0.13 - 6.0)
            .collect();
        let bd: Vec<f32> = (0..k * n)
            .map(|i| ((i * 61) % 90) as f32 * 0.21 - 9.0)
            .collect();
        let a = Tensor::from_vec([m, k], ad.clone());
        let b = Tensor::from_vec([k, n], bd.clone());
        let approx = matmul_int8(&a, &b);
        let exact = crate::ops::matmul_scalar(&a, &b);
        for i in 0..m {
            let amax = ad[i * k..(i + 1) * k]
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()));
            for j in 0..n {
                let mut bmax = 0.0f32;
                for p in 0..k {
                    bmax = bmax.max(bd[p * n + j].abs());
                }
                let err = (approx.data()[i * n + j] - exact.data()[i * n + j]).abs() as f64;
                let bound = int8_error_bound(k, amax, bmax);
                assert!(err <= bound, "err {err} > bound {bound} at ({i},{j})");
            }
        }
    }

    #[test]
    fn fp16_matmul_within_mechanical_bound() {
        let m = 8;
        let k = 40;
        let n = 11;
        let ad: Vec<f32> = (0..m * k)
            .map(|i| ((i * 53) % 97) as f32 * 0.011 - 0.5)
            .collect();
        let bd: Vec<f32> = (0..k * n)
            .map(|i| ((i * 29) % 83) as f32 * 0.017 - 0.7)
            .collect();
        let a = Tensor::from_vec([m, k], ad.clone());
        let b = Tensor::from_vec([k, n], bd.clone());
        let approx = matmul_fp16(&a, &b);
        let exact = crate::ops::matmul_scalar(&a, &b);
        for i in 0..m {
            let amax = ad[i * k..(i + 1) * k]
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()));
            for j in 0..n {
                let mut bmax = 0.0f32;
                for p in 0..k {
                    bmax = bmax.max(bd[p * n + j].abs());
                }
                let err = (approx.data()[i * n + j] - exact.data()[i * n + j]).abs() as f64;
                let bound = fp16_error_bound(k, amax, bmax);
                assert!(err <= bound, "err {err} > bound {bound} at ({i},{j})");
            }
        }
    }

    #[test]
    fn batched_variants_match_per_batch_calls() {
        let a = crate::init::randn([2, 5, 7], 31);
        let b = crate::init::randn([2, 7, 6], 32);
        for (batched, single) in [
            (batched_matmul_int8(&a, &b), 0),
            (batched_matmul_fp16(&a, &b), 1),
        ] {
            for batch in 0..2 {
                let a2 = Tensor::from_vec([5, 7], a.data()[batch * 35..(batch + 1) * 35].to_vec());
                let b2 = Tensor::from_vec([7, 6], b.data()[batch * 42..(batch + 1) * 42].to_vec());
                let want = if single == 0 {
                    matmul_int8(&a2, &b2)
                } else {
                    matmul_fp16(&a2, &b2)
                };
                assert_eq!(
                    &batched.data()[batch * 30..(batch + 1) * 30],
                    want.data(),
                    "batch {batch}"
                );
            }
        }
    }
}
