//! # genie-tensor — CPU tensor substrate
//!
//! Dense f32 tensors with real kernels (matmul, attention, layer norm,
//! convolution, embedding gathers, …) executed on the CPU. This is Genie's
//! *functional* execution plane: it lets the test suite prove that lazy
//! capture, semantics-aware remote execution, and lineage replay produce
//! numerically identical results to plain eager evaluation — the property
//! the paper's architecture depends on but cannot demonstrate without a
//! concrete executor.
//!
//! Paper-scale models (GPT-J at 12 GB of weights) never materialize data
//! through this crate; they run on the cost-model-driven simulation plane
//! (`genie-netsim` + `genie-backend::sim`). Both planes consume the same
//! SRG.
//!
//! ```
//! use genie_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
//! assert_eq!(ops::matmul(&a, &b), a);
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the worker pool's scoped-spawn lifetime erasure
// is the one documented `#[allow(unsafe_code)]` in the crate; everything
// else stays unsafe-free.
#![deny(unsafe_code)]

pub mod arena;
pub mod init;
pub mod ops;
mod par;
pub mod pool;
pub mod quant;
pub mod shape;
mod simd;
pub mod stats;
pub mod tensor;

pub use shape::Shape;
pub use tensor::{IndexTensor, Tensor};
