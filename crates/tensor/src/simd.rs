//! Register-blocked SIMD-shaped kernels on stable Rust.
//!
//! The `simd` tier keeps the whole accumulator tile — up to 4 output rows
//! × one `[f32; 8]` lane block — in registers for the entire reduction,
//! where the cache-blocked kernel round-trips a 4×64 accumulator through
//! the stack on every `p` step. The inner loops are written as unrolled
//! mul-then-add over fixed `[f32; 8]` arrays so LLVM lowers them to
//! packed vector instructions (no nightly `std::simd`, no intrinsics,
//! no `unsafe`).
//!
//! Bit-for-bit equivalence with the scalar reference is a structural
//! property, not an accident: every output element is produced by a
//! single f32 accumulator walking `p` in ascending order with the same
//! `a == 0.0` skip, and `mul` and `add` stay separate instructions (an
//! actual FMA would round once instead of twice and diverge). Lanes
//! vectorize across *independent* output columns, never across the
//! reduction, so no reduction order changes.

/// Lane width of one register block. Eight f32 = one 256-bit vector.
pub const LANES: usize = 8;

/// Output rows per micro-kernel tile (`[f32; 8]` blocks held live).
const MR: usize = 4;

/// Micro-kernel: `IR` rows × one 8-column strip, accumulators
/// register-resident across the whole `k` reduction.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro<const IR: usize>(
    out_rows: &mut [f32],
    row0: usize,
    i0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
    jt: usize,
) {
    let mut acc = [[0.0f32; LANES]; IR];
    for p in 0..k {
        let bs = &bd[p * n + jt..p * n + jt + LANES];
        let mut bv = [0.0f32; LANES];
        bv.copy_from_slice(bs);
        for (r, lanes) in acc.iter_mut().enumerate() {
            let av = ad[(row0 + i0 + r) * k + p];
            if av == 0.0 {
                continue;
            }
            for (o, &bvl) in lanes.iter_mut().zip(bv.iter()) {
                *o += av * bvl;
            }
        }
    }
    for (r, lanes) in acc.iter().enumerate() {
        let obase = (i0 + r) * n + jt;
        out_rows[obase..obase + LANES].copy_from_slice(lanes);
    }
}

/// Column tail (`n % 8` trailing columns) for one row, scalar
/// per-element accumulation in the same ascending-`p` order.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn row_tail(
    out_rows: &mut [f32],
    row0: usize,
    i: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
    j0: usize,
) {
    for j in j0..n {
        let mut acc = 0.0f32;
        for p in 0..k {
            let av = ad[(row0 + i) * k + p];
            if av == 0.0 {
                continue;
            }
            acc += av * bd[p * n + j];
        }
        out_rows[i * n + j] = acc;
    }
}

/// SIMD-tier kernel over a contiguous range of output rows; same
/// contract as the blocked-kernel row worker so the parallel tier can
/// fan this out unchanged: `out_rows` holds rows
/// `[row0, row0 + out_rows.len()/n)` of C; `ad`/`bd` are the full A and
/// B buffers.
pub(crate) fn matmul_simd_rows(
    out_rows: &mut [f32],
    row0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
) {
    let rows = out_rows.len() / n;
    let n8 = n - n % LANES;
    let mut i0 = 0;
    while i0 < rows {
        let ir = (rows - i0).min(MR);
        for jt in (0..n8).step_by(LANES) {
            match ir {
                4 => micro::<4>(out_rows, row0, i0, ad, bd, k, n, jt),
                3 => micro::<3>(out_rows, row0, i0, ad, bd, k, n, jt),
                2 => micro::<2>(out_rows, row0, i0, ad, bd, k, n, jt),
                _ => micro::<1>(out_rows, row0, i0, ad, bd, k, n, jt),
            }
        }
        if n8 < n {
            for r in 0..ir {
                row_tail(out_rows, row0, i0 + r, ad, bd, k, n, n8);
            }
        }
        i0 += ir;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_scalar_ref(ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = ad[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * bd[p * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn simd_rows_bit_identical_to_scalar() {
        // Ragged dims hit every micro-kernel arity and the column tail.
        for &(m, k, n) in &[(1, 1, 1), (4, 8, 8), (5, 7, 9), (13, 31, 17), (37, 53, 71)] {
            let ad: Vec<f32> = (0..m * k)
                .map(|i| ((i * 2654435761usize) % 1000) as f32 / 500.0 - 1.0)
                .collect();
            let bd: Vec<f32> = (0..k * n)
                .map(|i| ((i * 40503usize) % 997) as f32 / 498.5 - 1.0)
                .collect();
            let want = matmul_scalar_ref(&ad, &bd, m, k, n);
            let mut got = vec![0.0f32; m * n];
            matmul_simd_rows(&mut got, 0, &ad, &bd, k, n);
            assert_eq!(got, want, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn simd_rows_respects_row_offset() {
        // Computing rows [2, 5) standalone must equal the same rows of
        // the full product — the contract the parallel tier relies on.
        let (m, k, n) = (7usize, 11usize, 19usize);
        let ad: Vec<f32> = (0..m * k).map(|i| (i as f32).sin()).collect();
        let bd: Vec<f32> = (0..k * n).map(|i| (i as f32).cos()).collect();
        let full = matmul_scalar_ref(&ad, &bd, m, k, n);
        let mut got = vec![0.0f32; 3 * n];
        matmul_simd_rows(&mut got, 2, &ad, &bd, k, n);
        assert_eq!(got, &full[2 * n..5 * n]);
    }

    #[test]
    fn zero_skip_matches_scalar() {
        // Exact zeros in A exercise the skip on both sides; with lanes
        // across columns the skip stays per-(row, p), so bit-identity
        // holds even with -0.0 and denormals nearby.
        let (m, k, n) = (6usize, 9usize, 10usize);
        let mut ad = vec![0.0f32; m * k];
        for (i, v) in ad.iter_mut().enumerate() {
            *v = if i % 3 == 0 { 0.0 } else { (i as f32) * 0.25 };
        }
        ad[4] = -0.0;
        let bd: Vec<f32> = (0..k * n).map(|i| 1.0e-3 * i as f32).collect();
        let want = matmul_scalar_ref(&ad, &bd, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_simd_rows(&mut got, 0, &ad, &bd, k, n);
        assert_eq!(got, want);
    }
}
