//! Property tests pinning the optimized kernels to the scalar reference.
//!
//! The blocked, simd, and parallel paths accumulate every output element
//! in the same order as the scalar loops (ascending inner index, single
//! f32 accumulator, identical zero-skip), so they must agree **bit for bit**
//! — not merely within a tolerance. These properties are what lets the
//! dispatcher switch paths by size without perturbing any numeric test
//! elsewhere in the workspace.

use genie_tensor::{init, ops};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_paths_bitwise_equal(
        m in 1usize..24,
        k in 1usize..24,
        // Cross the NR=64 column-tile boundary so ragged tiles are hit.
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let a = init::randn([m, k], seed);
        let b = init::randn([k, n], seed ^ 0x9E37);
        let reference = ops::matmul_scalar(&a, &b);
        let blocked = ops::matmul_blocked(&a, &b);
        let simd = ops::matmul_simd(&a, &b);
        let parallel = ops::matmul_parallel(&a, &b);
        let dispatched = ops::matmul(&a, &b);
        prop_assert_eq!(reference.data(), blocked.data());
        prop_assert_eq!(reference.data(), simd.data());
        prop_assert_eq!(reference.data(), parallel.data());
        prop_assert_eq!(reference.data(), dispatched.data());
    }

    #[test]
    fn batched_matmul_paths_bitwise_equal(
        ba in 1usize..4,
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let a = init::randn([ba, m, k], seed);
        let b = init::randn([ba, k, n], seed ^ 0x51F1);
        let reference = ops::batched_matmul_scalar(&a, &b);
        let blocked = ops::batched_matmul_blocked(&a, &b);
        let simd = ops::batched_matmul_simd(&a, &b);
        let parallel = ops::batched_matmul_parallel(&a, &b);
        let dispatched = ops::batched_matmul(&a, &b);
        prop_assert_eq!(reference.data(), blocked.data());
        prop_assert_eq!(reference.data(), simd.data());
        prop_assert_eq!(reference.data(), parallel.data());
        prop_assert_eq!(reference.data(), dispatched.data());
    }

    #[test]
    fn conv2d_paths_bitwise_equal(
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        hw in 3usize..10,
        kk in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(kk <= hw);
        let x = init::randn([n, cin, hw, hw], seed);
        let w = init::randn([cout, cin, kk, kk], seed ^ 0xC0);
        let bias = init::randn([cout], seed ^ 0xB1);
        let reference = ops::conv2d_scalar(&x, &w, &bias, stride, padding);
        let simd = ops::conv2d_simd(&x, &w, &bias, stride, padding);
        let parallel = ops::conv2d_parallel(&x, &w, &bias, stride, padding);
        let dispatched = ops::conv2d(&x, &w, &bias, stride, padding);
        prop_assert_eq!(reference.data(), simd.data());
        prop_assert_eq!(reference.data(), parallel.data());
        prop_assert_eq!(reference.data(), dispatched.data());
    }

    #[test]
    fn attention_paths_bitwise_equal(
        heads in 1usize..5,
        dh in 1usize..9,
        tq in 1usize..9,
        tk in 1usize..9,
        causal in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let dm = heads * dh;
        let q = init::randn([tq, dm], seed);
        let k = init::randn([tk, dm], seed ^ 0xAB);
        let v = init::randn([tk, dm], seed ^ 0xCD);
        let reference = ops::multi_head_attention_sequential(&q, &k, &v, heads, causal);
        let parallel = ops::multi_head_attention_parallel(&q, &k, &v, heads, causal);
        let dispatched = ops::multi_head_attention(&q, &k, &v, heads, causal);
        prop_assert_eq!(reference.data(), parallel.data());
        prop_assert_eq!(reference.data(), dispatched.data());
    }

    #[test]
    fn fused_decode_attention_bitwise_equals_sliced_reference(
        heads in 1usize..6,
        dh in 1usize..12,
        // Cross the 8-key unrolled-tile boundary so ragged tails are hit.
        tk in 1usize..24,
        seed in any::<u64>(),
    ) {
        let dm = heads * dh;
        let q = init::randn([1, dm], seed);
        let k = init::randn([tk, dm], seed ^ 0xAB);
        let v = init::randn([tk, dm], seed ^ 0xCD);
        // tq == 1 routes the dispatcher through the fused decode kernel,
        // which must reproduce the slice-per-head reference exactly.
        let reference = ops::multi_head_attention_sequential(&q, &k, &v, heads, true);
        let fused = ops::multi_head_attention(&q, &k, &v, heads, true);
        prop_assert_eq!(reference.data(), fused.data());
    }
}
