//! Property suite pinning the quantized tiers' numeric error inside the
//! bound GA3xx advertises.
//!
//! The analysis layer prices the int8 tier as `2^18 · eps_f32` per MAC
//! and the fp16 tier as `2^15 · eps_f32`; those products are exactly
//! [`quant::INT8_MAC_RELERR`] and [`quant::FP16_MAC_RELERR`]. If any
//! output element of a quantized matmul ever landed outside
//! `k · max|A row| · max|B col| · MAC_RELERR`, GA301's static
//! tolerance verdicts would be unsound — so this suite sweeps random
//! shapes *and* magnitudes (2^-6 .. 2^6) to keep the kernels honest.

use genie_tensor::{init, ops, quant};
use proptest::prelude::*;

/// Assert every element of `approx` is within `bound(k, amax_i, bmax_j)`
/// of the scalar-exact product of rank-2 `a` and `b`.
fn assert_rank2_within(
    a: &genie_tensor::Tensor,
    b: &genie_tensor::Tensor,
    approx: &genie_tensor::Tensor,
    bound: impl Fn(usize, f32, f32) -> f64,
) -> Result<(), TestCaseError> {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let exact = ops::matmul_scalar(a, b);
    let (ad, bd) = (a.data(), b.data());
    for i in 0..m {
        let amax = ad[i * k..(i + 1) * k]
            .iter()
            .fold(0.0f32, |acc, v| acc.max(v.abs()));
        for j in 0..n {
            let mut bmax = 0.0f32;
            for p in 0..k {
                bmax = bmax.max(bd[p * n + j].abs());
            }
            let err = (approx.data()[i * n + j] - exact.data()[i * n + j]).abs() as f64;
            let limit = bound(k, amax, bmax);
            prop_assert!(
                err <= limit,
                "element ({i},{j}): error {err} exceeds advertised bound {limit} \
                 (k={k}, amax={amax}, bmax={bmax})"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn int8_matmul_error_within_advertised_bound(
        m in 1usize..12,
        k in 1usize..48,
        n in 1usize..12,
        mag in -6i32..7,
        seed in any::<u64>(),
    ) {
        let a = ops::scale(&init::randn([m, k], seed), (2.0f32).powi(mag));
        let b = ops::scale(&init::randn([k, n], seed ^ 0x5A5A), (2.0f32).powi(-mag / 2));
        let approx = quant::matmul_int8(&a, &b);
        assert_rank2_within(&a, &b, &approx, quant::int8_error_bound)?;
    }

    #[test]
    fn fp16_matmul_error_within_advertised_bound(
        m in 1usize..12,
        k in 1usize..48,
        n in 1usize..12,
        mag in -6i32..7,
        seed in any::<u64>(),
    ) {
        let a = ops::scale(&init::randn([m, k], seed), (2.0f32).powi(mag));
        let b = ops::scale(&init::randn([k, n], seed ^ 0xA5A5), (2.0f32).powi(-mag / 2));
        let approx = quant::matmul_fp16(&a, &b);
        assert_rank2_within(&a, &b, &approx, quant::fp16_error_bound)?;
    }

    #[test]
    fn batched_quantized_matmuls_within_advertised_bound(
        ba in 1usize..4,
        m in 1usize..8,
        k in 1usize..24,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let a = init::randn([ba, m, k], seed);
        let b = init::randn([ba, k, n], seed ^ 0x1F2E);
        let i8_out = quant::batched_matmul_int8(&a, &b);
        let f16_out = quant::batched_matmul_fp16(&a, &b);
        for batch in 0..ba {
            let a2 = genie_tensor::Tensor::from_vec(
                [m, k],
                a.data()[batch * m * k..(batch + 1) * m * k].to_vec(),
            );
            let b2 = genie_tensor::Tensor::from_vec(
                [k, n],
                b.data()[batch * k * n..(batch + 1) * k * n].to_vec(),
            );
            let i8_slice = genie_tensor::Tensor::from_vec(
                [m, n],
                i8_out.data()[batch * m * n..(batch + 1) * m * n].to_vec(),
            );
            let f16_slice = genie_tensor::Tensor::from_vec(
                [m, n],
                f16_out.data()[batch * m * n..(batch + 1) * m * n].to_vec(),
            );
            assert_rank2_within(&a2, &b2, &i8_slice, quant::int8_error_bound)?;
            assert_rank2_within(&a2, &b2, &f16_slice, quant::fp16_error_bound)?;
        }
    }
}

#[test]
fn advertised_bounds_are_the_ga3xx_tier_factors_times_eps() {
    // GA3xx prices KernelTier::Int8 with error factor 2^18 and Fp16 with
    // 2^15, against eps_f32 = 2^-24. The products must be exactly the
    // per-MAC bounds the kernels are tested against above — this is the
    // cross-crate contract that makes GA301 denials sound.
    let eps_f32 = (2.0f64).powi(-24);
    assert_eq!(quant::INT8_MAC_RELERR, (2.0f64).powi(18) * eps_f32);
    assert_eq!(quant::FP16_MAC_RELERR, (2.0f64).powi(15) * eps_f32);
}
