//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for any data, because the functional plane is the oracle
//! every other plane is judged against.

use genie_tensor::{init, ops, IndexTensor, Tensor};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    init::randn([rows, cols], seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associates_within_tolerance(
        n in 1usize..6,
        seed in any::<u64>(),
    ) {
        let a = tensor(n, n, seed);
        let b = tensor(n, n, seed ^ 0xA);
        let c = tensor(n, n, seed ^ 0xB);
        let left = ops::matmul(&ops::matmul(&a, &b), &c);
        let right = ops::matmul(&a, &ops::matmul(&b, &c));
        prop_assert!(left.approx_eq(&right, 1e-2), "max diff {}", left.max_abs_diff(&right));
    }

    #[test]
    fn matmul_transpose_identity(
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 1);
        let lhs = ops::transpose2d(&ops::matmul(&a, &b));
        let rhs = ops::matmul(&ops::transpose2d(&b), &ops::transpose2d(&a));
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn layer_norm_is_shift_scale_invariant(
        cols in 2usize..32,
        seed in any::<u64>(),
        shift in -100.0f32..100.0,
        scale in 0.5f32..10.0,
    ) {
        let x = tensor(1, cols, seed);
        let gamma = Tensor::ones([cols]);
        let beta = Tensor::zeros([cols]);
        let base = ops::layer_norm(&x, &gamma, &beta, 1e-6);
        // y = scale·x + shift normalizes to the same thing.
        let transformed = Tensor::from_vec(
            [1, cols],
            x.data().iter().map(|&v| v * scale + shift).collect::<Vec<_>>(),
        );
        let normed = ops::layer_norm(&transformed, &gamma, &beta, 1e-6);
        prop_assert!(normed.approx_eq(&base, 2e-2), "diff {}", normed.max_abs_diff(&base));
    }

    #[test]
    fn softmax_preserves_argmax(
        cols in 2usize..40,
        seed in any::<u64>(),
    ) {
        let x = tensor(1, cols, seed);
        let s = ops::softmax_lastdim(&x);
        let am_x = ops::argmax_lastdim(&x);
        let am_s = ops::argmax_lastdim(&s);
        prop_assert_eq!(am_x.data(), am_s.data());
    }

    #[test]
    fn gather_then_index_matches_rows(
        vocab in 1usize..30,
        dim in 1usize..8,
        pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let table = tensor(vocab, dim, seed);
        let idx = (pick % vocab as u64) as i64;
        let out = ops::gather_rows(&table, &IndexTensor::from_slice(&[idx]));
        for c in 0..dim {
            prop_assert_eq!(out.at(&[0, c]), table.at(&[idx as usize, c]));
        }
    }

    #[test]
    fn pooling_bounds(
        h in 2usize..10,
        seed in any::<u64>(),
    ) {
        // Max pool output elements are ≥ avg pool outputs everywhere.
        let x = init::uniform([1, 1, h * 2, h * 2], 0.0, 1.0, seed);
        let maxp = ops::pool2d(&x, 2, 2, ops::PoolMode::Max);
        let avgp = ops::pool2d(&x, 2, 2, ops::PoolMode::Avg);
        for (m, a) in maxp.data().iter().zip(avgp.data()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn conv_linearity(
        seed in any::<u64>(),
        alpha in -3.0f32..3.0,
    ) {
        // conv(αx) = α·conv(x) with zero bias.
        let x = tensor(1, 2 * 6 * 6, seed).reshape([1, 2, 6, 6]);
        let w = tensor(3, 2 * 9, seed ^ 7).reshape([3, 2, 3, 3]);
        let bias = Tensor::zeros([3]);
        let base = ops::conv2d(&x, &w, &bias, 1, 1);
        let scaled_in = ops::scale(&x, alpha);
        let scaled_out = ops::conv2d(&scaled_in, &w, &bias, 1, 1);
        prop_assert!(scaled_out.approx_eq(&ops::scale(&base, alpha), 1e-3));
    }

    #[test]
    fn attention_rows_are_convex_combinations(
        tq in 1usize..4,
        tk in 1usize..6,
        seed in any::<u64>(),
    ) {
        // With v ∈ [0,1], attention outputs stay in [0,1] (convexity of
        // softmax-weighted sums).
        let q = tensor(tq, 4, seed);
        let k = tensor(tk, 4, seed ^ 3);
        let v = init::uniform([tk, 4], 0.0, 1.0, seed ^ 4);
        let o = ops::attention(&q, &k, &v, false);
        for &val in o.data() {
            prop_assert!((-1e-5..=1.0 + 1e-5).contains(&val), "out of hull: {val}");
        }
    }
}
