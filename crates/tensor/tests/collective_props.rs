//! Property suite for the collective algebra: the identities sharded
//! execution leans on must hold *bit for bit*, for any data, any shard
//! count, and any exact dispatch tier.
//!
//! Three identities carry the whole sharding design:
//! - `all_reduce_sum` over k shards ≡ the sequential left fold
//!   `((r0 + r1) + r2) + …` (the fixed-order chain, not a balanced
//!   tree);
//! - `all_gather` over column-split matmuls ≡ the unsplit matmul;
//! - a chain of `matmul_acc` over row splits ≡ the unsplit matmul
//!   (the fold continues across contiguous inner ranges).
//!
//! Each is checked under every exact dispatch path (scalar, blocked,
//! simd, parallel) via `stats::force_path` — the tiers are bit-equal by
//! construction, so forcing them must not perturb the identities.

use genie_tensor::stats::{force_path, Path};
use genie_tensor::{init, ops, Tensor};
use proptest::prelude::*;

/// The bit-exact dispatch tiers (int8/fp16 are approximate by design
/// and covered by the GA3xx error-model tests instead).
const EXACT_PATHS: [Path; 4] = [Path::Scalar, Path::Blocked, Path::Simd, Path::Parallel];

/// Split `total` into `k` contiguous non-empty ranges.
fn ranges(total: usize, k: usize) -> Vec<(usize, usize)> {
    let k = k.min(total).max(1);
    let base = total / k;
    let extra = total % k;
    let mut out = Vec::new();
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

fn with_each_exact_path(mut check: impl FnMut(Path)) {
    for p in EXACT_PATHS {
        force_path(Some(p));
        check(p);
    }
    force_path(None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_reduce_is_bitwise_the_sequential_fold(
        shards in 2usize..8,
        rows in 1usize..6,
        cols in 1usize..40,
        seed in any::<u64>(),
    ) {
        let parts: Vec<Tensor> = (0..shards)
            .map(|r| init::randn([rows, cols], seed ^ (r as u64 * 0x9E37)))
            .collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        // Sequential oracle: accumulate shard by shard in rank order.
        let mut seq = parts[0].clone();
        for p in &parts[1..] {
            seq = ops::add(&seq, p);
        }
        let mut failure = None;
        with_each_exact_path(|path| {
            let reduced = ops::all_reduce_sum(&refs);
            if reduced.data() != seq.data() {
                failure = Some(path);
            }
        });
        prop_assert!(failure.is_none(), "all_reduce diverged on {failure:?}");
    }

    #[test]
    fn all_gather_of_column_splits_is_the_unsplit_matmul(
        shards in 2usize..6,
        m in 1usize..6,
        k in 1usize..8,
        n in 2usize..40,
        seed in any::<u64>(),
    ) {
        let x = init::randn([m, k], seed);
        let w = init::randn([k, n], seed ^ 0xC0FFEE);
        let mut failure = None;
        with_each_exact_path(|path| {
            let full = ops::matmul(&x, &w);
            let parts: Vec<Tensor> = ranges(n, shards)
                .into_iter()
                .map(|(s, l)| ops::matmul(&x, &ops::narrow(&w, 1, s, l)))
                .collect();
            let refs: Vec<&Tensor> = parts.iter().collect();
            let gathered = ops::all_gather(&refs, 1);
            if gathered.data() != full.data() {
                failure = Some(path);
            }
        });
        prop_assert!(failure.is_none(), "all_gather diverged on {failure:?}");
    }

    #[test]
    fn chained_matmul_acc_over_row_splits_is_the_unsplit_matmul(
        shards in 2usize..6,
        m in 1usize..6,
        k in 2usize..24,
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let x = init::randn([m, k], seed);
        let w = init::randn([k, n], seed ^ 0xBEEF);
        let mut failure = None;
        with_each_exact_path(|path| {
            let full = ops::matmul(&x, &w);
            // Rank r multiplies its contiguous inner slice and folds
            // into the running partial — the chain all tensor-parallel
            // row splits execute.
            let mut acc: Option<Tensor> = None;
            for (s, l) in ranges(k, shards) {
                let xs = ops::narrow(&x, 1, s, l);
                let ws = ops::narrow(&w, 0, s, l);
                acc = Some(match acc {
                    None => ops::matmul(&xs, &ws),
                    Some(prev) => ops::matmul_acc(&xs, &ws, &prev),
                });
            }
            if acc.unwrap().data() != full.data() {
                failure = Some(path);
            }
        });
        prop_assert!(failure.is_none(), "matmul_acc chain diverged on {failure:?}");
    }

    #[test]
    fn gather_then_reduce_compose_across_two_layers(
        shards in 2usize..5,
        m in 1usize..5,
        d in 2usize..12,
        seed in any::<u64>(),
    ) {
        // The Megatron sandwich in miniature: column-split first layer,
        // elementwise in the middle, row-split second layer folded by
        // matmul_acc — no collective between the two, one exact output.
        let x = init::randn([m, d], seed);
        let w1 = init::randn([d, d * 2], seed ^ 0x11);
        let w2 = init::randn([d * 2, d], seed ^ 0x22);
        let oracle = ops::matmul(&ops::gelu(&ops::matmul(&x, &w1)), &w2);
        let mut failure = None;
        with_each_exact_path(|path| {
            let mut acc: Option<Tensor> = None;
            for (s, l) in ranges(d * 2, shards) {
                let h = ops::gelu(&ops::matmul(&x, &ops::narrow(&w1, 1, s, l)));
                let ws = ops::narrow(&w2, 0, s, l);
                acc = Some(match acc {
                    None => ops::matmul(&h, &ws),
                    Some(prev) => ops::matmul_acc(&h, &ws, &prev),
                });
            }
            if acc.unwrap().data() != oracle.data() {
                failure = Some(path);
            }
        });
        prop_assert!(failure.is_none(), "megatron sandwich diverged on {failure:?}");
    }
}

/// The fixed-order chain is load-bearing: a balanced pairwise tree is a
/// *different* f32 fold and must not be silently substituted. This is a
/// canary, not a property — if it ever fails, the chain and the tree
/// have become indistinguishable on this data and the guard is moot.
#[test]
fn balanced_tree_reduction_is_a_different_fold() {
    let parts: Vec<Tensor> = (0..4).map(|r| init::randn([64, 64], 1000 + r)).collect();
    let refs: Vec<&Tensor> = parts.iter().collect();
    let chain = ops::all_reduce_sum(&refs);
    let tree = ops::add(
        &ops::add(&parts[0], &parts[1]),
        &ops::add(&parts[2], &parts[3]),
    );
    assert_ne!(
        chain.data(),
        tree.data(),
        "expected ((a+b)+c)+d to differ bitwise from (a+b)+(c+d) on random data"
    );
}
