//! Re-capture points for dynamic control flow (§3.7).
//!
//! Graph capture excels when the computation is static, but real inference
//! loops branch on data — a decode loop stops when the model emits EOS. A
//! [`RecaptureSession`] handles this by capturing one SRG *per dynamic
//! region* and carrying named state (the KV cache, the token history)
//! across captures. Control flow runs in ordinary Rust between captures;
//! each captured region is still a full SRG the scheduler can optimize.

use crate::capture::{CaptureCtx, CapturedGraph};
use crate::value::Value;
use std::collections::HashMap;

/// A session of repeated captures with carried state.
pub struct RecaptureSession {
    name: String,
    steps: usize,
    carried: HashMap<String, Value>,
}

impl RecaptureSession {
    /// Start a session.
    pub fn new(name: impl Into<String>) -> Self {
        RecaptureSession {
            name: name.into(),
            steps: 0,
            carried: HashMap::new(),
        }
    }

    /// Number of captures performed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Read carried state.
    pub fn carried(&self, key: &str) -> Option<&Value> {
        self.carried.get(key)
    }

    /// Write carried state (typically from the previous step's outputs).
    pub fn carry(&mut self, key: impl Into<String>, value: Value) {
        self.carried.insert(key.into(), value);
    }

    /// Capture one dynamic region. `f` receives a fresh [`CaptureCtx`]
    /// (named `"{session}.step{N}"`) and the carried state, builds the
    /// region's graph, and the session returns the finished capture.
    pub fn capture_step<F>(&mut self, f: F) -> CapturedGraph
    where
        F: FnOnce(&CaptureCtx, &HashMap<String, Value>),
    {
        let ctx = CaptureCtx::new(format!("{}.step{}", self.name, self.steps));
        f(&ctx, &self.carried);
        self.steps += 1;
        ctx.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use genie_srg::ElemType;
    use genie_tensor::Tensor;

    /// A data-dependent loop: keep doubling until the value exceeds a
    /// threshold. Each iteration is its own capture; the loop condition
    /// runs in plain Rust on materialized results — exactly the paper's
    /// "insert re-capture points" strategy.
    #[test]
    fn data_dependent_loop_via_recapture() {
        let mut session = RecaptureSession::new("doubling");
        session.carry("x", Value::F(Tensor::from_vec([1], vec![1.0])));

        let mut iterations = 0;
        loop {
            let cap = session.capture_step(|ctx, carried| {
                let x0 = carried.get("x").unwrap().as_f("x").clone();
                let x = ctx.input("x", [1], ElemType::F32, Some(x0));
                let doubled = x.add(&x);
                doubled.mark_output();
            });
            let out = interp::run_single_output(&cap).unwrap();
            let v = out.data()[0];
            session.carry("x", Value::F(out));
            iterations += 1;
            if v > 10.0 {
                break;
            }
        }
        // 1 → 2 → 4 → 8 → 16: four captures.
        assert_eq!(iterations, 4);
        assert_eq!(session.steps(), 4);
        assert_eq!(session.carried("x").unwrap().as_f("x").data(), &[16.0]);
    }

    #[test]
    fn captures_are_independent_graphs() {
        let mut session = RecaptureSession::new("s");
        let a = session.capture_step(|ctx, _| {
            ctx.input("i", [1], ElemType::F32, Some(Tensor::ones([1])))
                .relu()
                .mark_output();
        });
        let b = session.capture_step(|ctx, _| {
            ctx.input("i", [1], ElemType::F32, Some(Tensor::ones([1])))
                .gelu()
                .mark_output();
        });
        assert_eq!(a.srg.name, "s.step0");
        assert_eq!(b.srg.name, "s.step1");
        assert_eq!(a.srg.node_count(), 2);
        assert_eq!(b.srg.node_count(), 2);
    }
}
