//! Deferred-execution capture: the Rust analogue of PyTorch's
//! `__torch_dispatch__` + LazyTensor mechanism (§3.2).
//!
//! Application code computes with [`LazyTensor`] handles. No arithmetic
//! happens at call time; every operation appends an annotated node to an
//! SRG under construction inside a shared [`CaptureCtx`]. Shapes are
//! checked eagerly (so user errors surface at the call site, as in eager
//! PyTorch), cost hints are derived from operator type and shapes, and the
//! module / phase / modality scopes active at call time become the node's
//! structural annotations.

use crate::value::Value;
use genie_analysis::{run_srg_passes, LintConfig, Report};
use genie_srg::{
    CostHints, ElemType, Modality, Node, NodeId, OpKind, Phase, Residency, Srg, TensorMeta,
};
use genie_tensor::{IndexTensor, Tensor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The result of a finished capture: a validated SRG plus the payloads of
/// its source nodes (parameters and inputs) when running functionally.
#[derive(Clone, Debug)]
pub struct CapturedGraph {
    /// The captured, annotated graph.
    pub srg: Srg,
    /// Payloads for `Parameter` / `Input` nodes (functional plane only;
    /// simulation-scale captures carry no data).
    pub values: HashMap<NodeId, Value>,
    /// Nodes marked as model outputs, in marking order.
    pub outputs: Vec<NodeId>,
}

#[derive(Default)]
struct CaptureState {
    srg: Option<Srg>,
    values: HashMap<NodeId, Value>,
    outputs: Vec<NodeId>,
    module_stack: Vec<String>,
    phase_stack: Vec<Phase>,
    modality_stack: Vec<Modality>,
    started: Option<std::time::Instant>,
}

/// A capture context: the graph under construction plus the annotation
/// scopes. Clone freely — clones share the same underlying state.
#[derive(Clone)]
pub struct CaptureCtx {
    state: Arc<Mutex<CaptureState>>,
}

impl CaptureCtx {
    /// Start capturing a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        let state = CaptureState {
            srg: Some(Srg::new(name)),
            started: Some(std::time::Instant::now()),
            ..Default::default()
        };
        CaptureCtx {
            state: Arc::new(Mutex::new(state)),
        }
    }

    // ---- scopes -----------------------------------------------------

    /// Run `f` with `name` pushed onto the module-path stack. Mirrors
    /// entering an `nn.Module`'s `forward`.
    pub fn scope<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.state.lock().module_stack.push(name.to_string());
        let out = Self::timed_scope("module", f);
        self.state.lock().module_stack.pop();
        out
    }

    /// Run `f` with an explicit phase annotation active — the
    /// `genie.annotate_phase` developer hook of §3.2.
    pub fn phase_scope<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        self.state.lock().phase_stack.push(phase);
        let out = Self::timed_scope("phase", f);
        self.state.lock().phase_stack.pop();
        out
    }

    /// Run `f` with a modality annotation active.
    pub fn modality_scope<R>(&self, modality: Modality, f: impl FnOnce() -> R) -> R {
        self.state.lock().modality_stack.push(modality);
        let out = Self::timed_scope("modality", f);
        self.state.lock().modality_stack.pop();
        out
    }

    /// Count and time one annotation scope of the given tier.
    fn timed_scope<R>(tier: &'static str, f: impl FnOnce() -> R) -> R {
        let telemetry = genie_telemetry::global();
        telemetry
            .metrics
            .counter("genie_capture_scopes_total", &[("tier", tier)])
            .inc();
        let begin = std::time::Instant::now();
        let out = f();
        telemetry
            .metrics
            .histogram(
                "genie_capture_scope_seconds",
                &[("tier", tier)],
                &genie_telemetry::DEFAULT_TIME_BOUNDS,
            )
            .observe(begin.elapsed().as_secs_f64());
        out
    }

    /// Current dotted module path.
    pub fn module_path(&self) -> String {
        self.state.lock().module_stack.join(".")
    }

    /// Nodes recorded so far. Snapshot before/after a region to attribute
    /// the nodes it created (sharding assignment does exactly this).
    pub fn node_count(&self) -> usize {
        self.state
            .lock()
            .srg
            .as_ref()
            .expect("capture already finished")
            .node_count()
    }

    // ---- sources ----------------------------------------------------

    /// Declare a model parameter. `payload` is `Some` on the functional
    /// plane and `None` for simulation-scale captures.
    pub fn parameter(
        &self,
        name: &str,
        shape: impl Into<Vec<usize>>,
        elem: ElemType,
        payload: Option<Tensor>,
    ) -> LazyTensor {
        let meta = TensorMeta::new(shape, elem);
        if let Some(t) = &payload {
            assert_eq!(
                t.dims(),
                &meta.shape[..],
                "parameter {name} payload shape mismatch"
            );
        }
        let id = self.push_source(OpKind::Parameter, name, Residency::PersistentWeight);
        if let Some(t) = payload {
            self.state.lock().values.insert(id, Value::F(t));
        }
        self.lazy(id, meta)
    }

    /// Declare a dense float input.
    pub fn input(
        &self,
        name: &str,
        shape: impl Into<Vec<usize>>,
        elem: ElemType,
        payload: Option<Tensor>,
    ) -> LazyTensor {
        let meta = TensorMeta::new(shape, elem);
        if let Some(t) = &payload {
            assert_eq!(
                t.dims(),
                &meta.shape[..],
                "input {name} payload shape mismatch"
            );
        }
        let id = self.push_source(OpKind::Input, name, Residency::ModelInput);
        if let Some(t) = payload {
            self.state.lock().values.insert(id, Value::F(t));
        }
        self.lazy(id, meta)
    }

    /// Declare an integer-index input (token ids, embedding rows).
    pub fn input_ids(&self, name: &str, ids: &[i64]) -> LazyTensor {
        let meta = TensorMeta::new([ids.len()], ElemType::I64);
        let id = self.push_source(OpKind::Input, name, Residency::ModelInput);
        self.state
            .lock()
            .values
            .insert(id, Value::I(IndexTensor::from_slice(ids)));
        self.lazy(id, meta)
    }

    /// Declare an index input with no payload (simulation plane).
    pub fn input_ids_spec(&self, name: &str, len: usize) -> LazyTensor {
        let meta = TensorMeta::new([len], ElemType::I64);
        let id = self.push_source(OpKind::Input, name, Residency::ModelInput);
        self.lazy(id, meta)
    }

    /// An empty KV-cache seed of shape `[0, dim]` — the starting state of
    /// a decode loop.
    pub fn empty_cache(&self, name: &str, dim: usize, elem: ElemType) -> LazyTensor {
        let meta = TensorMeta::new([0, dim], ElemType::I64);
        let _ = meta;
        let meta = TensorMeta::new([0, dim], elem);
        let id = self.push_source(OpKind::Input, name, Residency::StatefulKvCache);
        self.state
            .lock()
            .values
            .insert(id, Value::F(Tensor::zeros(vec![0, dim])));
        self.lazy(id, meta)
    }

    // ---- finish -----------------------------------------------------

    /// Finish the capture, returning the SRG and captured payloads. The
    /// context can no longer record operations afterwards.
    ///
    /// The graph is run through the `GA0xx` semantic lint passes under the
    /// default [`LintConfig`]; deny-level findings (shape or dtype
    /// inconsistencies, phase-order inversions, KV caches flowing into
    /// non-KV consumers, heavy ops with no cost hints) abort the capture
    /// with the rendered report. Use [`finish_checked`](Self::finish_checked)
    /// to handle findings programmatically or to relax the policy.
    pub fn finish(&self) -> CapturedGraph {
        match self.finish_checked(&LintConfig::new()) {
            Ok(cap) => cap,
            Err(report) => panic!("semantic lint gate rejected capture:\n{report}"),
        }
    }

    /// [`finish`](Self::finish) with an explicit lint policy: returns the
    /// full report instead of panicking when any `GA0xx` finding is deny
    /// under `cfg`. The capture is consumed either way.
    pub fn finish_checked(&self, cfg: &LintConfig) -> Result<CapturedGraph, Report> {
        let telemetry = genie_telemetry::global();
        let (srg, values, outputs, started) = {
            let mut st = self.state.lock();
            let srg = st.srg.take().expect("capture already finished");
            (
                srg,
                std::mem::take(&mut st.values),
                std::mem::take(&mut st.outputs),
                st.started.take(),
            )
        };
        let mut span = telemetry.collector.span_with(
            "capture.finish",
            "frontend",
            genie_telemetry::SemAttrs::new()
                .with("graph", srg.name.clone())
                .with("ops", srg.node_count().to_string()),
        );
        if let Some(started) = started {
            telemetry
                .metrics
                .histogram(
                    "genie_capture_seconds",
                    &[],
                    &genie_telemetry::DEFAULT_TIME_BOUNDS,
                )
                .observe(started.elapsed().as_secs_f64());
        }
        let report = run_srg_passes(&srg, cfg);
        if report.has_deny() {
            span.annotate(|a| a.extra.push(("lint".into(), "deny".into())));
            return Err(report);
        }
        Ok(CapturedGraph {
            srg,
            values,
            outputs,
        })
    }

    // ---- internals --------------------------------------------------

    fn push_source(&self, op: OpKind, name: &str, residency: Residency) -> NodeId {
        genie_telemetry::global()
            .metrics
            .counter("genie_capture_ops_total", &[("kind", "source")])
            .inc();
        let mut st = self.state.lock();
        let module_path = st.module_stack.join(".");
        let phase = st.phase_stack.last().cloned().unwrap_or_default();
        let modality = st.modality_stack.last().copied().unwrap_or_default();
        st.srg.as_mut().expect("capture already finished").add_node(
            Node::new(NodeId::new(0), op, name)
                .with_module_path(module_path)
                .with_phase(phase)
                .with_modality(modality)
                .with_residency(residency),
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &self,
        op: OpKind,
        name: &str,
        inputs: &[&LazyTensor],
        out_meta: TensorMeta,
        cost: CostHints,
        attrs: &[(&str, String)],
        residency: Residency,
    ) -> LazyTensor {
        genie_telemetry::global()
            .metrics
            .counter("genie_capture_ops_total", &[("kind", "compute")])
            .inc();
        let mut st = self.state.lock();
        let module_path = st.module_stack.join(".");
        let phase = st.phase_stack.last().cloned().unwrap_or_default();
        let modality = st.modality_stack.last().copied().unwrap_or_default();
        let mut node = Node::new(NodeId::new(0), op, name)
            .with_module_path(module_path)
            .with_phase(phase)
            .with_modality(modality)
            .with_residency(residency)
            .with_cost(cost);
        for (k, v) in attrs {
            node = node.with_attr(*k, v.clone());
        }
        let srg = st.srg.as_mut().expect("capture already finished");
        let id = srg.add_node(node);
        for input in inputs {
            srg.connect_tensor(input.node, id, input.tensor, input.meta.clone());
        }
        let tensor = srg.fresh_tensor();
        drop(st);
        LazyTensor {
            ctx: self.clone(),
            node: id,
            tensor,
            meta: out_meta,
        }
    }

    /// Fixed-order all-reduce over per-shard partial sums: the parts are
    /// summed in ascending rank (slot) order with a left-leaning fold,
    /// bit-identical to accumulating them sequentially on one device.
    pub fn all_reduce(&self, parts: &[&LazyTensor]) -> LazyTensor {
        assert!(!parts.is_empty(), "all_reduce of zero shards");
        for p in parts {
            assert_eq!(p.dims(), parts[0].dims(), "all_reduce shape mismatch");
        }
        let meta = parts[0].meta.clone();
        let bytes = meta.size_bytes() as f64;
        let k = parts.len() as f64;
        self.record(
            OpKind::AllReduce,
            "all_reduce",
            parts,
            meta,
            CostHints::new(
                k * bytes / 4.0, // one add per element per extra shard
                k * bytes,
                bytes,
            ),
            &[("shards", parts.len().to_string())],
            Residency::EphemeralActivation,
        )
    }

    /// Fixed-order all-gather: concatenate per-shard slices along `dim`
    /// in ascending rank (slot) order.
    pub fn all_gather(&self, parts: &[&LazyTensor], dim: usize) -> LazyTensor {
        assert!(!parts.is_empty(), "all_gather of zero shards");
        let mut shape = parts[0].dims().to_vec();
        assert!(dim < shape.len(), "all_gather dim out of range");
        shape[dim] = parts.iter().map(|p| p.dims()[dim]).sum();
        let meta = TensorMeta::new(shape, parts[0].meta.elem);
        let bytes = meta.size_bytes() as f64;
        self.record(
            OpKind::AllGather,
            "all_gather",
            parts,
            meta,
            CostHints::new(0.0, bytes, bytes),
            &[
                ("dim", dim.to_string()),
                ("shards", parts.len().to_string()),
            ],
            Residency::EphemeralActivation,
        )
    }

    fn lazy(&self, node: NodeId, meta: TensorMeta) -> LazyTensor {
        let tensor = {
            let mut st = self.state.lock();
            st.srg
                .as_mut()
                .expect("capture already finished")
                .fresh_tensor()
        };
        LazyTensor {
            ctx: self.clone(),
            node,
            tensor,
            meta,
        }
    }
}

/// A deferred tensor: a handle to a node in the capture context. All
/// arithmetic on `LazyTensor`s records SRG nodes instead of executing.
#[derive(Clone)]
pub struct LazyTensor {
    ctx: CaptureCtx,
    /// The producing node.
    pub node: NodeId,
    /// The logical tensor this handle denotes. Every consumer edge carries
    /// the same id, so schedulers can deduplicate fan-out transfers.
    pub tensor: genie_srg::TensorId,
    /// Shape / element-type metadata of this value.
    pub meta: TensorMeta,
}

impl LazyTensor {
    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.meta.shape
    }

    /// Bytes of this value at its declared precision.
    pub fn size_bytes(&self) -> usize {
        self.meta.size_bytes()
    }

    fn es(&self) -> f64 {
        self.meta.elem.size_bytes() as f64
    }

    /// Mark this value as a model output. Stateful residencies survive:
    /// a KV cache returned to the caller is still a KV cache, and the
    /// scheduler must keep treating it as pinnable state.
    pub fn mark_output(&self) {
        let mut st = self.ctx.state.lock();
        if let Some(srg) = st.srg.as_mut() {
            let node = srg.node_mut(self.node);
            if !node.residency.prefers_remote_pinning() {
                node.residency = Residency::ModelOutput;
            }
        }
        st.outputs.push(self.node);
    }

    // ---- binary dense ops -------------------------------------------

    /// Matrix multiply `[m,k] · [k,n] → [m,n]`.
    pub fn matmul(&self, rhs: &LazyTensor) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "matmul lhs rank");
        assert_eq!(rhs.dims().len(), 2, "matmul rhs rank");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let out = TensorMeta::new([m, n], self.meta.elem);
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let read = (m * k + k * n) as f64 * self.es();
        let write = (m * n) as f64 * self.es();
        self.ctx.record(
            OpKind::MatMul,
            "matmul",
            &[self, rhs],
            out,
            CostHints::new(flops, read, write),
            &[],
            Residency::EphemeralActivation,
        )
    }

    /// Elementwise add (same shapes).
    pub fn add(&self, rhs: &LazyTensor) -> LazyTensor {
        assert_eq!(self.dims(), rhs.dims(), "add shape mismatch");
        self.elementwise(OpKind::Add, "add", Some(rhs))
    }

    /// Elementwise multiply (same shapes).
    pub fn mul(&self, rhs: &LazyTensor) -> LazyTensor {
        assert_eq!(self.dims(), rhs.dims(), "mul shape mismatch");
        self.elementwise(OpKind::Mul, "mul", Some(rhs))
    }

    /// Add a rank-1 bias over the innermost dim.
    pub fn add_bias(&self, bias: &LazyTensor) -> LazyTensor {
        assert_eq!(
            bias.dims(),
            &[*self.dims().last().expect("rank >= 1")],
            "bias must match innermost dim"
        );
        let n: f64 = self.meta.num_elements() as f64;
        self.ctx.record(
            OpKind::Add,
            "add_bias",
            &[self, bias],
            self.meta.clone(),
            CostHints::new(n, 2.0 * n * self.es(), n * self.es()),
            &[("bias", "1".into())],
            Residency::EphemeralActivation,
        )
    }

    // ---- unary dense ops --------------------------------------------

    /// ReLU.
    pub fn relu(&self) -> LazyTensor {
        self.elementwise(OpKind::Relu, "relu", None)
    }

    /// GELU.
    pub fn gelu(&self) -> LazyTensor {
        self.elementwise(OpKind::Gelu, "gelu", None)
    }

    /// SiLU.
    pub fn silu(&self) -> LazyTensor {
        self.elementwise(OpKind::Silu, "silu", None)
    }

    /// Softmax over the innermost dimension.
    pub fn softmax(&self) -> LazyTensor {
        self.elementwise(OpKind::Softmax, "softmax", None)
    }

    /// Layer norm over the innermost dimension.
    pub fn layer_norm(&self, gamma: &LazyTensor, beta: &LazyTensor, eps: f32) -> LazyTensor {
        let inner = *self.dims().last().expect("rank >= 1");
        assert_eq!(gamma.dims(), &[inner], "gamma shape");
        assert_eq!(beta.dims(), &[inner], "beta shape");
        let n = self.meta.num_elements() as f64;
        self.ctx.record(
            OpKind::LayerNorm,
            "layer_norm",
            &[self, gamma, beta],
            self.meta.clone(),
            CostHints::new(8.0 * n, 2.0 * n * self.es(), n * self.es()),
            &[("eps", eps.to_string())],
            Residency::EphemeralActivation,
        )
    }

    /// RMS norm over the innermost dimension.
    pub fn rms_norm(&self, gamma: &LazyTensor, eps: f32) -> LazyTensor {
        let inner = *self.dims().last().expect("rank >= 1");
        assert_eq!(gamma.dims(), &[inner], "gamma shape");
        let n = self.meta.num_elements() as f64;
        self.ctx.record(
            OpKind::RmsNorm,
            "rms_norm",
            &[self, gamma],
            self.meta.clone(),
            CostHints::new(5.0 * n, 2.0 * n * self.es(), n * self.es()),
            &[("eps", eps.to_string())],
            Residency::EphemeralActivation,
        )
    }

    // ---- attention / KV ---------------------------------------------

    /// Fused multi-head scaled-dot-product attention. `self` is the query
    /// `[tq, dm]`; `k`/`v` are `[tk, dm]`.
    pub fn attention(
        &self,
        k: &LazyTensor,
        v: &LazyTensor,
        heads: usize,
        causal: bool,
    ) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "attention q rank");
        let (tq, dm) = (self.dims()[0], self.dims()[1]);
        let tk = k.dims()[0];
        assert_eq!(k.dims(), &[tk, dm], "k shape");
        assert_eq!(v.dims(), &[tk, dm], "v shape");
        assert_eq!(dm % heads, 0, "heads must divide model dim");
        let flops = 4.0 * tq as f64 * tk as f64 * dm as f64;
        let read = ((tq + 2 * tk) * dm) as f64 * self.es();
        let write = (tq * dm) as f64 * self.es();
        self.ctx.record(
            OpKind::Attention,
            "attention",
            &[self, k, v],
            TensorMeta::new([tq, dm], self.meta.elem),
            CostHints::new(flops, read, write),
            &[("heads", heads.to_string()), ("causal", causal.to_string())],
            Residency::EphemeralActivation,
        )
    }

    /// Append rows to a KV cache along dim 0: `[t, d] ⊕ [n, d] → [t+n, d]`.
    /// The output carries `StatefulKvCache` residency — the signature cue
    /// the paper's scheduler keys on.
    pub fn kv_append(&self, new: &LazyTensor) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "cache rank");
        assert_eq!(new.dims().len(), 2, "new rows rank");
        assert_eq!(self.dims()[1], new.dims()[1], "kv dim mismatch");
        let out = TensorMeta::new(
            [self.dims()[0] + new.dims()[0], self.dims()[1]],
            self.meta.elem,
        );
        let delta = new.meta.size_bytes() as f64;
        self.ctx.record(
            OpKind::KvAppend,
            "kv_append",
            &[self, new],
            out,
            CostHints::new(0.0, delta, delta),
            &[],
            Residency::StatefulKvCache,
        )
    }

    // ---- conv / vision ----------------------------------------------

    /// 2-D convolution over NCHW input with `[Cout, Cin, Kh, Kw]` weight.
    pub fn conv2d(
        &self,
        w: &LazyTensor,
        bias: &LazyTensor,
        stride: usize,
        padding: usize,
    ) -> LazyTensor {
        assert_eq!(self.dims().len(), 4, "conv2d input must be NCHW");
        assert_eq!(w.dims().len(), 4, "conv2d weight rank");
        let (n, cin, h, wd) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        let (cout, cin2, kh, kw) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
        assert_eq!(cin, cin2, "conv2d channel mismatch");
        assert_eq!(bias.dims(), &[cout], "conv2d bias shape");
        let oh = (h + 2 * padding - kh) / stride + 1;
        let ow = (wd + 2 * padding - kw) / stride + 1;
        let out = TensorMeta::new([n, cout, oh, ow], self.meta.elem);
        let flops = 2.0 * (n * cout * oh * ow * cin * kh * kw) as f64;
        let read = (self.meta.num_elements() + w.meta.num_elements()) as f64 * self.es();
        let write = out.num_elements() as f64 * self.es();
        self.ctx.record(
            OpKind::Conv2d,
            "conv2d",
            &[self, w, bias],
            out,
            CostHints::new(flops, read, write),
            &[
                ("stride", stride.to_string()),
                ("padding", padding.to_string()),
            ],
            Residency::EphemeralActivation,
        )
    }

    /// Square max/avg pooling over NCHW input.
    pub fn pool2d(&self, k: usize, stride: usize, avg: bool) -> LazyTensor {
        assert_eq!(self.dims().len(), 4, "pool2d input must be NCHW");
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        let oh = (h - k) / stride + 1;
        let ow = (w - k) / stride + 1;
        let out = TensorMeta::new([n, c, oh, ow], self.meta.elem);
        let nelem = self.meta.num_elements() as f64;
        let out_elems = out.num_elements() as f64;
        self.ctx.record(
            OpKind::Pool2d,
            "pool2d",
            &[self],
            out,
            CostHints::new(nelem, nelem * self.es(), out_elems * self.es()),
            &[
                ("k", k.to_string()),
                ("stride", stride.to_string()),
                ("avg", avg.to_string()),
            ],
            Residency::EphemeralActivation,
        )
    }

    /// Global average pooling `[N,C,H,W] → [N,C]`.
    pub fn global_avg_pool(&self) -> LazyTensor {
        assert_eq!(self.dims().len(), 4, "gap input must be NCHW");
        let (n, c) = (self.dims()[0], self.dims()[1]);
        let out = TensorMeta::new([n, c], self.meta.elem);
        let nelem = self.meta.num_elements() as f64;
        self.ctx.record(
            OpKind::Pool2d,
            "global_avg_pool",
            &[self],
            out,
            CostHints::new(nelem, nelem * self.es(), (n * c) as f64 * self.es()),
            &[("gap", "true".into())],
            Residency::EphemeralActivation,
        )
    }

    // ---- sparse -----------------------------------------------------

    /// Gather rows of a `[vocab, d]` table by an index tensor: `→ [n, d]`.
    /// `self` is the table.
    pub fn gather(&self, indices: &LazyTensor) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "gather table rank");
        assert_eq!(indices.meta.elem, ElemType::I64, "indices must be I64");
        let n = indices.meta.num_elements();
        let d = self.dims()[1];
        let out = TensorMeta::new([n, d], self.meta.elem);
        let bytes = (n * d) as f64 * self.es();
        self.ctx.record(
            OpKind::EmbeddingGather,
            "gather",
            &[self, indices],
            out,
            CostHints::new(0.0, bytes, bytes),
            &[],
            Residency::EphemeralActivation,
        )
    }

    /// Sum-pooled multi-hot gather (EmbeddingBag): `→ [d]`.
    pub fn gather_sum(&self, indices: &LazyTensor) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "gather table rank");
        let n = indices.meta.num_elements();
        let d = self.dims()[1];
        let out = TensorMeta::new([d], self.meta.elem);
        let bytes = (n * d) as f64 * self.es();
        self.ctx.record(
            OpKind::EmbeddingGather,
            "gather_sum",
            &[self, indices],
            out,
            CostHints::new((n * d) as f64, bytes, d as f64 * self.es()),
            &[("pooled", "true".into())],
            Residency::EphemeralActivation,
        )
    }

    // ---- sharding / collectives -------------------------------------

    /// Matmul continuing a carried accumulator:
    /// `init[m,n] + self[m,k] · rhs[k,n]`. Chained over contiguous
    /// reduction-range chunks this is bit-identical to the unsharded
    /// matmul (the accumulation order is the scalar reference order),
    /// which makes row-parallel sharding exact.
    pub fn matmul_acc(&self, rhs: &LazyTensor, init: &LazyTensor) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "matmul_acc lhs rank");
        assert_eq!(rhs.dims().len(), 2, "matmul_acc rhs rank");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_acc inner dims {k} vs {k2}");
        assert_eq!(init.dims(), &[m, n], "matmul_acc init shape");
        let out = TensorMeta::new([m, n], self.meta.elem);
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let read = (m * k + k * n + m * n) as f64 * self.es();
        let write = (m * n) as f64 * self.es();
        self.ctx.record(
            OpKind::MatMulAcc,
            "matmul_acc",
            &[self, rhs, init],
            out,
            CostHints::new(flops, read, write),
            &[],
            Residency::EphemeralActivation,
        )
    }

    /// Point-to-point activation send between shards. Arithmetic
    /// identity; the scheduler prices it as `from_shard → to_shard`
    /// fabric traffic.
    pub fn send_activation(&self, from_shard: u32, to_shard: u32) -> LazyTensor {
        let bytes = self.size_bytes() as f64;
        self.ctx.record(
            OpKind::SendActivation,
            "send",
            &[self],
            self.meta.clone(),
            CostHints::new(0.0, bytes, bytes),
            &[
                ("from_shard", from_shard.to_string()),
                ("to_shard", to_shard.to_string()),
            ],
            Residency::EphemeralActivation,
        )
    }

    // ---- shape ------------------------------------------------------

    /// Concatenate along `dim`.
    pub fn concat(&self, rhs: &LazyTensor, dim: usize) -> LazyTensor {
        assert_eq!(self.dims().len(), rhs.dims().len(), "concat rank");
        let mut shape = self.dims().to_vec();
        shape[dim] += rhs.dims()[dim];
        let out = TensorMeta::new(shape, self.meta.elem);
        let bytes = out.size_bytes() as f64;
        self.ctx.record(
            OpKind::Concat,
            "concat",
            &[self, rhs],
            out,
            CostHints::new(0.0, bytes, bytes),
            &[("dim", dim.to_string())],
            Residency::EphemeralActivation,
        )
    }

    /// Narrow `dim` to `[start, start+len)`.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> LazyTensor {
        assert!(start + len <= self.dims()[dim], "narrow out of range");
        let mut shape = self.dims().to_vec();
        shape[dim] = len;
        let out = TensorMeta::new(shape, self.meta.elem);
        let bytes = out.size_bytes() as f64;
        self.ctx.record(
            OpKind::Slice,
            "narrow",
            &[self],
            out,
            CostHints::new(0.0, bytes, bytes),
            &[
                ("dim", dim.to_string()),
                ("start", start.to_string()),
                ("len", len.to_string()),
            ],
            Residency::EphemeralActivation,
        )
    }

    /// Reshape (metadata only).
    pub fn reshape(&self, shape: impl Into<Vec<usize>>) -> LazyTensor {
        let shape = shape.into();
        let out = TensorMeta::new(shape.clone(), self.meta.elem);
        assert_eq!(
            out.num_elements(),
            self.meta.num_elements(),
            "reshape element count"
        );
        self.ctx.record(
            OpKind::Reshape,
            "reshape",
            &[self],
            out,
            CostHints::ZERO,
            &[("shape", format_dims(&shape))],
            Residency::EphemeralActivation,
        )
    }

    /// Transpose a rank-2 value.
    pub fn transpose(&self) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "transpose rank");
        let out = TensorMeta::new([self.dims()[1], self.dims()[0]], self.meta.elem);
        let bytes = out.size_bytes() as f64;
        self.ctx.record(
            OpKind::Transpose,
            "transpose",
            &[self],
            out,
            CostHints::new(0.0, bytes, bytes),
            &[],
            Residency::EphemeralActivation,
        )
    }

    // ---- output ops -------------------------------------------------

    /// Greedy-sample the next token from `[t, vocab]` logits: argmax of
    /// the last row. Output is a single I64 token id — the vocab-sized
    /// tensor collapses to 8 bytes, the paper's example of a
    /// producer/consumer rate the network layer can exploit.
    pub fn sample(&self) -> LazyTensor {
        assert_eq!(self.dims().len(), 2, "sample expects [t, vocab] logits");
        let out = TensorMeta::new([1], ElemType::I64);
        let n = self.meta.num_elements() as f64;
        self.ctx.record(
            OpKind::Sample,
            "sample",
            &[self],
            out,
            CostHints::new(n, n * self.es(), 8.0),
            &[],
            Residency::ModelOutput,
        )
    }

    /// Mean over the innermost dimension.
    pub fn mean_lastdim(&self) -> LazyTensor {
        let mut shape = self.dims().to_vec();
        shape.pop();
        if shape.is_empty() {
            shape.push(1);
        }
        let out = TensorMeta::new(shape, self.meta.elem);
        let n = self.meta.num_elements() as f64;
        let out_elems = out.num_elements() as f64;
        self.ctx.record(
            OpKind::Reduce,
            "mean",
            &[self],
            out,
            CostHints::new(n, n * self.es(), out_elems * self.es()),
            &[("kind", "mean".into())],
            Residency::EphemeralActivation,
        )
    }

    fn elementwise(&self, op: OpKind, name: &str, rhs: Option<&LazyTensor>) -> LazyTensor {
        let n = self.meta.num_elements() as f64;
        let reads = if rhs.is_some() { 2.0 } else { 1.0 };
        let cost = CostHints::new(n, reads * n * self.es(), n * self.es());
        let inputs: Vec<&LazyTensor> = match rhs {
            Some(r) => vec![self, r],
            None => vec![self],
        };
        self.ctx.record(
            op,
            name,
            &inputs,
            self.meta.clone(),
            cost,
            &[],
            Residency::EphemeralActivation,
        )
    }
}

fn format_dims(dims: &[usize]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_builds_graph_without_executing() {
        let ctx = CaptureCtx::new("g");
        let w = ctx.parameter("w", [4, 4], ElemType::F32, None);
        let x = ctx.input("x", [2, 4], ElemType::F32, None);
        let y = x.matmul(&w.transpose());
        y.mark_output();
        let cap = ctx.finish();
        assert_eq!(cap.srg.node_count(), 4); // w, x, transpose, matmul
        assert_eq!(cap.outputs.len(), 1);
        assert!(genie_srg::validate::validate(&cap.srg).is_empty());
        assert!(cap.values.is_empty(), "spec-only capture holds no data");
    }

    #[test]
    fn shapes_checked_eagerly() {
        let ctx = CaptureCtx::new("g");
        let a = ctx.input("a", [2, 3], ElemType::F32, None);
        let b = ctx.input("b", [4, 5], ElemType::F32, None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.matmul(&b)));
        assert!(result.is_err(), "shape mismatch must panic at capture time");
    }

    #[test]
    fn scopes_annotate_nodes() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1, 8], ElemType::F32, None);
        let y = ctx.scope("decoder", || {
            ctx.phase_scope(Phase::LlmDecode, || ctx.scope("mlp", || x.relu()))
        });
        let cap = ctx.finish();
        let node = cap.srg.node(y.node);
        assert_eq!(node.module_path, "decoder.mlp");
        assert_eq!(node.phase, Phase::LlmDecode);
    }

    #[test]
    fn cost_hints_scale_with_shapes() {
        let ctx = CaptureCtx::new("g");
        let a = ctx.input("a", [8, 16], ElemType::F32, None);
        let b = ctx.input("b", [16, 32], ElemType::F32, None);
        let c = a.matmul(&b);
        let cap = ctx.finish();
        let cost = cap.srg.node(c.node).cost;
        assert_eq!(cost.flops, 2.0 * 8.0 * 16.0 * 32.0);
        assert!(cost.bytes_read > 0.0 && cost.bytes_written > 0.0);
    }

    #[test]
    fn kv_append_grows_and_tags_residency() {
        let ctx = CaptureCtx::new("g");
        let cache = ctx.empty_cache("kv", 8, ElemType::F32);
        let new = ctx.input("new", [1, 8], ElemType::F32, None);
        let grown = cache.kv_append(&new);
        assert_eq!(grown.dims(), &[1, 8]);
        let grown2 = grown.kv_append(&new);
        assert_eq!(grown2.dims(), &[2, 8]);
        let cap = ctx.finish();
        assert_eq!(
            cap.srg.node(grown2.node).residency,
            Residency::StatefulKvCache
        );
    }

    #[test]
    fn sample_collapses_to_one_token() {
        let ctx = CaptureCtx::new("g");
        let logits = ctx.input("logits", [1, 50400], ElemType::F32, None);
        let tok = logits.sample();
        assert_eq!(tok.meta.size_bytes(), 8);
        let cap = ctx.finish();
        assert_eq!(cap.srg.node(tok.node).residency, Residency::ModelOutput);
    }

    #[test]
    fn parameters_carry_payloads_functionally() {
        let ctx = CaptureCtx::new("g");
        let w = ctx.parameter("w", [2, 2], ElemType::F32, Some(Tensor::ones([2, 2])));
        let cap = ctx.finish();
        assert!(matches!(cap.values.get(&w.node), Some(Value::F(_))));
    }

    #[test]
    #[should_panic(expected = "payload shape mismatch")]
    fn payload_shape_mismatch_panics() {
        let ctx = CaptureCtx::new("g");
        ctx.parameter("w", [2, 2], ElemType::F32, Some(Tensor::ones([3])));
    }

    #[test]
    fn conv_output_shape() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1, 3, 32, 32], ElemType::F32, None);
        let w = ctx.parameter("w", [16, 3, 3, 3], ElemType::F32, None);
        let b = ctx.parameter("b", [16], ElemType::F32, None);
        let y = x.conv2d(&w, &b, 1, 1);
        assert_eq!(y.dims(), &[1, 16, 32, 32]);
        let p = y.pool2d(2, 2, false);
        assert_eq!(p.dims(), &[1, 16, 16, 16]);
    }

    #[test]
    fn finish_rejects_phase_incoherent_capture() {
        // A decode-phase value feeding a prefill-phase op inverts the
        // LLM serving order; the lint gate must fail the capture fast.
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1, 8], ElemType::F32, None);
        let decoded = ctx.phase_scope(Phase::LlmDecode, || x.relu());
        ctx.phase_scope(Phase::LlmPrefill, || decoded.relu().mark_output());
        let report = ctx
            .finish_checked(&genie_analysis::LintConfig::new())
            .expect_err("phase inversion must be denied");
        assert!(report.has_deny(), "{report}");
        assert!(
            !report
                .with_code(genie_analysis::LintCode::PhaseIncoherence)
                .is_empty(),
            "{report}"
        );
    }

    #[test]
    fn finish_panics_with_rendered_report_on_deny() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1, 8], ElemType::F32, None);
        let decoded = ctx.phase_scope(Phase::LlmDecode, || x.relu());
        ctx.phase_scope(Phase::LlmPrefill, || decoded.relu().mark_output());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.finish()));
        let msg = *result
            .expect_err("deny finding must panic")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("GA003"), "{msg}");
    }

    #[test]
    fn finish_checked_allow_suppresses_deny() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1, 8], ElemType::F32, None);
        let decoded = ctx.phase_scope(Phase::LlmDecode, || x.relu());
        ctx.phase_scope(Phase::LlmPrefill, || decoded.relu().mark_output());
        let cfg =
            genie_analysis::LintConfig::new().allow(genie_analysis::LintCode::PhaseIncoherence);
        let cap = ctx.finish_checked(&cfg).expect("allowed code passes gate");
        assert_eq!(cap.outputs.len(), 1);
    }

    #[test]
    fn capture_feeds_telemetry_counters() {
        // Global metrics are shared across tests, so assert growth only.
        let count = |kind: &str| {
            genie_telemetry::global()
                .metrics
                .snapshot()
                .counter("genie_capture_ops_total", &[("kind", kind)])
                .unwrap_or(0)
        };
        let (src_before, op_before) = (count("source"), count("compute"));
        let ctx = CaptureCtx::new("telemetry");
        let x = ctx.input("x", [1, 4], ElemType::F32, None);
        ctx.scope("m", || x.relu()).mark_output();
        let _ = ctx.finish();
        assert!(count("source") > src_before);
        assert!(count("compute") > op_before);
        let scopes = genie_telemetry::global()
            .metrics
            .snapshot()
            .counter("genie_capture_scopes_total", &[("tier", "module")])
            .unwrap_or(0);
        assert!(scopes >= 1);
    }

    #[test]
    fn attention_requires_divisible_heads() {
        let ctx = CaptureCtx::new("g");
        let q = ctx.input("q", [2, 8], ElemType::F32, None);
        let k = ctx.input("k", [4, 8], ElemType::F32, None);
        let v = ctx.input("v", [4, 8], ElemType::F32, None);
        let o = q.attention(&k, &v, 2, true);
        assert_eq!(o.dims(), &[2, 8]);
        let cap = ctx.finish();
        let n = cap.srg.node(o.node);
        assert_eq!(n.attrs["heads"], "2");
        assert_eq!(n.attrs["causal"], "true");
    }
}
