//! Runtime values flowing through the functional plane.

use genie_tensor::{IndexTensor, Tensor};

/// A materialized value: dense float data or integer indices (token ids,
/// embedding rows, sampled outputs).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Dense f32 tensor.
    F(Tensor),
    /// Integer index tensor.
    I(IndexTensor),
}

impl Value {
    /// Unwrap as a float tensor; panics with the operator name on mismatch.
    pub fn as_f(&self, what: &str) -> &Tensor {
        match self {
            Value::F(t) => t,
            Value::I(_) => panic!("{what}: expected float tensor, got indices"),
        }
    }

    /// Unwrap as an index tensor; panics with the operator name on
    /// mismatch.
    pub fn as_i(&self, what: &str) -> &IndexTensor {
        match self {
            Value::I(t) => t,
            Value::F(_) => panic!("{what}: expected index tensor, got floats"),
        }
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::F(t) => t.size_bytes(),
            Value::I(t) => t.len() * std::mem::size_of::<i64>(),
        }
    }
}

impl From<Tensor> for Value {
    fn from(t: Tensor) -> Self {
        Value::F(t)
    }
}

impl From<IndexTensor> for Value {
    fn from(t: IndexTensor) -> Self {
        Value::I(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_matching_kind() {
        let v: Value = Tensor::zeros([2]).into();
        assert_eq!(v.as_f("test").len(), 2);
        let i: Value = IndexTensor::from_slice(&[1, 2]).into();
        assert_eq!(i.as_i("test").len(), 2);
    }

    #[test]
    #[should_panic(expected = "expected float tensor")]
    fn unwrap_mismatch_panics() {
        let i: Value = IndexTensor::from_slice(&[1]).into();
        i.as_f("matmul");
    }

    #[test]
    fn sizes() {
        let v: Value = Tensor::zeros([3]).into();
        assert_eq!(v.size_bytes(), 12);
        let i: Value = IndexTensor::from_slice(&[1, 2]).into();
        assert_eq!(i.size_bytes(), 16);
    }
}
