//! Structural annotation pass (the FX-pass analogue of §3.2).
//!
//! After raw capture, nodes already carry their dotted module paths. This
//! pass derives structure *from* those paths: which modules exist, which
//! are repeated blocks (e.g. `h.0 … h.27` transformer layers), and which
//! nodes belong to each — the input the scheduler's pipelining and fusion
//! rewrites consume.

use genie_srg::{NodeId, Srg};
use std::collections::BTreeMap;

/// Nodes grouped by exact module path.
pub fn module_groups(srg: &Srg) -> BTreeMap<String, Vec<NodeId>> {
    let mut groups: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
    for node in srg.nodes() {
        groups
            .entry(node.module_path.clone())
            .or_default()
            .push(node.id);
    }
    groups
}

/// Top-level module names (first path segment), in first-appearance order.
pub fn top_level_modules(srg: &Srg) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for node in srg.nodes() {
        if let Some(first) = node.module_path.split('.').next() {
            if !first.is_empty() && !out.iter().any(|m| m == first) {
                out.push(first.to_string());
            }
        }
    }
    out
}

/// A repeated block family: a path prefix instantiated with numeric
/// suffixes (`h.0`, `h.1`, …) — the structural signature of stacked
/// layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepeatedBlock {
    /// The common prefix, e.g. `"h"`.
    pub prefix: String,
    /// Instance indices found, sorted.
    pub instances: Vec<usize>,
    /// Nodes per instance, parallel to `instances`.
    pub members: Vec<Vec<NodeId>>,
}

/// Detect repeated block families from module paths. A family needs at
/// least two numeric instances to count as "repeated".
pub fn repeated_blocks(srg: &Srg) -> Vec<RepeatedBlock> {
    // Map prefix → (index → members).
    let mut families: BTreeMap<String, BTreeMap<usize, Vec<NodeId>>> = BTreeMap::new();
    for node in srg.nodes() {
        let segments: Vec<&str> = node.module_path.split('.').collect();
        for w in 0..segments.len().saturating_sub(0) {
            if let Ok(idx) = segments[w].parse::<usize>() {
                if w > 0 {
                    let prefix = segments[..w].join(".");
                    families
                        .entry(prefix)
                        .or_default()
                        .entry(idx)
                        .or_default()
                        .push(node.id);
                }
                break; // only the first numeric segment defines the family
            }
        }
    }
    families
        .into_iter()
        .filter(|(_, by_idx)| by_idx.len() >= 2)
        .map(|(prefix, by_idx)| {
            let instances: Vec<usize> = by_idx.keys().copied().collect();
            let members: Vec<Vec<NodeId>> = by_idx.into_values().collect();
            RepeatedBlock {
                prefix,
                instances,
                members,
            }
        })
        .collect()
}

/// Assign each node a `block` attribute naming its repeated-block instance
/// (e.g. `"h.3"`), enabling per-block scheduling decisions. Returns the
/// number of nodes annotated.
pub fn annotate_blocks(srg: &mut Srg) -> usize {
    let blocks = repeated_blocks(srg);
    let mut count = 0;
    for family in &blocks {
        for (idx, members) in family.instances.iter().zip(&family.members) {
            for &node in members {
                srg.node_mut(node)
                    .attrs
                    .insert("block".into(), format!("{}.{}", family.prefix, idx));
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::ElemType;

    fn layered_capture(layers: usize) -> Srg {
        let ctx = CaptureCtx::new("g");
        let mut x = ctx.input("x", [2, 4], ElemType::F32, None);
        ctx.scope("model", || {
            for i in 0..layers {
                x = ctx.scope("h", || {
                    ctx.scope(&i.to_string(), || {
                        let w = ctx.parameter(&format!("w{i}"), [4, 4], ElemType::F32, None);
                        x.matmul(&w).relu()
                    })
                });
            }
        });
        x.mark_output();
        ctx.finish().srg
    }

    #[test]
    fn groups_by_exact_path() {
        let srg = layered_capture(2);
        let groups = module_groups(&srg);
        assert!(groups.contains_key("model.h.0"));
        assert!(groups.contains_key("model.h.1"));
        // input x has empty path
        assert!(groups.contains_key(""));
    }

    #[test]
    fn top_level_detection() {
        let srg = layered_capture(2);
        assert_eq!(top_level_modules(&srg), vec!["model".to_string()]);
    }

    #[test]
    fn repeated_blocks_found() {
        let srg = layered_capture(3);
        let blocks = repeated_blocks(&srg);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].prefix, "model.h");
        assert_eq!(blocks[0].instances, vec![0, 1, 2]);
        // Each layer contributed w, matmul, relu.
        assert_eq!(blocks[0].members[0].len(), 3);
    }

    #[test]
    fn single_instance_is_not_repeated() {
        let srg = layered_capture(1);
        assert!(repeated_blocks(&srg).is_empty());
    }

    #[test]
    fn block_attr_annotation() {
        let mut srg = layered_capture(2);
        let n = annotate_blocks(&mut srg);
        assert_eq!(n, 6);
        let tagged: Vec<_> = srg
            .nodes()
            .filter_map(|node| node.attrs.get("block"))
            .collect();
        assert!(tagged.contains(&&"model.h.0".to_string()));
        assert!(tagged.contains(&&"model.h.1".to_string()));
    }
}
