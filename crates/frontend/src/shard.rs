//! Sharded execution of a captured graph: the functional plane of
//! multi-device tensor/pipeline parallelism.
//!
//! [`execute_sharded`] runs a capture whose nodes carry a shard
//! assignment (from capture-time sharding or
//! [`genie_srg::shard::partition`]) exactly like the sequential
//! reference interpreter — same kernels, same topological order, so
//! values are bit-identical to [`crate::interp::execute_sequential`] by
//! construction — while attributing every node to its shard and
//! accounting every cross-shard edge as fabric traffic. Collective
//! nodes ([`OpKind::AllReduce`], [`OpKind::AllGather`],
//! [`OpKind::SendActivation`]) are recorded as `collective.*` telemetry
//! spans with per-op byte counts, the observable the blame layer and
//! the netsim pricing both key on.

use crate::interp::{eval_node, InterpError};
use crate::value::Value;
use genie_srg::{NodeId, OpKind, Srg};
use std::collections::{BTreeMap, HashMap};

/// What one sharded run did, beyond the values themselves.
#[derive(Clone, Debug, Default)]
pub struct ShardExecReport {
    /// Nodes executed per shard.
    pub nodes_per_shard: BTreeMap<u32, usize>,
    /// Bytes crossing shard boundaries, per `(from, to)` ordered pair.
    pub traffic: BTreeMap<(u32, u32), u64>,
    /// Collective ops executed (all_reduce + all_gather + send).
    pub collective_ops: u64,
    /// Bytes moved by collectives (their output payloads).
    pub collective_bytes: u64,
}

impl ShardExecReport {
    /// Total bytes that crossed shard boundaries.
    pub fn cross_shard_bytes(&self) -> u64 {
        self.traffic.values().sum()
    }

    /// Number of shards that executed at least one node.
    pub fn active_shards(&self) -> usize {
        self.nodes_per_shard.len()
    }
}

/// Execute `srg` under the shard assignment `shard_of` (nodes absent
/// from the map ride shard 0). Kernel-for-kernel identical to the
/// sequential reference interpreter — sharding changes *where* work is
/// attributed and what traffic is accounted, never the arithmetic — so
/// the returned values are bit-for-bit the oracle's.
pub fn execute_sharded(
    srg: &Srg,
    bindings: &HashMap<NodeId, Value>,
    shard_of: &BTreeMap<NodeId, u32>,
) -> Result<(HashMap<NodeId, Value>, ShardExecReport), InterpError> {
    let order = genie_srg::traverse::topo_order(srg).map_err(|_| InterpError::Cycle)?;
    let mut values: HashMap<NodeId, Value> = HashMap::new();
    let mut report = ShardExecReport::default();
    let tele = genie_telemetry::global();

    for id in order {
        let node = srg.node(id);
        let shard = shard_of.get(&id).copied().unwrap_or(0);
        *report.nodes_per_shard.entry(shard).or_insert(0) += 1;

        // Every in-edge whose producer lives on another shard is fabric
        // traffic: the payload must arrive before this node can run.
        for e in srg.in_edges(id) {
            let src_shard = shard_of.get(&e.src).copied().unwrap_or(0);
            if src_shard != shard {
                *report.traffic.entry((src_shard, shard)).or_insert(0) +=
                    e.meta.size_bytes() as u64;
            }
        }

        let is_collective = matches!(
            node.op,
            OpKind::AllReduce | OpKind::AllGather | OpKind::SendActivation
        );
        let _span = if is_collective {
            let bytes: u64 = srg.in_edges(id).map(|e| e.meta.size_bytes() as u64).sum();
            report.collective_ops += 1;
            report.collective_bytes += bytes;
            tele.metrics
                .counter(
                    "genie_collective_ops_total",
                    &[("kind", node.op.mnemonic())],
                )
                .inc();
            tele.metrics
                .counter("genie_collective_bytes_total", &[])
                .add(bytes);
            Some(
                tele.collector.span_with(
                    format!("collective.{}", node.op.mnemonic()),
                    "collective",
                    genie_telemetry::SemAttrs::new()
                        .with("shard", shard.to_string())
                        .with("bytes", bytes.to_string()),
                ),
            )
        } else {
            None
        };
        let inputs: Vec<&Value> = srg
            .in_edges(id)
            .map(|e| values.get(&e.src).expect("topo order guarantees inputs"))
            .collect();
        let out = eval_node(srg, id, &node.op, &inputs, bindings)?;
        drop(inputs);
        values.insert(id, out);
    }
    Ok((values, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use crate::interp::execute_sequential;
    use genie_srg::ElemType;
    use genie_tensor::init;

    #[test]
    fn sharded_values_match_sequential_and_traffic_is_counted() {
        let ctx = CaptureCtx::new("shard.exec");
        let x = ctx.input("x", [2, 4], ElemType::F32, Some(init::randn([2, 4], 1)));
        let w0 = ctx.parameter("w0", [4, 2], ElemType::F32, Some(init::randn([4, 2], 2)));
        let w1 = ctx.parameter("w1", [4, 2], ElemType::F32, Some(init::randn([4, 2], 3)));
        let p0 = x.matmul(&w0);
        let p1 = x.matmul(&w1);
        let y = ctx.all_gather(&[&p0, &p1], 1);
        y.mark_output();
        let cap = ctx.finish();

        // p1 on shard 1, everything else shard 0.
        let mut shard_of = BTreeMap::new();
        shard_of.insert(p1.node, 1u32);
        let seq = execute_sequential(&cap.srg, &cap.values).unwrap();
        let (vals, report) = execute_sharded(&cap.srg, &cap.values, &shard_of).unwrap();
        assert_eq!(
            vals[&y.node].as_f("y").data(),
            seq[&y.node].as_f("y").data(),
            "sharded execution must be bit-identical"
        );
        assert_eq!(report.collective_ops, 1);
        assert!(report.collective_bytes > 0);
        // w1 → p1 (shard0→1) and p1 → gather (shard1→0) both cross.
        assert!(report.traffic.contains_key(&(0, 1)));
        assert!(report.traffic.contains_key(&(1, 0)));
        assert_eq!(report.active_shards(), 2);
    }
}
