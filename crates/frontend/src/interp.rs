//! Reference interpreter: executes a captured SRG with real arithmetic.
//!
//! This is the ground truth for every functional test in the platform —
//! lazy capture must produce the same numbers as eager evaluation, remote
//! execution must produce the same numbers as local, and lineage replay
//! must reproduce lost values exactly. Backends delegate to this
//! interpreter for the compute they "run".
//!
//! Execution is *wavefront*-ordered: the topological order is grouped into
//! dependency levels (via [`genie_srg::traverse::levels`]) and every node
//! in a level is evaluated before the next level starts. Nodes within a
//! level are mutually independent, so wide levels are fanned out over
//! the process-wide persistent worker pool ([`genie_tensor::pool`] — no
//! per-level thread spawning). Because each node's kernel is
//! deterministic and level order respects every edge, the wavefront
//! engine produces bit-identical values to the sequential reference
//! ([`execute_sequential`]), which is kept as the oracle the wavefront
//! path is tested against. Dead intermediates dropped by
//! [`execute_outputs`] return their buffers to the tensor arena for the
//! next allocation to reuse.

use crate::value::Value;
use genie_srg::{NodeId, OpKind, Srg};
use genie_tensor::ops;
use genie_tensor::{pool, Tensor};
use std::collections::{HashMap, HashSet};

/// Interpretation failure.
#[derive(Debug)]
pub enum InterpError {
    /// A source node has no payload bound.
    MissingValue {
        /// The unbound node.
        node: NodeId,
        /// Its name.
        name: String,
    },
    /// The graph contains a cycle.
    Cycle,
    /// An operator is not supported by the functional plane.
    Unsupported {
        /// The offending node.
        node: NodeId,
        /// Operator mnemonic.
        op: String,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::MissingValue { node, name } => {
                write!(f, "no payload bound for source {node} ({name})")
            }
            InterpError::Cycle => write!(f, "graph contains a cycle"),
            InterpError::Unsupported { node, op } => {
                write!(f, "operator {op} at {node} unsupported in functional plane")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Execute every node of `srg`, reading source payloads from `bindings`.
/// Returns the value of every node. Runs the wavefront engine with no
/// value dropping (every node's value is part of the contract).
pub fn execute(
    srg: &Srg,
    bindings: &HashMap<NodeId, Value>,
) -> Result<HashMap<NodeId, Value>, InterpError> {
    execute_wavefront(srg, bindings, None)
}

/// Sequential reference executor: one node at a time in topological order.
/// The wavefront engine is tested against this oracle; it stays available
/// for debugging and for environments where spawning threads is unwanted.
pub fn execute_sequential(
    srg: &Srg,
    bindings: &HashMap<NodeId, Value>,
) -> Result<HashMap<NodeId, Value>, InterpError> {
    let stats_before = genie_tensor::stats::snapshot();
    let order = genie_srg::traverse::topo_order(srg).map_err(|_| InterpError::Cycle)?;
    let mut values: HashMap<NodeId, Value> = HashMap::new();

    for id in order {
        let node = srg.node(id);
        let inputs: Vec<&Value> = srg
            .in_edges(id)
            .map(|e| values.get(&e.src).expect("topo order guarantees inputs"))
            .collect();
        let out = eval_node(srg, id, &node.op, &inputs, bindings)?;
        values.insert(id, out);
    }
    publish_dispatch_delta(&stats_before);
    Ok(values)
}

/// Execute and return only the requested outputs, in order. Interior
/// values are dropped as soon as their last consumer has run, so peak
/// memory tracks the widest live wavefront instead of the whole graph.
pub fn execute_outputs(
    srg: &Srg,
    bindings: &HashMap<NodeId, Value>,
    outputs: &[NodeId],
) -> Result<Vec<Value>, InterpError> {
    let mut all = execute_wavefront(srg, bindings, Some(outputs))?;
    Ok(outputs
        .iter()
        .map(|id| {
            all.remove(id)
                .or_else(|| all.get(id).cloned())
                .expect("outputs exist in graph")
        })
        .collect())
}

/// Group nodes into dependency levels: every node's inputs live in a
/// strictly earlier level, and nodes within a level are independent.
fn level_groups(srg: &Srg) -> Result<Vec<Vec<NodeId>>, InterpError> {
    let lv = genie_srg::traverse::levels(srg).map_err(|_| InterpError::Cycle)?;
    let depth = lv.iter().copied().max().map_or(0, |d| d + 1);
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); depth];
    // node_ids is ascending, so each group is deterministically ordered.
    for id in srg.node_ids() {
        groups[lv[id.index()]].push(id);
    }
    Ok(groups)
}

/// Wavefront engine. With `retain = Some(outputs)`, a node's value is
/// removed from the map once every consumer has executed (outputs are
/// always kept); with `None`, every value is kept.
fn execute_wavefront(
    srg: &Srg,
    bindings: &HashMap<NodeId, Value>,
    retain: Option<&[NodeId]>,
) -> Result<HashMap<NodeId, Value>, InterpError> {
    let stats_before = genie_tensor::stats::snapshot();
    let groups = level_groups(srg)?;
    let keep: Option<HashSet<NodeId>> = retain.map(|o| o.iter().copied().collect());
    let mut remaining: Vec<usize> = srg.node_ids().map(|id| srg.out_degree(id)).collect();
    let mut values: HashMap<NodeId, Value> = HashMap::new();

    for group in groups {
        let results = eval_level(srg, &group, &values, bindings);
        for (id, res) in group.iter().copied().zip(results) {
            values.insert(id, res?);
        }
        if let Some(keep) = &keep {
            // All of this level's reads are done; release inputs whose
            // last consumer just ran.
            for &id in &group {
                for e in srg.in_edges(id) {
                    let r = &mut remaining[e.src.index()];
                    *r = r.saturating_sub(1);
                    if *r == 0 && !keep.contains(&e.src) {
                        values.remove(&e.src);
                    }
                }
            }
        }
    }
    publish_dispatch_delta(&stats_before);
    Ok(values)
}

/// Evaluate one level: in parallel over cores when the level is wide
/// enough, sequentially otherwise. Result order matches `group` order.
fn eval_level(
    srg: &Srg,
    group: &[NodeId],
    values: &HashMap<NodeId, Value>,
    bindings: &HashMap<NodeId, Value>,
) -> Vec<Result<Value, InterpError>> {
    let eval_one = |id: NodeId| {
        let node = srg.node(id);
        let inputs: Vec<&Value> = srg
            .in_edges(id)
            .map(|e| values.get(&e.src).expect("level order guarantees inputs"))
            .collect();
        eval_node(srg, id, &node.op, &inputs, bindings)
    };
    // Pool workers plus the helping scope owner; 1 means single-core —
    // stay sequential instead of paying a queue round-trip.
    let cores = pool::size() + 1;
    if group.len() < 2 || cores < 2 {
        return group.iter().copied().map(eval_one).collect();
    }
    let workers = cores.min(group.len());
    let per = group.len().div_ceil(workers);
    let mut slots: Vec<Option<Result<Value, InterpError>>> =
        (0..group.len()).map(|_| None).collect();
    pool::scope(|scope| {
        let mut rest = slots.as_mut_slice();
        let mut base = 0;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let eval_ref = &eval_one;
            let ids = &group[base..base + take];
            scope.spawn(move || {
                for (slot, &id) in chunk.iter_mut().zip(ids) {
                    *slot = Some(eval_ref(id));
                }
            });
            base += take;
            rest = tail;
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every level slot filled"))
        .collect()
}

/// Publish kernel-dispatch counts accumulated since `before` as
/// `genie_tensor_kernel_dispatch_total{op,path}` counters, plus the
/// worker-pool occupancy high-water mark as `genie_worker_pool_busy`.
fn publish_dispatch_delta(before: &genie_tensor::stats::Snapshot) {
    let delta = genie_tensor::stats::snapshot().since(before);
    if delta.total() == 0 {
        return;
    }
    let metrics = &genie_telemetry::global().metrics;
    for (op, path, n) in delta.cells() {
        metrics
            .counter(
                "genie_tensor_kernel_dispatch_total",
                &[("op", op), ("path", path)],
            )
            .add(n);
    }
    let peak = pool::busy_peak_take();
    if peak > 0 {
        metrics
            .gauge("genie_worker_pool_busy", &[])
            .set(peak as f64);
    }
}

pub(crate) fn eval_node(
    srg: &Srg,
    id: NodeId,
    op: &OpKind,
    inputs: &[&Value],
    bindings: &HashMap<NodeId, Value>,
) -> Result<Value, InterpError> {
    let node = srg.node(id);
    let attr = |key: &str| node.attrs.get(key).cloned().unwrap_or_default();
    let attr_usize = |key: &str| attr(key).parse::<usize>().unwrap_or(0);

    Ok(match op {
        OpKind::Parameter | OpKind::Input => {
            bindings
                .get(&id)
                .cloned()
                .ok_or_else(|| InterpError::MissingValue {
                    node: id,
                    name: node.name.clone(),
                })?
        }
        OpKind::MatMul => Value::F(ops::matmul(
            inputs[0].as_f("matmul"),
            inputs[1].as_f("matmul"),
        )),
        OpKind::Add => {
            if attr("bias") == "1" {
                Value::F(ops::add_bias(inputs[0].as_f("add"), inputs[1].as_f("bias")))
            } else {
                Value::F(ops::add(inputs[0].as_f("add"), inputs[1].as_f("add")))
            }
        }
        OpKind::Mul => Value::F(ops::mul(inputs[0].as_f("mul"), inputs[1].as_f("mul"))),
        OpKind::Relu => Value::F(ops::relu(inputs[0].as_f("relu"))),
        OpKind::Gelu => Value::F(ops::gelu(inputs[0].as_f("gelu"))),
        OpKind::Silu => Value::F(ops::silu(inputs[0].as_f("silu"))),
        OpKind::Softmax => Value::F(ops::softmax_lastdim(inputs[0].as_f("softmax"))),
        OpKind::LayerNorm => {
            let eps: f32 = attr("eps").parse().unwrap_or(1e-5);
            Value::F(ops::layer_norm(
                inputs[0].as_f("layer_norm"),
                inputs[1].as_f("gamma"),
                inputs[2].as_f("beta"),
                eps,
            ))
        }
        OpKind::RmsNorm => {
            let eps: f32 = attr("eps").parse().unwrap_or(1e-6);
            Value::F(ops::rms_norm(
                inputs[0].as_f("rms_norm"),
                inputs[1].as_f("gamma"),
                eps,
            ))
        }
        OpKind::Attention => {
            let heads = attr_usize("heads").max(1);
            let causal = attr("causal") == "true";
            Value::F(ops::multi_head_attention(
                inputs[0].as_f("q"),
                inputs[1].as_f("k"),
                inputs[2].as_f("v"),
                heads,
                causal,
            ))
        }
        OpKind::KvAppend => Value::F(ops::concat(
            inputs[0].as_f("cache"),
            inputs[1].as_f("new"),
            0,
        )),
        OpKind::Conv2d => Value::F(ops::conv2d(
            inputs[0].as_f("x"),
            inputs[1].as_f("w"),
            inputs[2].as_f("bias"),
            attr_usize("stride").max(1),
            attr_usize("padding"),
        )),
        OpKind::Pool2d => {
            let x = inputs[0].as_f("pool");
            if attr("gap") == "true" {
                Value::F(ops::global_avg_pool(x))
            } else {
                let mode = if attr("avg") == "true" {
                    ops::PoolMode::Avg
                } else {
                    ops::PoolMode::Max
                };
                Value::F(ops::pool2d(
                    x,
                    attr_usize("k").max(1),
                    attr_usize("stride").max(1),
                    mode,
                ))
            }
        }
        OpKind::EmbeddingGather => {
            let table = inputs[0].as_f("table");
            let idx = inputs[1].as_i("indices");
            if attr("pooled") == "true" {
                Value::F(ops::gather_sum(table, idx))
            } else {
                Value::F(ops::gather_rows(table, idx))
            }
        }
        OpKind::Concat => Value::F(ops::concat(
            inputs[0].as_f("concat"),
            inputs[1].as_f("concat"),
            attr_usize("dim"),
        )),
        OpKind::Slice => Value::F(ops::narrow(
            inputs[0].as_f("narrow"),
            attr_usize("dim"),
            attr_usize("start"),
            attr_usize("len"),
        )),
        OpKind::Reshape => {
            let shape: Vec<usize> = attr("shape")
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().expect("valid reshape attr"))
                .collect();
            // Zero-copy: a reshaped view shares the input's buffer.
            Value::F(inputs[0].as_f("reshape").reshaped(shape))
        }
        OpKind::Transpose => Value::F(ops::transpose2d(inputs[0].as_f("transpose"))),
        OpKind::Reduce => {
            let x = inputs[0].as_f("reduce");
            match attr("kind").as_str() {
                "sum" => Value::F(ops::sum_lastdim(x)),
                "max" => Value::F(ops::max_lastdim(x)),
                _ => Value::F(ops::mean_lastdim(x)),
            }
        }
        OpKind::Sample => {
            let logits = inputs[0].as_f("sample");
            let t = logits.dims()[0];
            let last = ops::narrow(logits, 0, t - 1, 1);
            Value::I(ops::argmax_lastdim(&last))
        }
        OpKind::MatMulAcc => Value::F(ops::matmul_acc(
            inputs[0].as_f("matmul_acc"),
            inputs[1].as_f("matmul_acc"),
            inputs[2].as_f("acc"),
        )),
        OpKind::AllReduce => {
            let parts: Vec<&Tensor> = inputs.iter().map(|v| v.as_f("all_reduce")).collect();
            Value::F(ops::all_reduce_sum(&parts))
        }
        OpKind::AllGather => {
            let parts: Vec<&Tensor> = inputs.iter().map(|v| v.as_f("all_gather")).collect();
            Value::F(ops::all_gather(&parts, attr_usize("dim")))
        }
        // A point-to-point send is the identity on the value; its cost
        // lives in the plan's transfer schedule, not the arithmetic.
        OpKind::SendActivation => inputs[0].clone(),
        OpKind::Output => inputs[0].clone(),
        other => {
            return Err(InterpError::Unsupported {
                node: id,
                op: other.mnemonic().to_string(),
            })
        }
    })
}

/// Convenience: bind nothing extra, run, and return a single float output.
pub fn run_single_output(cap: &crate::capture::CapturedGraph) -> Result<Tensor, InterpError> {
    let out = cap.outputs.last().expect("capture has an output");
    let vals = execute_outputs(&cap.srg, &cap.values, &[*out])?;
    Ok(vals[0].as_f("output").clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::ElemType;
    use genie_tensor::init::randn;

    #[test]
    fn lazy_matches_eager_matmul_chain() {
        let a = randn([4, 8], 1);
        let b = randn([8, 8], 2);
        // Eager reference.
        let eager = ops::relu(&ops::matmul(&a, &b));

        // Lazy capture + interpret.
        let ctx = CaptureCtx::new("g");
        let la = ctx.input("a", [4, 8], ElemType::F32, Some(a));
        let lb = ctx.parameter("b", [8, 8], ElemType::F32, Some(b));
        let ly = la.matmul(&lb).relu();
        ly.mark_output();
        let cap = ctx.finish();
        let out = run_single_output(&cap).unwrap();
        assert!(out.approx_eq(&eager, 1e-6));
    }

    #[test]
    fn missing_binding_is_reported() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [2, 2], ElemType::F32, None); // no payload
        let y = x.relu();
        y.mark_output();
        let cap = ctx.finish();
        let err = execute(&cap.srg, &cap.values).unwrap_err();
        assert!(matches!(err, InterpError::MissingValue { .. }));
        assert!(err.to_string().contains("x"));
    }

    #[test]
    fn kv_append_interp_grows_cache() {
        let ctx = CaptureCtx::new("g");
        let cache = ctx.empty_cache("kv", 4, ElemType::F32);
        let row = ctx.input(
            "row",
            [1, 4],
            ElemType::F32,
            Some(genie_tensor::Tensor::ones([1, 4])),
        );
        let grown = cache.kv_append(&row).kv_append(&row);
        grown.mark_output();
        let cap = ctx.finish();
        let out = run_single_output(&cap).unwrap();
        assert_eq!(out.dims(), &[2, 4]);
        assert_eq!(out.data(), &[1.0; 8]);
    }

    #[test]
    fn sample_returns_argmax_of_last_row() {
        let ctx = CaptureCtx::new("g");
        let logits = ctx.input(
            "logits",
            [2, 4],
            ElemType::F32,
            Some(Tensor::from_vec(
                [2, 4],
                vec![9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 7.0, 0.0],
            )),
        );
        let tok = logits.sample();
        tok.mark_output();
        let cap = ctx.finish();
        let vals = execute_outputs(&cap.srg, &cap.values, &[tok.node]).unwrap();
        assert_eq!(vals[0].as_i("tok").data(), &[2]);
    }

    #[test]
    fn embedding_then_mlp_pipeline() {
        let table = randn([10, 4], 3);
        let w = randn([4, 2], 4);
        let ctx = CaptureCtx::new("g");
        let lt = ctx.parameter("table", [10, 4], ElemType::F32, Some(table.clone()));
        let ids = ctx.input_ids("ids", &[1, 3]);
        let lw = ctx.parameter("w", [4, 2], ElemType::F32, Some(w.clone()));
        let y = lt.gather(&ids).matmul(&lw);
        y.mark_output();
        let cap = ctx.finish();
        let got = run_single_output(&cap).unwrap();

        let rows = ops::gather_rows(&table, &genie_tensor::IndexTensor::from_slice(&[1, 3]));
        let expect = ops::matmul(&rows, &w);
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn conv_pipeline_matches_eager() {
        let x = randn([1, 2, 8, 8], 7);
        let w = randn([4, 2, 3, 3], 8);
        let b = randn([4], 9);
        let eager = ops::global_avg_pool(&ops::pool2d(
            &ops::relu(&ops::conv2d(&x, &w, &b, 1, 1)),
            2,
            2,
            ops::PoolMode::Max,
        ));

        let ctx = CaptureCtx::new("g");
        let lx = ctx.input("x", [1, 2, 8, 8], ElemType::F32, Some(x));
        let lw = ctx.parameter("w", [4, 2, 3, 3], ElemType::F32, Some(w));
        let lb = ctx.parameter("b", [4], ElemType::F32, Some(b));
        let y = lx
            .conv2d(&lw, &lb, 1, 1)
            .relu()
            .pool2d(2, 2, false)
            .global_avg_pool();
        y.mark_output();
        let cap = ctx.finish();
        let got = run_single_output(&cap).unwrap();
        assert!(got.approx_eq(&eager, 1e-5));
    }

    #[test]
    fn reduce_reshape_transpose_roundtrip() {
        let x = randn([3, 4], 30);
        let ctx = CaptureCtx::new("g");
        let lx = ctx.input("x", [3, 4], ElemType::F32, Some(x.clone()));
        let mean = lx.mean_lastdim();
        let reshaped = lx.reshape([4, 3]);
        let transposed = lx.transpose();
        mean.mark_output();
        reshaped.mark_output();
        transposed.mark_output();
        let cap = ctx.finish();
        let outs = execute_outputs(
            &cap.srg,
            &cap.values,
            &[mean.node, reshaped.node, transposed.node],
        )
        .unwrap();
        assert!(outs[0].as_f("mean").approx_eq(&ops::mean_lastdim(&x), 1e-6));
        assert_eq!(outs[1].as_f("reshape").dims(), &[4, 3]);
        assert_eq!(outs[1].as_f("reshape").data(), x.data());
        assert!(outs[2]
            .as_f("transpose")
            .approx_eq(&ops::transpose2d(&x), 1e-6));
    }

    #[test]
    fn norm_variants_match_eager() {
        let x = randn([2, 16], 31);
        let gamma = genie_tensor::Tensor::ones([16]);
        let ctx = CaptureCtx::new("g");
        let lx = ctx.input("x", [2, 16], ElemType::F32, Some(x.clone()));
        let lg = ctx.parameter("g", [16], ElemType::F32, Some(gamma.clone()));
        let rms = lx.rms_norm(&lg, 1e-6);
        let silu = lx.silu();
        let soft = lx.softmax();
        rms.mark_output();
        silu.mark_output();
        soft.mark_output();
        let cap = ctx.finish();
        let outs =
            execute_outputs(&cap.srg, &cap.values, &[rms.node, silu.node, soft.node]).unwrap();
        assert!(outs[0]
            .as_f("rms")
            .approx_eq(&ops::rms_norm(&x, &gamma, 1e-6), 1e-5));
        assert!(outs[1].as_f("silu").approx_eq(&ops::silu(&x), 1e-6));
        assert!(outs[2]
            .as_f("softmax")
            .approx_eq(&ops::softmax_lastdim(&x), 1e-6));
    }

    #[test]
    fn concat_narrow_bias_match_eager() {
        let a = randn([2, 3], 32);
        let b = randn([2, 3], 33);
        let bias = randn([6], 34);
        let ctx = CaptureCtx::new("g");
        let la = ctx.input("a", [2, 3], ElemType::F32, Some(a.clone()));
        let lb = ctx.input("b", [2, 3], ElemType::F32, Some(b.clone()));
        let lbias = ctx.parameter("bias", [6], ElemType::F32, Some(bias.clone()));
        let cat = la.concat(&lb, 1);
        let biased = cat.add_bias(&lbias);
        let sliced = biased.narrow(1, 2, 3);
        sliced.mark_output();
        let cap = ctx.finish();
        let out = run_single_output(&cap).unwrap();
        let expect = ops::narrow(&ops::add_bias(&ops::concat(&a, &b, 1), &bias), 1, 2, 3);
        assert!(out.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn wavefront_matches_sequential_on_branching_graph() {
        // A diamond with heterogeneous branches: x fans out to four
        // independent ops (one wavefront level), which recombine.
        let x = randn([4, 4], 40);
        let ctx = CaptureCtx::new("g");
        let lx = ctx.input("x", [4, 4], ElemType::F32, Some(x));
        let a = lx.relu();
        let b = lx.gelu();
        let c = lx.silu();
        let d = lx.softmax();
        let ab = a.mul(&b);
        let cd = c.mul(&d);
        let y = ab.add(&cd);
        y.mark_output();
        let cap = ctx.finish();

        let wave = execute(&cap.srg, &cap.values).unwrap();
        let seq = execute_sequential(&cap.srg, &cap.values).unwrap();
        assert_eq!(wave.len(), seq.len());
        for (id, v) in &seq {
            assert_eq!(wave.get(id), Some(v), "node {id} diverged");
        }
    }

    #[test]
    fn execute_outputs_matches_full_execution() {
        let x = randn([3, 6], 41);
        let w = randn([6, 6], 42);
        let ctx = CaptureCtx::new("g");
        let lx = ctx.input("x", [3, 6], ElemType::F32, Some(x));
        let lw = ctx.parameter("w", [6, 6], ElemType::F32, Some(w));
        let h1 = lx.matmul(&lw).relu();
        let h2 = h1.matmul(&lw).gelu();
        let y = h2.mean_lastdim();
        y.mark_output();
        let cap = ctx.finish();

        let outs = execute_outputs(&cap.srg, &cap.values, &[y.node]).unwrap();
        let seq = execute_sequential(&cap.srg, &cap.values).unwrap();
        assert_eq!(
            outs[0], seq[&y.node],
            "dropping interiors must not change outputs"
        );
    }

    #[test]
    fn level_groups_respect_dependencies() {
        let ctx = CaptureCtx::new("g");
        let lx = ctx.input("x", [2, 2], ElemType::F32, Some(Tensor::ones([2, 2])));
        let a = lx.relu();
        let b = lx.gelu();
        let y = a.add(&b);
        y.mark_output();
        let cap = ctx.finish();
        let groups = level_groups(&cap.srg).unwrap();
        let level_of = |n: genie_srg::NodeId| {
            groups
                .iter()
                .position(|g| g.contains(&n))
                .expect("node in some level")
        };
        assert_eq!(level_of(a.node), level_of(b.node), "siblings share a level");
        assert!(level_of(lx.node) < level_of(a.node));
        assert!(level_of(a.node) < level_of(y.node));
    }

    #[test]
    fn dispatch_counters_published() {
        let ctx = CaptureCtx::new("g");
        let la = ctx.input("a", [4, 8], ElemType::F32, Some(randn([4, 8], 50)));
        let lb = ctx.parameter("b", [8, 8], ElemType::F32, Some(randn([8, 8], 51)));
        let y = la.matmul(&lb);
        y.mark_output();
        let cap = ctx.finish();
        execute(&cap.srg, &cap.values).unwrap();
        let snap = genie_telemetry::global().metrics.snapshot();
        let count = snap.counter(
            "genie_tensor_kernel_dispatch_total",
            &[("op", "matmul"), ("path", "scalar")],
        );
        assert!(count.unwrap_or(0) >= 1, "matmul dispatch not published");
    }

    #[test]
    fn attention_block_matches_eager() {
        let q = randn([3, 8], 20);
        let k = randn([5, 8], 21);
        let v = randn([5, 8], 22);
        let eager = ops::multi_head_attention(&q, &k, &v, 2, true);

        let ctx = CaptureCtx::new("g");
        let lq = ctx.input("q", [3, 8], ElemType::F32, Some(q));
        let lk = ctx.input("k", [5, 8], ElemType::F32, Some(k));
        let lv = ctx.input("v", [5, 8], ElemType::F32, Some(v));
        let o = lq.attention(&lk, &lv, 2, true);
        o.mark_output();
        let cap = ctx.finish();
        let got = run_single_output(&cap).unwrap();
        assert!(got.approx_eq(&eager, 1e-6));
    }
}
