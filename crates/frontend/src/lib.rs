//! # genie-frontend — capturing application intent
//!
//! The frontend is Genie's answer to the semantic translation gap: instead
//! of intercepting driver calls (too late — semantics already lost) or
//! asking developers to orchestrate remote execution by hand (too manual),
//! it *defers execution* at the framework layer and records what the
//! application meant to compute.
//!
//! The capture pipeline mirrors §3.2's three tiers:
//!
//! 1. **Automated graph construction** — [`capture::LazyTensor`] proxies
//!    intercept every operation (the `__torch_dispatch__` analogue) and
//!    append annotated nodes to an SRG, checking shapes eagerly and
//!    deriving cost hints from operator type and shapes.
//! 2. **Automated structural annotation** — [`structure`] groups nodes by
//!    the `nn.Module`-style scope hierarchy ([`capture::CaptureCtx::scope`])
//!    and detects repeated blocks (stacked transformer layers).
//! 3. **Semi-automated semantic annotation** — [`patterns`] recognizers
//!    identify model idioms (growing KV cache ⇒ decode, conv chains ⇒
//!    vision pipeline, pooled gathers ⇒ recommendation, cross-modal joins
//!    ⇒ fusion); [`annotate`] provides the explicit developer hooks that
//!    override them, plus the finalization pass (rates + criticality).
//!
//! [`interp`] is the reference interpreter that executes captured graphs
//! with real arithmetic — the ground truth every backend is tested
//! against. [`recapture`] handles data-dependent control flow by
//! re-capturing per dynamic region (§3.7).
//!
//! ```
//! use genie_frontend::prelude::*;
//!
//! let ctx = CaptureCtx::new("tiny");
//! let x = ctx.input("x", [2, 4], ElemType::F32, Some(genie_tensor::init::randn([2, 4], 1)));
//! let w = ctx.parameter("w", [4, 4], ElemType::F32, Some(genie_tensor::init::randn([4, 4], 2)));
//! let y = x.matmul(&w).gelu();
//! y.mark_output();
//! let cap = ctx.finish();
//! let out = genie_frontend::interp::run_single_output(&cap).unwrap();
//! assert_eq!(out.dims(), &[2, 4]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotate;
pub mod capture;
pub mod interp;
pub mod patterns;
pub mod recapture;
pub mod shard;
pub mod structure;
pub mod value;

pub use capture::{CaptureCtx, CapturedGraph, LazyTensor};
pub use recapture::RecaptureSession;
pub use shard::{execute_sharded, ShardExecReport};
pub use value::Value;

/// Convenient glob import for frontend users.
pub mod prelude {
    pub use crate::capture::{CaptureCtx, CapturedGraph, LazyTensor};
    pub use crate::recapture::RecaptureSession;
    pub use crate::value::Value;
    pub use genie_srg::{ElemType, Modality, Phase, Residency};
}
