//! LLM phase recognizer.
//!
//! The paper's canonical example (§3.2): "a recurrent loop with a growing
//! KV cache is characteristic of LLM decoding". Our captures are per-step
//! graphs, so the signature is: the graph contains `KvAppend` nodes, and
//! the attention *query* length distinguishes the phases — prefill attends
//! with the full prompt (`tq > 1`), decode with a single new token
//! (`tq = 1`).

use genie_srg::{Modality, NodeId, OpKind, Phase, Srg};

/// Annotate LLM phases and text modality. Returns the number of nodes
/// annotated; zero when the graph shows no LLM signature.
pub fn recognize(srg: &mut Srg) -> usize {
    let has_kv = srg.nodes().any(|n| n.op == OpKind::KvAppend);
    if !has_kv {
        return 0;
    }

    // Query length = dim 0 of the first input edge of any Attention node.
    let mut query_len: Option<usize> = None;
    for node in srg.nodes() {
        if node.op == OpKind::Attention {
            if let Some(edge) = srg.in_edges(node.id).next() {
                query_len = Some(edge.meta.shape.first().copied().unwrap_or(1));
                break;
            }
        }
    }
    let phase = match query_len {
        Some(1) => Phase::LlmDecode,
        Some(_) => Phase::LlmPrefill,
        // KV appends without attention: treat as decode bookkeeping.
        None => Phase::LlmDecode,
    };

    let ids: Vec<NodeId> = srg.node_ids().collect();
    let mut annotated = 0;
    for id in ids {
        let node = srg.node_mut(id);
        if node.op.is_source() && node.op != OpKind::Parameter {
            // Inputs keep their own residency; still tag modality below.
        }
        let mut touched = false;
        if node.phase == Phase::Unknown {
            node.phase = phase.clone();
            touched = true;
        }
        if node.modality == Modality::Unknown {
            node.modality = Modality::Text;
            touched = true;
        }
        if touched {
            annotated += 1;
        }
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::ElemType;

    fn llm_step(query_len: usize) -> Srg {
        let ctx = CaptureCtx::new("step");
        let cache = ctx.empty_cache("kv", 8, ElemType::F32);
        let q = ctx.input("q", [query_len, 8], ElemType::F32, None);
        let grown = cache.kv_append(&q);
        let o = q.attention(&grown, &grown, 2, true);
        o.mark_output();
        ctx.finish().srg
    }

    #[test]
    fn decode_detected_for_single_token_queries() {
        let mut srg = llm_step(1);
        let n = recognize(&mut srg);
        assert!(n > 0);
        assert!(srg.nodes().all(|node| node.phase == Phase::LlmDecode));
        assert!(srg.nodes().all(|node| node.modality == Modality::Text));
    }

    #[test]
    fn prefill_detected_for_prompt_length_queries() {
        let mut srg = llm_step(72);
        recognize(&mut srg);
        assert!(srg.nodes().all(|node| node.phase == Phase::LlmPrefill));
    }

    #[test]
    fn no_kv_cache_means_no_match() {
        let ctx = CaptureCtx::new("g");
        let a = ctx.input("a", [2, 2], ElemType::F32, None);
        a.relu().mark_output();
        let mut srg = ctx.finish().srg;
        assert_eq!(recognize(&mut srg), 0);
    }
}
