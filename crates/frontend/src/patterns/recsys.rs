//! Recommendation-model recognizer: sparse + dense mix.
//!
//! DLRM-style models gather from large embedding tables (sparse, hot/cold
//! access) and feed the pooled embeddings into dense MLP towers. The
//! recognizer tags gathers and their tables as `EmbeddingLookup` /
//! `EmbeddingTable` and the downstream dense compute as
//! `DenseInteraction` — the split that makes the paper's "intelligent data
//! tiering" (Table 1) possible.

use genie_srg::{Modality, NodeId, OpKind, Phase, Residency, Srg};
use std::collections::BTreeSet;

/// Annotate recommendation phases. Returns nodes annotated (zero without
/// the sparse+dense signature).
pub fn recognize(srg: &mut Srg) -> usize {
    let gathers: Vec<NodeId> = srg
        .nodes()
        .filter(|n| n.op == OpKind::EmbeddingGather)
        .map(|n| n.id)
        .collect();
    let has_dense = srg.nodes().any(|n| n.op == OpKind::MatMul);
    // Attention implies a transformer, not a recsys tower — and LLM
    // embeddings (token lookup) also use gathers, so require no KV cache.
    let has_kv = srg.nodes().any(|n| n.op == OpKind::KvAppend);
    if gathers.is_empty() || !has_dense || has_kv {
        return 0;
    }

    let mut annotated = 0;

    // Sparse side: gathers, their index inputs, and their tables.
    let mut sparse: BTreeSet<NodeId> = BTreeSet::new();
    for &g in &gathers {
        sparse.insert(g);
        for pred in srg.predecessors(g) {
            sparse.insert(pred);
        }
    }
    for &id in &sparse {
        let node = srg.node_mut(id);
        let mut touched = false;
        if node.phase == Phase::Unknown {
            node.phase = Phase::EmbeddingLookup;
            touched = true;
        }
        if node.modality == Modality::Unknown {
            node.modality = Modality::Tabular;
            touched = true;
        }
        if node.op == OpKind::Parameter && node.residency == Residency::PersistentWeight {
            node.residency = Residency::EmbeddingTable;
            touched = true;
        }
        if touched {
            annotated += 1;
        }
    }

    // Dense side: everything downstream of the gathers.
    let downstream = genie_srg::traverse::descendants(srg, &gathers);
    for id in downstream {
        if sparse.contains(&id) {
            continue;
        }
        let node = srg.node_mut(id);
        let mut touched = false;
        if node.phase == Phase::Unknown {
            node.phase = Phase::DenseInteraction;
            touched = true;
        }
        if node.modality == Modality::Unknown {
            node.modality = Modality::Tabular;
            touched = true;
        }
        if touched {
            annotated += 1;
        }
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::ElemType;

    fn dlrm_like() -> Srg {
        let ctx = CaptureCtx::new("rec");
        let table = ctx.parameter("emb", [1000, 16], ElemType::F32, None);
        let ids = ctx.input_ids_spec("ids", 8);
        let pooled = table.gather_sum(&ids);
        let w = ctx.parameter("w", [16, 4], ElemType::F32, None);
        let y = pooled.reshape([1, 16]).matmul(&w).relu();
        y.mark_output();
        ctx.finish().srg
    }

    #[test]
    fn sparse_dense_split_annotated() {
        let mut srg = dlrm_like();
        assert!(recognize(&mut srg) > 0);
        let table = srg.nodes().find(|n| n.name == "emb").unwrap();
        assert_eq!(table.residency, Residency::EmbeddingTable);
        assert_eq!(table.phase, Phase::EmbeddingLookup);
        let mm = srg.nodes().find(|n| n.op == OpKind::MatMul).unwrap();
        assert_eq!(mm.phase, Phase::DenseInteraction);
        assert_eq!(mm.modality, Modality::Tabular);
    }

    #[test]
    fn llm_token_embedding_not_misclassified() {
        // Gather + matmul + KV cache = LLM, not recsys.
        let ctx = CaptureCtx::new("llm");
        let table = ctx.parameter("wte", [100, 8], ElemType::F32, None);
        let ids = ctx.input_ids_spec("ids", 1);
        let x = table.gather(&ids);
        let cache = ctx.empty_cache("kv", 8, ElemType::F32);
        let grown = cache.kv_append(&x);
        let o = x.attention(&grown, &grown, 1, true);
        o.mark_output();
        let mut srg = ctx.finish().srg;
        assert_eq!(recognize(&mut srg), 0);
    }

    #[test]
    fn pure_dense_not_matched() {
        let ctx = CaptureCtx::new("mlp");
        let x = ctx.input("x", [1, 4], ElemType::F32, None);
        let w = ctx.parameter("w", [4, 4], ElemType::F32, None);
        x.matmul(&w).mark_output();
        let mut srg = ctx.finish().srg;
        assert_eq!(recognize(&mut srg), 0);
    }
}
