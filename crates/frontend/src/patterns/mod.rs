//! Pattern recognizers: the "library of idiom detectors" of §3.2.
//!
//! High-level semantics (execution phase, modality) are often implicit in a
//! raw capture. Each recognizer inspects the SRG for a model family's
//! structural signature — a growing KV cache for LLM decode, chained
//! convolutions for vision, pooled embedding gathers for recommendation —
//! and fills in the semantic annotations a scheduler needs.
//!
//! Recognizers never overwrite annotations that are already present:
//! explicit developer hooks (`annotate::annotate_phase`) always win,
//! matching the paper's tiered adoption story (most models work
//! out-of-the-box; novel ones add minimal hints).

pub mod learned;
pub mod llm;
pub mod multimodal;
pub mod recsys;
pub mod vision;

use genie_srg::Srg;

/// Outcome of a recognizer pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recognition {
    /// Name of the recognizer that fired.
    pub recognizer: &'static str,
    /// Number of nodes it annotated.
    pub annotated: usize,
}

/// Run every built-in recognizer in priority order. Returns one entry per
/// recognizer that fired. Multimodal runs last because it composes the
/// modality tags the others produce.
pub fn run_all(srg: &mut Srg) -> Vec<Recognition> {
    let mut out = Vec::new();
    for (name, f) in [
        ("llm", llm::recognize as fn(&mut Srg) -> usize),
        ("vision", vision::recognize),
        ("recsys", recsys::recognize),
        ("multimodal", multimodal::recognize),
    ] {
        let annotated = f(srg);
        if annotated > 0 {
            out.push(Recognition {
                recognizer: name,
                annotated,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::{ElemType, Phase};

    #[test]
    fn run_all_on_plain_graph_fires_nothing() {
        let ctx = CaptureCtx::new("plain");
        let a = ctx.input("a", [2, 2], ElemType::F32, None);
        a.relu().mark_output();
        let mut srg = ctx.finish().srg;
        assert!(run_all(&mut srg).is_empty());
    }

    #[test]
    fn explicit_annotations_survive_recognizers() {
        let ctx = CaptureCtx::new("g");
        let cache = ctx.empty_cache("kv", 4, ElemType::F32);
        let x = ctx.input("x", [1, 4], ElemType::F32, None);
        // Developer explicitly tags this as a custom phase.
        let grown = ctx.phase_scope(Phase::Custom("speculative".into()), || cache.kv_append(&x));
        grown.mark_output();
        let mut srg = ctx.finish().srg;
        run_all(&mut srg);
        assert_eq!(
            srg.node(grown.node).phase,
            Phase::Custom("speculative".into()),
            "recognizers must not overwrite explicit hooks"
        );
    }
}
