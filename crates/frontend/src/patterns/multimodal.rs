//! Multimodal fusion recognizer.
//!
//! Runs after the per-modality recognizers (or explicit modality scopes):
//! when a `Concat`/`Add` joins subgraphs carrying *different* modalities,
//! the join and everything downstream is cross-modal fusion — the
//! workload family whose key optimization is modality-aware placement
//! (Table 1).

use genie_srg::{Modality, NodeId, OpKind, Phase, Srg};

/// Annotate fusion points and their downstream cone. Returns nodes
/// annotated (zero when at most one modality is present).
pub fn recognize(srg: &mut Srg) -> usize {
    // Find join nodes whose predecessors carry at least two distinct known
    // modalities.
    let mut joins: Vec<NodeId> = Vec::new();
    for node in srg.nodes() {
        if !matches!(node.op, OpKind::Concat | OpKind::Add) {
            continue;
        }
        let mods: std::collections::BTreeSet<Modality> = srg
            .predecessors(node.id)
            .iter()
            .map(|&p| srg.node(p).modality)
            .filter(|m| *m != Modality::Unknown)
            .collect();
        if mods.len() >= 2 {
            joins.push(node.id);
        }
    }
    if joins.is_empty() {
        return 0;
    }

    let downstream = genie_srg::traverse::descendants(srg, &joins);
    let mut annotated = 0;
    for id in downstream {
        let node = srg.node_mut(id);
        let mut touched = false;
        if node.phase == Phase::Unknown {
            node.phase = Phase::ModalityFusion;
            touched = true;
        }
        if node.modality != Modality::Mixed {
            node.modality = Modality::Mixed;
            touched = true;
        }
        if touched {
            annotated += 1;
        }
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::ElemType;

    #[test]
    fn cross_modal_concat_detected() {
        let ctx = CaptureCtx::new("vqa");
        let img_feat = ctx.modality_scope(Modality::Vision, || {
            ctx.input("img_feat", [1, 8], ElemType::F32, None).relu()
        });
        let txt_feat = ctx.modality_scope(Modality::Text, || {
            ctx.input("txt_feat", [1, 8], ElemType::F32, None).relu()
        });
        let fused = img_feat.concat(&txt_feat, 1);
        let w = ctx.parameter("w", [16, 4], ElemType::F32, None);
        let y = fused.matmul(&w);
        y.mark_output();
        let mut srg = ctx.finish().srg;
        assert!(recognize(&mut srg) > 0);
        assert_eq!(srg.node(fused.node).modality, Modality::Mixed);
        assert_eq!(srg.node(fused.node).phase, Phase::ModalityFusion);
        assert_eq!(srg.node(y.node).modality, Modality::Mixed);
    }

    #[test]
    fn single_modality_concat_ignored() {
        let ctx = CaptureCtx::new("g");
        let a = ctx.modality_scope(Modality::Text, || {
            ctx.input("a", [1, 4], ElemType::F32, None)
        });
        let b = ctx.modality_scope(Modality::Text, || {
            ctx.input("b", [1, 4], ElemType::F32, None)
        });
        a.concat(&b, 1).mark_output();
        let mut srg = ctx.finish().srg;
        assert_eq!(recognize(&mut srg), 0);
    }

    #[test]
    fn unknown_modalities_do_not_trigger() {
        let ctx = CaptureCtx::new("g");
        let a = ctx.input("a", [1, 4], ElemType::F32, None);
        let b = ctx.input("b", [1, 4], ElemType::F32, None);
        a.concat(&b, 1).mark_output();
        let mut srg = ctx.finish().srg;
        assert_eq!(recognize(&mut srg), 0);
    }
}
