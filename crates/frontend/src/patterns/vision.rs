//! Vision recognizer: chained convolutional stages.
//!
//! Two or more `Conv2d` nodes connected through elementwise/pooling ops are
//! the signature of a CNN feature extractor. Beyond phase and modality,
//! the recognizer numbers the convolutional stages (`pipeline_stage`
//! attribute) — the hook the scheduler's pipelined-CNN-inference rewrite
//! (§3.3) keys on.

use genie_srg::{Modality, NodeId, OpKind, Phase, Srg};

/// Annotate vision phases, modality, and pipeline stages. Returns nodes
/// annotated (zero if fewer than two convolutions are chained).
pub fn recognize(srg: &mut Srg) -> usize {
    let convs: Vec<NodeId> = srg
        .nodes()
        .filter(|n| n.op == OpKind::Conv2d)
        .map(|n| n.id)
        .collect();
    if convs.len() < 2 {
        return 0;
    }
    // Verify the convs form a dependency chain (each reachable from the
    // previous) — parallel towers (e.g. inception branches) still count as
    // stages in topological order.
    let order = match genie_srg::traverse::topo_order(srg) {
        Ok(o) => o,
        Err(_) => return 0,
    };
    let conv_in_order: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|id| convs.contains(id))
        .collect();

    let mut annotated = 0;
    // Stage boundaries: each conv starts a new stage; every node is tagged
    // with the stage of the latest conv at-or-before it in topo order.
    let mut stage: i64 = -1;
    for id in order {
        if conv_in_order.contains(&id) {
            stage += 1;
        }
        let node = srg.node_mut(id);
        let mut touched = false;
        if node.phase == Phase::Unknown {
            node.phase = Phase::VisionEncode;
            touched = true;
        }
        if node.modality == Modality::Unknown {
            node.modality = Modality::Vision;
            touched = true;
        }
        if stage >= 0 && !node.attrs.contains_key("pipeline_stage") {
            node.attrs
                .insert("pipeline_stage".into(), stage.to_string());
            touched = true;
        }
        if touched {
            annotated += 1;
        }
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::ElemType;

    fn cnn(stages: usize) -> Srg {
        let ctx = CaptureCtx::new("cnn");
        let mut x = ctx.input("img", [1, 3, 16, 16], ElemType::F32, None);
        for i in 0..stages {
            let cin = if i == 0 { 3 } else { 8 };
            let w = ctx.parameter(&format!("w{i}"), [8, cin, 3, 3], ElemType::F32, None);
            let b = ctx.parameter(&format!("b{i}"), [8], ElemType::F32, None);
            x = x.conv2d(&w, &b, 1, 1).relu();
        }
        x.mark_output();
        ctx.finish().srg
    }

    #[test]
    fn chained_convs_recognized() {
        let mut srg = cnn(3);
        assert!(recognize(&mut srg) > 0);
        assert!(srg
            .nodes()
            .all(|n| n.phase == Phase::VisionEncode && n.modality == Modality::Vision));
        // Stages 0..=2 assigned.
        let stages: std::collections::BTreeSet<_> = srg
            .nodes()
            .filter_map(|n| n.attrs.get("pipeline_stage").cloned())
            .collect();
        assert_eq!(stages.len(), 3);
    }

    #[test]
    fn single_conv_not_enough() {
        let mut srg = cnn(1);
        assert_eq!(recognize(&mut srg), 0);
    }

    #[test]
    fn stage_numbers_follow_topology() {
        let mut srg = cnn(2);
        recognize(&mut srg);
        // The relu after the second conv must be stage 1.
        let last_relu = srg.nodes().filter(|n| n.op == OpKind::Relu).last().unwrap();
        assert_eq!(last_relu.attrs["pipeline_stage"], "1");
    }
}
