//! A learned semantic lexicon (§5, "beyond hand-crafted rules").
//!
//! The built-in recognizers are hand-written idiom detectors; the paper
//! asks how systems like Genie could "automatically learn or infer the
//! semantic roles of operations … in novel, unseen AI architectures".
//! This module is a minimal, fully-deterministic instance: graphs are
//! embedded into a fixed feature space (operator mix, structure,
//! roofline statistics) and classified by nearest centroid against
//! labeled exemplars. New exemplars extend the lexicon at runtime — no
//! recompilation, no new recognizer code.

use genie_srg::stats::GraphStats;
use genie_srg::{OpKind, Srg};
use serde::{Deserialize, Serialize};

/// Dimension of the feature embedding.
pub const FEATURES: usize = 12;

/// Embed a graph as a fixed-length feature vector. Features are
/// scale-normalized (fractions and ratios, not counts) so a 2-layer toy
/// and a 28-layer production model of the same family land close
/// together.
pub fn features(srg: &Srg) -> [f64; FEATURES] {
    let stats = GraphStats::of(srg).unwrap_or_else(|_| GraphStats {
        nodes: 0,
        edges: 0,
        depth: 0,
        max_width: 0,
        parallelism_ratio: 0.0,
        total_flops: 0.0,
        total_bytes: 0.0,
        operational_intensity: None,
        weight_bytes: 0.0,
        stateful_bytes: 0.0,
        activation_bytes: 0.0,
        phases: Vec::new(),
        modalities: Vec::new(),
        sparse_ops: 0,
        dense_ops: 0,
        kv_appends: 0,
    });
    let n = srg.node_count().max(1) as f64;
    let count =
        |f: &dyn Fn(&OpKind) -> bool| srg.nodes().filter(|node| f(&node.op)).count() as f64 / n;
    let total_state = (stats.weight_bytes + stats.stateful_bytes + stats.activation_bytes).max(1.0);
    [
        count(&|op| matches!(op, OpKind::MatMul | OpKind::Attention)),
        count(&|op| matches!(op, OpKind::Conv2d | OpKind::Pool2d)),
        count(&|op| *op == OpKind::EmbeddingGather),
        count(&|op| *op == OpKind::KvAppend),
        count(&|op| matches!(op, OpKind::Concat | OpKind::Slice)),
        count(&|op| op.is_source()),
        stats.parallelism_ratio.min(4.0) / 4.0,
        (stats.depth as f64 / n).min(1.0),
        stats.operational_intensity.unwrap_or(0.0).min(1024.0) / 1024.0,
        stats.weight_bytes / total_state,
        stats.stateful_bytes / total_state,
        (stats.modalities.len() as f64).min(4.0) / 4.0,
    ]
}

/// A labeled exemplar in the lexicon.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Exemplar {
    /// Class label (e.g. `"llm"`, `"vision"`).
    pub label: String,
    /// Feature centroid for this class.
    pub centroid: [f64; FEATURES],
    /// Number of graphs averaged into the centroid.
    pub support: usize,
}

/// A trainable nearest-centroid lexicon.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LearnedLexicon {
    exemplars: Vec<Exemplar>,
}

impl LearnedLexicon {
    /// Empty lexicon.
    pub fn new() -> Self {
        LearnedLexicon::default()
    }

    /// Number of known classes.
    pub fn classes(&self) -> usize {
        self.exemplars.len()
    }

    /// Add a labeled graph, creating or refining that label's centroid
    /// (running mean).
    pub fn learn(&mut self, label: &str, srg: &Srg) {
        let x = features(srg);
        match self.exemplars.iter_mut().find(|e| e.label == label) {
            Some(e) => {
                let k = e.support as f64;
                for (c, v) in e.centroid.iter_mut().zip(x) {
                    *c = (*c * k + v) / (k + 1.0);
                }
                e.support += 1;
            }
            None => self.exemplars.push(Exemplar {
                label: label.to_string(),
                centroid: x,
                support: 1,
            }),
        }
    }

    /// Classify a graph: the nearest centroid's label and the distance.
    /// `None` when the lexicon is empty.
    pub fn classify(&self, srg: &Srg) -> Option<(&str, f64)> {
        let x = features(srg);
        self.exemplars
            .iter()
            .map(|e| {
                let d2: f64 = e
                    .centroid
                    .iter()
                    .zip(x)
                    .map(|(c, v)| (c - v) * (c - v))
                    .sum();
                (e.label.as_str(), d2.sqrt())
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }

    /// Distances to every class centroid, nearest first.
    pub fn distances(&self, srg: &Srg) -> Vec<(&str, f64)> {
        let x = features(srg);
        let mut dists: Vec<(&str, f64)> = self
            .exemplars
            .iter()
            .map(|e| {
                let d2: f64 = e
                    .centroid
                    .iter()
                    .zip(x)
                    .map(|(c, v)| (c - v) * (c - v))
                    .sum();
                (e.label.as_str(), d2.sqrt())
            })
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        dists
    }

    /// Classify with a confidence margin: `None` unless the best class
    /// beats the runner-up by `margin` (absolute distance). The paper's
    /// adoption story needs the learned path to *abstain* on genuinely
    /// novel architectures rather than guess.
    pub fn classify_confident(&self, srg: &Srg, margin: f64) -> Option<(&str, f64)> {
        let dists = self.distances(srg);
        match dists.as_slice() {
            [] => None,
            [only] => Some(*only),
            [best, second, ..] => {
                if second.1 - best.1 >= margin {
                    Some(*best)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::ElemType;

    fn mlp_graph(layers: usize) -> Srg {
        let ctx = CaptureCtx::new("mlp");
        let mut x = ctx.input("x", [1, 8], ElemType::F32, None);
        for i in 0..layers {
            let w = ctx.parameter(&format!("w{i}"), [8, 8], ElemType::F32, None);
            x = x.matmul(&w).relu();
        }
        x.mark_output();
        ctx.finish().srg
    }

    fn conv_graph(stages: usize) -> Srg {
        let ctx = CaptureCtx::new("cnn");
        let mut x = ctx.input("img", [1, 3, 8, 8], ElemType::F32, None);
        for i in 0..stages {
            let cin = if i == 0 { 3 } else { 4 };
            let w = ctx.parameter(&format!("w{i}"), [4, cin, 3, 3], ElemType::F32, None);
            let b = ctx.parameter(&format!("b{i}"), [4], ElemType::F32, None);
            x = x.conv2d(&w, &b, 1, 1).relu();
        }
        x.mark_output();
        ctx.finish().srg
    }

    #[test]
    fn learns_and_separates_families() {
        let mut lex = LearnedLexicon::new();
        lex.learn("mlp", &mlp_graph(2));
        lex.learn("mlp", &mlp_graph(4));
        lex.learn("cnn", &conv_graph(2));
        lex.learn("cnn", &conv_graph(3));
        assert_eq!(lex.classes(), 2);

        // Unseen depths classify correctly.
        assert_eq!(lex.classify(&mlp_graph(6)).unwrap().0, "mlp");
        assert_eq!(lex.classify(&conv_graph(5)).unwrap().0, "cnn");
    }

    #[test]
    fn centroid_is_running_mean() {
        let mut lex = LearnedLexicon::new();
        lex.learn("mlp", &mlp_graph(2));
        let c1 = lex.exemplars[0].centroid;
        lex.learn("mlp", &mlp_graph(2));
        // Same graph twice: centroid unchanged, support grows.
        assert_eq!(lex.exemplars[0].centroid, c1);
        assert_eq!(lex.exemplars[0].support, 2);
    }

    #[test]
    fn abstains_without_confidence() {
        let mut lex = LearnedLexicon::new();
        lex.learn("mlp", &mlp_graph(3));
        lex.learn("cnn", &conv_graph(3));
        // A graph mixing both families sits between centroids: with a
        // high margin the lexicon must abstain.
        let ctx = CaptureCtx::new("hybrid");
        let img = ctx.input("img", [1, 3, 8, 8], ElemType::F32, None);
        let w = ctx.parameter("w", [4, 3, 3, 3], ElemType::F32, None);
        let b = ctx.parameter("b", [4], ElemType::F32, None);
        let feat = img.conv2d(&w, &b, 1, 1).relu().global_avg_pool();
        let m = ctx.parameter("m", [4, 4], ElemType::F32, None);
        feat.matmul(&m).mark_output();
        let hybrid = ctx.finish().srg;
        // Set the margin just above the hybrid's actual best/runner-up
        // gap: the lexicon must abstain there, and classify just below.
        let d = lex.distances(&hybrid);
        let gap = d[1].1 - d[0].1;
        assert!(lex.classify_confident(&hybrid, gap + 1e-6).is_none());
        assert!(lex.classify_confident(&hybrid, gap - 1e-6).is_some());
    }

    #[test]
    fn empty_lexicon_abstains() {
        let lex = LearnedLexicon::new();
        assert!(lex.classify(&mlp_graph(1)).is_none());
        assert!(lex.classify_confident(&mlp_graph(1), 0.1).is_none());
    }

    #[test]
    fn features_are_scale_invariant_within_family() {
        let shallow = features(&mlp_graph(2));
        let deep = features(&mlp_graph(12));
        let d: f64 = shallow
            .iter()
            .zip(deep)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(d < 0.4, "same family must embed nearby, got {d}");
    }
}
