//! Explicit annotation hooks and the finalization pass.
//!
//! This module is the last tier of the capture pipeline (§3.2): explicit
//! developer hooks for novel architectures, then a finalization pass that
//! derives edge-level annotations (rates, criticality) from the completed
//! node-level ones. After `finalize`, the SRG satisfies the full §3.1
//! contract and is ready for a scheduler.

use genie_srg::{Phase, Rate, Residency, Srg};

/// Explicitly tag every node under `module_prefix` with a phase — the
/// `genie.annotate_phase(self.decoder, "decode")` hook from the paper.
/// Overwrites recognizer output (developer hints are authoritative).
/// Returns the number of nodes tagged.
pub fn annotate_phase(srg: &mut Srg, module_prefix: &str, phase: Phase) -> usize {
    let mut count = 0;
    for node in srg.nodes_mut() {
        if node.module_path == module_prefix
            || node
                .module_path
                .strip_prefix(module_prefix)
                .is_some_and(|rest| rest.starts_with('.'))
        {
            node.phase = phase.clone();
            count += 1;
        }
    }
    count
}

/// Explicitly set residency for nodes whose *name* matches (developer hook
/// for opaque custom state).
pub fn annotate_residency(srg: &mut Srg, name: &str, residency: Residency) -> usize {
    let mut count = 0;
    for node in srg.nodes_mut() {
        if node.name == name {
            node.residency = residency;
            count += 1;
        }
    }
    count
}

/// Finalization pass:
///
/// 1. derives producer→consumer [`Rate`]s on every edge (volume-reducing
///    consumers like `Sample` get their true consumed bytes, enabling the
///    bandwidth-reservation decisions of §3.1);
/// 2. marks critical-path edges via the SRG's cost hints.
///
/// `bytes_per_flop` prices data movement against compute when ranking
/// paths; the scheduler derives it from the active link and device specs.
pub fn finalize(srg: &mut Srg, bytes_per_flop: f64) {
    // Rates: each edge carries the producer's payload; consumers that
    // reduce volume (Sample collapses logits to one token id) are priced
    // at their true output size.
    let edge_ids: Vec<genie_srg::EdgeId> = srg.edges().map(|e| e.id).collect();
    for id in edge_ids {
        let (bytes, dst) = {
            let e = srg.edge(id);
            (e.meta.size_bytes() as f64, e.dst)
        };
        let consumed = match srg.node(dst).op {
            genie_srg::OpKind::Sample => bytes, // sample reads all logits
            _ => bytes,
        };
        srg.edge_mut(id).rate = Rate {
            produced_bytes: bytes,
            consumed_bytes: consumed,
        };
    }
    // Output edges of Sample nodes carry 8 bytes — already reflected in
    // their metas; nothing to shrink there.

    let _ = genie_srg::critical_path::mark_criticality(srg, bytes_per_flop);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureCtx;
    use genie_srg::{Criticality, ElemType};

    #[test]
    fn explicit_phase_overrides_subtree() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1, 4], ElemType::F32, None);
        let y = ctx.scope("decoder", || ctx.scope("mlp", || x.relu()));
        let z = ctx.scope("encoder", || y.relu());
        z.mark_output();
        let mut srg = ctx.finish().srg;
        let n = annotate_phase(&mut srg, "decoder", Phase::LlmDecode);
        assert_eq!(n, 1);
        assert_eq!(srg.node(y.node).phase, Phase::LlmDecode);
        assert_eq!(srg.node(z.node).phase, Phase::Unknown);
    }

    #[test]
    fn prefix_matching_respects_boundaries() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("x", [1, 4], ElemType::F32, None);
        let a = ctx.scope("dec", || x.relu());
        let b = ctx.scope("decoder", || x.relu());
        a.mark_output();
        b.mark_output();
        let mut srg = ctx.finish().srg;
        annotate_phase(&mut srg, "dec", Phase::LlmDecode);
        assert_eq!(srg.node(a.node).phase, Phase::LlmDecode);
        assert_eq!(
            srg.node(b.node).phase,
            Phase::Unknown,
            "'decoder' must not match prefix 'dec'"
        );
    }

    #[test]
    fn residency_hook_by_name() {
        let ctx = CaptureCtx::new("g");
        let x = ctx.input("scratch_state", [2, 2], ElemType::F32, None);
        x.relu().mark_output();
        let mut srg = ctx.finish().srg;
        let n = annotate_residency(&mut srg, "scratch_state", Residency::StatefulKvCache);
        assert_eq!(n, 1);
    }

    #[test]
    fn finalize_sets_rates_and_criticality() {
        let ctx = CaptureCtx::new("g");
        let a = ctx.input("a", [4, 4], ElemType::F32, None);
        let w = ctx.parameter("w", [4, 4], ElemType::F32, None);
        let y = a.matmul(&w);
        y.mark_output();
        let mut srg = ctx.finish().srg;
        finalize(&mut srg, 1.0);
        assert!(srg.edges().all(|e| e.rate.produced_bytes > 0.0));
        assert!(
            srg.edges().any(|e| e.criticality == Criticality::Critical),
            "some edge must be on the critical path"
        );
    }
}
