//! # genie-cluster — hardware substrate description
//!
//! Static and dynamic descriptions of a disaggregated accelerator pool:
//!
//! - [`GpuSpec`]: per-accelerator roofline parameters (peak FLOP/s, memory
//!   bandwidth, capacity) with presets matching the paper's A100-80GB
//!   testbed and a heterogeneous fleet for §3.6 experiments;
//! - [`NicSpec`]: NIC capabilities (RDMA, GPUDirect) determining whether a
//!   path can be zero-copy (§3.4);
//! - [`Topology`]: hosts, devices, and links — the `cluster_state` input to
//!   `schedule(srg, cluster_state, policy)`;
//! - [`ClusterState`]: live memory accounting, per-device work queues, the
//!   resident-object directory (weights, KV caches pinned remotely), and
//!   background congestion used by dynamic-recomputation policies.
//!
//! ```
//! use genie_cluster::{Topology, ClusterState};
//!
//! let topo = Topology::paper_testbed();
//! let mut state = ClusterState::new();
//! let dev = topo.devices()[0].id;
//! state.alloc(&topo, dev, 12 << 30).unwrap(); // pin 12 GB of weights
//! assert!(state.mem_free(&topo, dev) > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gpu;
pub mod nic;
pub mod state;
pub mod topology;

pub use gpu::{GpuClass, GpuSpec, GIB};
pub use nic::NicSpec;
pub use state::{ClusterState, ResidentObject, StateError};
pub use topology::{DevId, Device, Host, HostId, Link, Topology};
