//! Network interface specifications.

use serde::{Deserialize, Serialize};

/// Static description of a NIC. Genie's architecture supports commodity
/// clients (no RNIC) talking to RNIC-equipped disaggregated servers; when
/// both ends support RDMA and the server supports GPUDirect, the datapath
/// is NIC-to-GPU zero-copy (§3.4).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Marketing name, e.g. `"CX-6 25GbE"`.
    pub name: String,
    /// Line rate in bits/s.
    pub bandwidth_bps: f64,
    /// Whether the NIC supports RDMA (RoCE/InfiniBand).
    pub rdma: bool,
    /// Whether the NIC+host support GPUDirect DMA into device memory.
    pub gpudirect: bool,
}

impl NicSpec {
    /// Commodity 25 GbE NIC without RDMA — the paper's client NIC.
    pub fn commodity_25g() -> Self {
        NicSpec {
            name: "25GbE".into(),
            bandwidth_bps: 25e9,
            rdma: false,
            gpudirect: false,
        }
    }

    /// RDMA-capable 25 GbE NIC.
    pub fn rnic_25g() -> Self {
        NicSpec {
            name: "CX-6 25GbE".into(),
            bandwidth_bps: 25e9,
            rdma: true,
            gpudirect: true,
        }
    }

    /// RDMA-capable 100 GbE NIC with GPUDirect — the disaggregated-server
    /// NIC.
    pub fn rnic_100g() -> Self {
        NicSpec {
            name: "CX-7 100GbE".into(),
            bandwidth_bps: 100e9,
            rdma: true,
            gpudirect: true,
        }
    }

    /// Line rate in bytes/s.
    pub fn bandwidth_bytes(&self) -> f64 {
        self.bandwidth_bps / 8.0
    }

    /// Whether a flow between `self` and `peer` can use a zero-copy RDMA
    /// path end to end.
    pub fn zero_copy_with(&self, peer: &NicSpec) -> bool {
        self.rdma && peer.rdma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversion() {
        assert_eq!(NicSpec::commodity_25g().bandwidth_bytes(), 25e9 / 8.0);
    }

    #[test]
    fn zero_copy_requires_both_ends() {
        let client = NicSpec::commodity_25g();
        let server = NicSpec::rnic_100g();
        assert!(!client.zero_copy_with(&server));
        assert!(NicSpec::rnic_25g().zero_copy_with(&server));
    }
}
