//! Cluster topology: hosts, devices, and the links between them.

use crate::gpu::GpuSpec;
use crate::nic::NicSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies a host (server or client machine) in the topology.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifies a device (GPU) in the topology. Matches
/// `genie_srg::DeviceId` numbering: the scheduler copies these values into
/// node bindings.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct DevId(pub u32);

impl std::fmt::Display for DevId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A host machine with a NIC and zero or more accelerators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Id within the topology.
    pub id: HostId,
    /// Human-readable name.
    pub name: String,
    /// This host's NIC.
    pub nic: NicSpec,
    /// Devices installed in this host (ids index into
    /// [`Topology::devices`]).
    pub devices: Vec<DevId>,
}

/// A device entry: the spec plus its owning host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Id within the topology.
    pub id: DevId,
    /// Hardware specification.
    pub spec: GpuSpec,
    /// Owning host.
    pub host: HostId,
}

/// A bidirectional network link between two hosts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: HostId,
    /// Other endpoint.
    pub b: HostId,
    /// Usable bandwidth in bits/s.
    pub bandwidth_bps: f64,
    /// One-way propagation latency in seconds.
    pub latency_s: f64,
}

impl Link {
    /// Usable bandwidth in bytes/s.
    pub fn bandwidth_bytes(&self) -> f64 {
        self.bandwidth_bps / 8.0
    }
}

/// The static cluster description handed to the scheduler as part of
/// `cluster_state` (§3.3).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    hosts: Vec<Host>,
    devices: Vec<Device>,
    links: Vec<Link>,
    /// Direct-link index for fast path lookup.
    #[serde(skip)]
    link_index: BTreeMap<(HostId, HostId), usize>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a host with the given NIC; returns its id.
    pub fn add_host(&mut self, name: impl Into<String>, nic: NicSpec) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host {
            id,
            name: name.into(),
            nic,
            devices: Vec::new(),
        });
        id
    }

    /// Install a device into `host`; returns its id.
    pub fn add_device(&mut self, host: HostId, spec: GpuSpec) -> DevId {
        let id = DevId(self.devices.len() as u32);
        self.devices.push(Device { id, spec, host });
        self.hosts[host.0 as usize].devices.push(id);
        id
    }

    /// Connect two hosts with a link.
    pub fn add_link(&mut self, a: HostId, b: HostId, bandwidth_bps: f64, latency_s: f64) {
        let idx = self.links.len();
        self.links.push(Link {
            a,
            b,
            bandwidth_bps,
            latency_s,
        });
        self.link_index.insert(key(a, b), idx);
    }

    /// Host accessor.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Device accessor.
    pub fn device(&self, id: DevId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The direct link between two hosts, if any. (Rebuilds the index after
    /// deserialization, where the skip field is empty.)
    pub fn link_between(&self, a: HostId, b: HostId) -> Option<&Link> {
        if self.link_index.is_empty() && !self.links.is_empty() {
            return self.links.iter().find(|l| key(l.a, l.b) == key(a, b));
        }
        self.link_index.get(&key(a, b)).map(|&i| &self.links[i])
    }

    /// Whether two devices are in the same host (transfers stay on PCIe /
    /// NVLink and are modeled as free relative to network costs).
    pub fn same_host(&self, a: DevId, b: DevId) -> bool {
        self.device(a).host == self.device(b).host
    }

    /// The host where application (client) code runs is conventionally the
    /// first host added.
    pub fn client_host(&self) -> HostId {
        HostId(0)
    }

    /// The paper's evaluation setup (§4): a CPU-only client connected to an
    /// A100-80GB server through a 25 Gbps link, ~250 µs one-way latency.
    pub fn paper_testbed() -> Topology {
        let mut t = Topology::new();
        let client = t.add_host("client", NicSpec::commodity_25g());
        let server = t.add_host("gpu-server", NicSpec::rnic_100g());
        t.add_device(server, GpuSpec::a100_80gb());
        t.add_link(client, server, 25e9, 250e-6);
        t
    }

    /// A single-rack pool: one client plus `n` A100 servers behind one
    /// switch (modeled as pairwise links of equal bandwidth).
    pub fn rack(n: usize, bandwidth_bps: f64) -> Topology {
        let mut t = Topology::new();
        let client = t.add_host("client", NicSpec::commodity_25g());
        let mut servers = Vec::new();
        for i in 0..n {
            let s = t.add_host(format!("gpu-server-{i}"), NicSpec::rnic_100g());
            t.add_device(s, GpuSpec::a100_80gb());
            t.add_link(client, s, bandwidth_bps, 250e-6);
            servers.push(s);
        }
        for i in 0..servers.len() {
            for j in i + 1..servers.len() {
                t.add_link(servers[i], servers[j], bandwidth_bps * 4.0, 100e-6);
            }
        }
        t
    }

    /// A heterogeneous fleet for §3.6 experiments: flagship, bandwidth-
    /// optimized, and inference-class devices across `n` hosts each.
    pub fn heterogeneous_fleet(n: usize, bandwidth_bps: f64) -> Topology {
        let mut t = Topology::new();
        let client = t.add_host("client", NicSpec::commodity_25g());
        for (class, spec) in [
            ("flagship", GpuSpec::h100()),
            ("bwopt", GpuSpec::bandwidth_optimized()),
            ("infer", GpuSpec::l4()),
        ] {
            for i in 0..n {
                let s = t.add_host(format!("{class}-{i}"), NicSpec::rnic_100g());
                t.add_device(s, spec.clone());
                t.add_link(client, s, bandwidth_bps, 250e-6);
            }
        }
        t
    }
}

fn key(a: HostId, b: HostId) -> (HostId, HostId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.hosts().len(), 2);
        assert_eq!(t.devices().len(), 1);
        let link = t.link_between(HostId(0), HostId(1)).unwrap();
        assert_eq!(link.bandwidth_bps, 25e9);
        assert_eq!(link.bandwidth_bytes(), 25e9 / 8.0);
        assert!(!t.host(t.client_host()).nic.rdma);
    }

    #[test]
    fn link_lookup_is_symmetric() {
        let t = Topology::paper_testbed();
        assert!(t.link_between(HostId(1), HostId(0)).is_some());
        assert!(t.link_between(HostId(0), HostId(0)).is_none());
    }

    #[test]
    fn rack_connectivity() {
        let t = Topology::rack(3, 25e9);
        assert_eq!(t.devices().len(), 3);
        // Client to each server.
        for i in 1..=3 {
            assert!(t.link_between(HostId(0), HostId(i)).is_some());
        }
        // Server-to-server links are fatter.
        let ss = t.link_between(HostId(1), HostId(2)).unwrap();
        assert_eq!(ss.bandwidth_bps, 100e9);
    }

    #[test]
    fn same_host_detection() {
        let mut t = Topology::new();
        let h = t.add_host("dual-gpu", NicSpec::rnic_100g());
        let a = t.add_device(h, GpuSpec::a100_80gb());
        let b = t.add_device(h, GpuSpec::a100_80gb());
        let h2 = t.add_host("other", NicSpec::rnic_100g());
        let c = t.add_device(h2, GpuSpec::a100_80gb());
        assert!(t.same_host(a, b));
        assert!(!t.same_host(a, c));
    }

    #[test]
    fn heterogeneous_fleet_has_three_classes() {
        let t = Topology::heterogeneous_fleet(2, 25e9);
        assert_eq!(t.devices().len(), 6);
        let classes: std::collections::BTreeSet<_> =
            t.devices().iter().map(|d| d.spec.class).collect();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn serde_roundtrip_rebuilds_lookup() {
        let t = Topology::paper_testbed();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert!(back.link_between(HostId(0), HostId(1)).is_some());
    }
}
