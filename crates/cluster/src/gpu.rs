//! Accelerator specifications.
//!
//! A [`GpuSpec`] carries exactly the parameters the cost model needs for a
//! roofline estimate: peak compute, memory bandwidth, and capacity. Presets
//! reproduce the paper's testbed (A100-80GB) plus a heterogeneous fleet for
//! the §3.6 global-scheduling experiments.

use serde::{Deserialize, Serialize};

/// Class of accelerator, used by the global scheduler's heterogeneous
/// placement (§3.6 "Where").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GpuClass {
    /// Flagship training/inference part (A100/H100 class).
    Flagship,
    /// Memory-bandwidth-optimized part.
    BandwidthOptimized,
    /// Cost-efficient inference part (L4 class).
    Inference,
}

/// Static description of one accelerator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-80GB"`.
    pub name: String,
    /// Device class for affinity-based placement.
    pub class: GpuClass,
    /// Peak dense FP16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak device-memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Fixed per-kernel launch overhead in seconds.
    pub kernel_launch_overhead: f64,
}

impl GpuSpec {
    /// NVIDIA A100-80GB (the paper's evaluation GPU): 312 TFLOP/s FP16,
    /// 2.0 TB/s HBM2e, 80 GB.
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "A100-80GB".into(),
            class: GpuClass::Flagship,
            peak_flops: 312e12,
            mem_bandwidth: 2.0e12,
            mem_capacity: 80 * GIB,
            kernel_launch_overhead: 5e-6,
        }
    }

    /// NVIDIA H100-SXM: 990 TFLOP/s FP16, 3.35 TB/s HBM3, 80 GB.
    pub fn h100() -> Self {
        GpuSpec {
            name: "H100-SXM".into(),
            class: GpuClass::Flagship,
            peak_flops: 990e12,
            mem_bandwidth: 3.35e12,
            mem_capacity: 80 * GIB,
            kernel_launch_overhead: 5e-6,
        }
    }

    /// NVIDIA L4: 121 TFLOP/s FP16, 300 GB/s, 24 GB — the cheap inference
    /// tier.
    pub fn l4() -> Self {
        GpuSpec {
            name: "L4".into(),
            class: GpuClass::Inference,
            peak_flops: 121e12,
            mem_bandwidth: 300e9,
            mem_capacity: 24 * GIB,
            kernel_launch_overhead: 5e-6,
        }
    }

    /// A hypothetical bandwidth-optimized part: modest compute, extreme
    /// memory bandwidth — the accelerator §3.6 would route
    /// vision-transformer jobs to.
    pub fn bandwidth_optimized() -> Self {
        GpuSpec {
            name: "BW-OPT".into(),
            class: GpuClass::BandwidthOptimized,
            peak_flops: 150e12,
            mem_bandwidth: 4.0e12,
            mem_capacity: 48 * GIB,
            kernel_launch_overhead: 5e-6,
        }
    }

    /// Roofline execution-time estimate for a kernel of `flops` floating
    /// point operations touching `bytes` of device memory: the max of the
    /// compute time and the memory time, plus launch overhead.
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        let compute = flops / self.peak_flops;
        let memory = bytes / self.mem_bandwidth;
        self.kernel_launch_overhead + compute.max(memory)
    }

    /// The operational intensity (FLOP/byte) at which this device flips
    /// from memory-bound to compute-bound.
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.mem_bandwidth
    }
}

/// One gibibyte.
pub const GIB: u64 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_datasheet() {
        let g = GpuSpec::a100_80gb();
        assert_eq!(g.mem_capacity, 80 * GIB);
        assert!((g.ridge_point() - 156.0).abs() < 1.0);
    }

    #[test]
    fn kernel_time_is_rooflined() {
        let g = GpuSpec::a100_80gb();
        // Heavily compute-bound: 312 TFLOP at peak = 1 s.
        let t = g.kernel_time(312e12, 1.0);
        assert!((t - 1.0).abs() < 1e-3);
        // Heavily memory-bound: 2 TB at peak bandwidth = 1 s.
        let t = g.kernel_time(1.0, 2.0e12);
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    fn launch_overhead_floors_small_kernels() {
        let g = GpuSpec::a100_80gb();
        assert!(g.kernel_time(0.0, 0.0) >= 5e-6);
    }

    #[test]
    fn decode_step_is_memory_bound_on_a100() {
        // GPT-J decode: ~12 GB of weights read per token, ~12 GFLOP.
        let g = GpuSpec::a100_80gb();
        let compute = 12e9 / g.peak_flops;
        let memory = 12e9 * 2.0 / g.mem_bandwidth * 1.0; // fp16 weights ≈ 12 GB
        assert!(memory > compute, "decode must be memory-bound");
    }

    #[test]
    fn heterogeneous_fleet_differs() {
        assert!(GpuSpec::h100().peak_flops > GpuSpec::a100_80gb().peak_flops);
        assert!(GpuSpec::bandwidth_optimized().mem_bandwidth > GpuSpec::h100().mem_bandwidth);
        assert_eq!(GpuSpec::l4().class, GpuClass::Inference);
    }
}
