//! Live cluster state — the mutable view the scheduler consumes alongside
//! the static [`Topology`](crate::topology::Topology).

use crate::topology::{DevId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors from state mutations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// Allocation would exceed the device's memory capacity.
    OutOfMemory {
        /// The device that ran out.
        device: DevId,
        /// Bytes requested.
        requested: u64,
        /// Bytes free before the request.
        free: u64,
    },
    /// Attempted to free or look up an object that is not resident.
    UnknownObject {
        /// The missing object's key.
        key: u64,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::OutOfMemory {
                device,
                requested,
                free,
            } => write!(
                f,
                "device {device} out of memory: requested {requested} B, free {free} B"
            ),
            StateError::UnknownObject { key } => write!(f, "unknown resident object {key}"),
        }
    }
}

impl std::error::Error for StateError {}

/// A remotely-resident object (weight blob, KV cache, …) tracked by key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResidentObject {
    /// Caller-chosen key (Genie uses handle ids).
    pub key: u64,
    /// Device holding the bytes.
    pub device: DevId,
    /// Current size in bytes (KV caches grow).
    pub bytes: u64,
    /// Epoch for lineage-based invalidation (§3.5).
    pub epoch: u64,
}

/// Mutable, schedulable cluster state: per-device memory accounting,
/// queued-work estimates, and the resident-object directory.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClusterState {
    mem_used: BTreeMap<DevId, u64>,
    /// Seconds of queued work per device — the scheduler's queuing-delay
    /// input.
    queue_s: BTreeMap<DevId, f64>,
    residents: BTreeMap<u64, ResidentObject>,
    /// Background congestion per host-pair in [0, 1): fraction of link
    /// bandwidth consumed by other tenants. Keyed by unordered host ids.
    congestion: BTreeMap<(u32, u32), f64>,
    /// Injected bandwidth derate per host-pair in (0, 1]: the fault
    /// layer's degradation signal, multiplied into edge costs by the
    /// scheduler. Keyed by unordered host ids.
    #[serde(default)]
    link_derate: BTreeMap<(u32, u32), f64>,
    /// Host pairs currently severed by a partition or outage. The
    /// scheduler must not place transfers across them.
    #[serde(default)]
    partitioned: std::collections::BTreeSet<(u32, u32)>,
}

impl ClusterState {
    /// Fresh state with nothing allocated.
    pub fn new() -> Self {
        ClusterState::default()
    }

    /// Bytes used on a device.
    pub fn mem_used(&self, dev: DevId) -> u64 {
        self.mem_used.get(&dev).copied().unwrap_or(0)
    }

    /// Bytes free on a device given its spec in `topo`.
    pub fn mem_free(&self, topo: &Topology, dev: DevId) -> u64 {
        topo.device(dev)
            .spec
            .mem_capacity
            .saturating_sub(self.mem_used(dev))
    }

    /// Reserve device memory; fails if it would exceed capacity.
    pub fn alloc(&mut self, topo: &Topology, dev: DevId, bytes: u64) -> Result<(), StateError> {
        let free = self.mem_free(topo, dev);
        if bytes > free {
            return Err(StateError::OutOfMemory {
                device: dev,
                requested: bytes,
                free,
            });
        }
        *self.mem_used.entry(dev).or_insert(0) += bytes;
        Ok(())
    }

    /// Release device memory (saturating).
    pub fn release(&mut self, dev: DevId, bytes: u64) {
        let used = self.mem_used.entry(dev).or_insert(0);
        *used = used.saturating_sub(bytes);
    }

    /// Seconds of work queued on a device.
    pub fn queue_seconds(&self, dev: DevId) -> f64 {
        self.queue_s.get(&dev).copied().unwrap_or(0.0)
    }

    /// Add queued work to a device.
    pub fn enqueue_work(&mut self, dev: DevId, seconds: f64) {
        *self.queue_s.entry(dev).or_insert(0.0) += seconds;
    }

    /// Drain queued work from a device (saturating at zero).
    pub fn drain_work(&mut self, dev: DevId, seconds: f64) {
        let q = self.queue_s.entry(dev).or_insert(0.0);
        *q = (*q - seconds).max(0.0);
    }

    /// Register a resident object, charging its memory.
    pub fn register_resident(
        &mut self,
        topo: &Topology,
        obj: ResidentObject,
    ) -> Result<(), StateError> {
        self.alloc(topo, obj.device, obj.bytes)?;
        self.residents.insert(obj.key, obj);
        Ok(())
    }

    /// Look up a resident object by key.
    pub fn resident(&self, key: u64) -> Option<&ResidentObject> {
        self.residents.get(&key)
    }

    /// Grow a resident object (KV-cache append), charging the delta.
    pub fn grow_resident(
        &mut self,
        topo: &Topology,
        key: u64,
        delta: u64,
    ) -> Result<(), StateError> {
        let dev = self
            .residents
            .get(&key)
            .ok_or(StateError::UnknownObject { key })?
            .device;
        self.alloc(topo, dev, delta)?;
        self.residents.get_mut(&key).expect("checked above").bytes += delta;
        Ok(())
    }

    /// Evict a resident object, releasing its memory. Returns the object.
    pub fn evict_resident(&mut self, key: u64) -> Result<ResidentObject, StateError> {
        let obj = self
            .residents
            .remove(&key)
            .ok_or(StateError::UnknownObject { key })?;
        self.release(obj.device, obj.bytes);
        Ok(obj)
    }

    /// Evict every object resident on a failed device, bumping nothing —
    /// lineage recovery decides replays. Returns the evicted objects.
    pub fn evict_device(&mut self, dev: DevId) -> Vec<ResidentObject> {
        let keys: Vec<u64> = self
            .residents
            .values()
            .filter(|o| o.device == dev)
            .map(|o| o.key)
            .collect();
        keys.into_iter()
            .filter_map(|k| self.evict_resident(k).ok())
            .collect()
    }

    /// All resident objects on a device.
    pub fn residents_on(&self, dev: DevId) -> Vec<&ResidentObject> {
        self.residents
            .values()
            .filter(|o| o.device == dev)
            .collect()
    }

    /// Set background congestion on the path between two hosts (fraction of
    /// bandwidth consumed by other traffic, in `[0, 1)`).
    pub fn set_congestion(&mut self, a: u32, b: u32, fraction: f64) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.congestion.insert(key, fraction.clamp(0.0, 0.99));
    }

    /// Background congestion between two hosts.
    pub fn congestion(&self, a: u32, b: u32) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.congestion.get(&key).copied().unwrap_or(0.0)
    }

    /// Record an injected bandwidth derate on the path between two hosts
    /// (fraction of line rate remaining, in `(0, 1]`; `1.0` clears it).
    pub fn set_link_derate(&mut self, a: u32, b: u32, factor: f64) {
        let key = if a <= b { (a, b) } else { (b, a) };
        let factor = factor.clamp(f64::MIN_POSITIVE, 1.0);
        if factor >= 1.0 {
            self.link_derate.remove(&key);
        } else {
            self.link_derate.insert(key, factor);
        }
    }

    /// Remaining bandwidth fraction between two hosts (1.0 = undegraded).
    pub fn link_derate(&self, a: u32, b: u32) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_derate.get(&key).copied().unwrap_or(1.0)
    }

    /// Mark or clear a partition between two hosts.
    pub fn set_partitioned(&mut self, a: u32, b: u32, severed: bool) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if severed {
            self.partitioned.insert(key);
        } else {
            self.partitioned.remove(&key);
        }
    }

    /// Whether the path between two hosts is currently severed.
    pub fn is_partitioned(&self, a: u32, b: u32) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.partitioned.contains(&key)
    }

    /// Whether any partition is active anywhere in the cluster.
    pub fn has_partitions(&self) -> bool {
        !self.partitioned.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuSpec;
    use crate::nic::NicSpec;

    fn topo() -> (Topology, DevId) {
        let mut t = Topology::new();
        let h = t.add_host("s", NicSpec::rnic_100g());
        let d = t.add_device(h, GpuSpec::a100_80gb());
        (t, d)
    }

    #[test]
    fn alloc_and_release() {
        let (t, d) = topo();
        let mut s = ClusterState::new();
        s.alloc(&t, d, 1000).unwrap();
        assert_eq!(s.mem_used(d), 1000);
        s.release(d, 400);
        assert_eq!(s.mem_used(d), 600);
        s.release(d, 10_000); // saturates
        assert_eq!(s.mem_used(d), 0);
    }

    #[test]
    fn oom_rejected() {
        let (t, d) = topo();
        let mut s = ClusterState::new();
        let cap = t.device(d).spec.mem_capacity;
        let err = s.alloc(&t, d, cap + 1).unwrap_err();
        assert!(matches!(err, StateError::OutOfMemory { .. }));
        assert!(err.to_string().contains("out of memory"));
        // State unchanged after failure.
        assert_eq!(s.mem_used(d), 0);
    }

    #[test]
    fn resident_lifecycle() {
        let (t, d) = topo();
        let mut s = ClusterState::new();
        s.register_resident(
            &t,
            ResidentObject {
                key: 7,
                device: d,
                bytes: 500,
                epoch: 1,
            },
        )
        .unwrap();
        assert_eq!(s.resident(7).unwrap().bytes, 500);
        s.grow_resident(&t, 7, 100).unwrap();
        assert_eq!(s.resident(7).unwrap().bytes, 600);
        assert_eq!(s.mem_used(d), 600);
        let evicted = s.evict_resident(7).unwrap();
        assert_eq!(evicted.bytes, 600);
        assert_eq!(s.mem_used(d), 0);
        assert!(s.resident(7).is_none());
    }

    #[test]
    fn unknown_object_errors() {
        let (t, _) = topo();
        let mut s = ClusterState::new();
        assert!(matches!(
            s.grow_resident(&t, 99, 1),
            Err(StateError::UnknownObject { key: 99 })
        ));
        assert!(s.evict_resident(99).is_err());
    }

    #[test]
    fn device_eviction_clears_all() {
        let (t, d) = topo();
        let mut s = ClusterState::new();
        for key in 0..3 {
            s.register_resident(
                &t,
                ResidentObject {
                    key,
                    device: d,
                    bytes: 100,
                    epoch: 1,
                },
            )
            .unwrap();
        }
        let evicted = s.evict_device(d);
        assert_eq!(evicted.len(), 3);
        assert_eq!(s.mem_used(d), 0);
        assert!(s.residents_on(d).is_empty());
    }

    #[test]
    fn queue_accounting() {
        let (_, d) = topo();
        let mut s = ClusterState::new();
        s.enqueue_work(d, 1.5);
        s.enqueue_work(d, 0.5);
        assert_eq!(s.queue_seconds(d), 2.0);
        s.drain_work(d, 3.0);
        assert_eq!(s.queue_seconds(d), 0.0);
    }

    #[test]
    fn link_faults_are_symmetric_and_clearable() {
        let mut s = ClusterState::new();
        s.set_link_derate(2, 0, 0.25);
        assert_eq!(s.link_derate(0, 2), 0.25);
        assert_eq!(s.link_derate(2, 0), 0.25);
        assert_eq!(s.link_derate(0, 1), 1.0, "untouched pairs undegraded");
        s.set_link_derate(2, 0, 1.0);
        assert_eq!(s.link_derate(0, 2), 1.0, "full rate clears the entry");
        s.set_link_derate(0, 1, -3.0);
        assert!(s.link_derate(0, 1) > 0.0, "derate clamps above zero");

        assert!(!s.has_partitions());
        s.set_partitioned(1, 0, true);
        assert!(s.is_partitioned(0, 1));
        assert!(s.has_partitions());
        s.set_partitioned(0, 1, false);
        assert!(!s.is_partitioned(0, 1));
    }

    #[test]
    fn congestion_is_symmetric_and_clamped() {
        let mut s = ClusterState::new();
        s.set_congestion(3, 1, 0.5);
        assert_eq!(s.congestion(1, 3), 0.5);
        assert_eq!(s.congestion(3, 1), 0.5);
        s.set_congestion(0, 1, 2.0);
        assert_eq!(s.congestion(0, 1), 0.99);
        assert_eq!(s.congestion(5, 6), 0.0);
    }
}
