//! Property tests for the generic fixpoint solver: termination within
//! the fuel budget, convergence to a genuine fixpoint, agreement of
//! forward reachability with brute-force closure, and agreement of the
//! packaged liveness analysis with per-step brute-force recomputation.

use genie_analysis::dataflow::{solve, Direction, FlowGraph, SetLattice, SrgFlow};
use genie_analysis::live_value_sets;
use genie_srg::{ElemType, Node, NodeId, OpKind, Srg, TensorMeta};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a random DAG: `n` nodes, candidate edges reduced mod `n` and
/// kept only when they point from a lower to a higher index — so every
/// generated graph is acyclic by construction.
fn random_dag(n: usize, raw_edges: &[(usize, usize)]) -> Srg {
    let mut g = Srg::new("prop");
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.add_node(Node::new(NodeId::new(0), OpKind::Relu, format!("n{i}"))))
        .collect();
    for &(a, b) in raw_edges {
        let (a, b) = (a % n, b % n);
        if a < b {
            g.connect(nodes[a], nodes[b], TensorMeta::new([4], ElemType::F32));
        }
    }
    g
}

/// The transfer used throughout: out(v) = in(v) ∪ {node(v)} — forward
/// ancestors, backward descendants. Monotone over the powerset lattice.
fn reach(flow: &SrgFlow, v: usize, input: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
    let mut s = input.clone();
    s.insert(flow.node_at(v));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The worklist drains on every random DAG, in both directions,
    /// within the documented fuel budget.
    #[test]
    fn solver_terminates_and_converges(
        n in 1usize..10,
        raw in proptest::collection::vec((0usize..16, 0usize..16), 0..24),
    ) {
        let g = random_dag(n, &raw);
        let flow = SrgFlow::new(&g).expect("built acyclic");
        let lat = SetLattice::<NodeId>::new();
        for direction in [Direction::Forward, Direction::Backward] {
            let fx = solve(&lat, &flow, direction, |v, input| reach(&flow, v, input));
            prop_assert!(fx.converged, "{direction:?} must drain its worklist");
            prop_assert!(fx.iterations <= 64 * flow.len() + 64);
        }
    }

    /// The answer is a true fixpoint of the monotone transfer: every
    /// recorded input is exactly the join of its upstream outputs, and
    /// re-evaluating the transfer on that input reproduces the output.
    #[test]
    fn solution_is_a_fixpoint(
        n in 1usize..10,
        raw in proptest::collection::vec((0usize..16, 0usize..16), 0..24),
    ) {
        let g = random_dag(n, &raw);
        let flow = SrgFlow::new(&g).expect("built acyclic");
        let lat = SetLattice::<NodeId>::new();
        for direction in [Direction::Forward, Direction::Backward] {
            let fx = solve(&lat, &flow, direction, |v, input| reach(&flow, v, input));
            for v in 0..flow.len() {
                let upstream = match direction {
                    Direction::Forward => flow.preds(v),
                    Direction::Backward => flow.succs(v),
                };
                let mut input = BTreeSet::new();
                for u in upstream {
                    input = input.union(&fx.outputs[u]).cloned().collect();
                }
                prop_assert_eq!(&fx.inputs[v], &input, "input at {} ({:?})", v, direction);
                let again = reach(&flow, v, &input);
                prop_assert_eq!(&fx.outputs[v], &again, "output at {} ({:?})", v, direction);
            }
        }
    }

    /// Forward reachability from the solver equals the brute-force
    /// ancestor closure computed by naive repeated relaxation.
    #[test]
    fn forward_reachability_matches_brute_force(
        n in 1usize..10,
        raw in proptest::collection::vec((0usize..16, 0usize..16), 0..24),
    ) {
        let g = random_dag(n, &raw);
        let flow = SrgFlow::new(&g).expect("built acyclic");
        let lat = SetLattice::<NodeId>::new();
        let fx = solve(&lat, &flow, Direction::Forward, |v, input| reach(&flow, v, input));
        prop_assert!(fx.converged);

        // Brute force: relax every edge n times — more than the longest
        // possible path, so the closure is complete.
        let len = flow.len();
        let mut anc: Vec<BTreeSet<NodeId>> = (0..len)
            .map(|v| std::iter::once(flow.node_at(v)).collect())
            .collect();
        for _ in 0..len {
            for v in 0..len {
                for p in flow.preds(v) {
                    let from = anc[p].clone();
                    anc[v].extend(from);
                }
            }
        }
        for (v, a) in anc.iter().enumerate() {
            prop_assert_eq!(&fx.outputs[v], a, "ancestors of vertex {}", v);
        }
    }

    /// The packaged liveness analysis agrees with its brute-force
    /// interval definition: node `m` is live during step `i` of the
    /// topological order iff `pos(m) <= i <= last_use(m)`, where
    /// `last_use` is the latest consumer position (or the definition
    /// itself when nothing consumes the value).
    #[test]
    fn liveness_matches_interval_brute_force(
        n in 1usize..10,
        raw in proptest::collection::vec((0usize..16, 0usize..16), 0..24),
    ) {
        let g = random_dag(n, &raw);
        let flow = SrgFlow::new(&g).expect("built acyclic");
        let live = live_value_sets(&g).expect("built acyclic");
        prop_assert_eq!(live.len(), flow.len());
        for (i, set) in live.iter().enumerate() {
            for (pos, node) in flow.order().iter().enumerate() {
                let last = g
                    .successors(*node)
                    .into_iter()
                    .filter_map(|s| flow.index_of(s))
                    .max()
                    .unwrap_or(pos)
                    .max(pos);
                let expected = pos <= i && i <= last;
                prop_assert_eq!(
                    set.contains(node),
                    expected,
                    "step {} node {:?} (pos {}, last use {})",
                    i, node, pos, last
                );
            }
        }
    }
}
