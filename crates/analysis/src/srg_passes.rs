//! SRG-level passes: semantic checks a captured graph must satisfy before
//! any scheduler may plan on it (the capture-time gate).
//!
//! Each pass is independently callable; [`run_srg_passes`] runs them all
//! (plus the graph-level GA3xx precision passes from
//! [`crate::precision_passes`]) under per-pass timing spans and returns
//! one canonical [`Report`].

use crate::diag::{timed_pass, Anchor, LintCode, LintConfig, Report};
use genie_srg::{Edge, ElemType, OpKind, Phase, Residency, Srg};

/// Run every SRG pass under `cfg` and return the merged report.
pub fn run_srg_passes(srg: &Srg, cfg: &LintConfig) -> Report {
    let mut report = Report::new(srg.name.clone());
    timed_pass("shapes", || check_shapes(srg, cfg, &mut report));
    timed_pass("dtypes", || check_dtypes(srg, cfg, &mut report));
    timed_pass("phases", || check_phases(srg, cfg, &mut report));
    timed_pass("residency", || check_residency(srg, cfg, &mut report));
    timed_pass("cost_hints", || check_cost_hints(srg, cfg, &mut report));
    timed_pass("rates", || check_rates(srg, cfg, &mut report));
    timed_pass("annotation_gaps", || {
        check_annotation_gaps(srg, cfg, &mut report)
    });
    timed_pass("precision", || {
        crate::precision_passes::check_precision_consistency(srg, cfg, &mut report)
    });
    report.finish().record_metrics()
}

fn data_inputs(srg: &Srg, node: genie_srg::NodeId) -> Vec<&Edge> {
    srg.in_edges(node).collect()
}

/// GA001 — shape propagation: every op family with known composition rules
/// gets its input `TensorMeta`s checked against each other.
pub fn check_shapes(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    for node in srg.nodes() {
        let ins = data_inputs(srg, node.id);
        let shapes: Vec<&[usize]> = ins.iter().map(|e| e.meta.shape.as_slice()).collect();
        let mut flag = |msg: String| {
            report.push(cfg, LintCode::ShapeMismatch, Anchor::Node(node.id), msg);
        };
        match &node.op {
            OpKind::MatMul => {
                if let [a, b] = shapes.as_slice() {
                    if a.len() == 2 && b.len() == 2 && a[1] != b[0] {
                        flag(format!(
                            "matmul inner dims disagree: [{},{}] x [{},{}]",
                            a[0], a[1], b[0], b[1]
                        ));
                    }
                }
            }
            OpKind::Attention => {
                if let [q, k, v] = shapes.as_slice() {
                    if k != v {
                        flag(format!("attention k {k:?} vs v {v:?}"));
                    } else if q.len() == 2 && k.len() == 2 && q[1] != k[1] {
                        flag(format!("attention model dims disagree: q {q:?} vs k {k:?}"));
                    }
                }
            }
            OpKind::KvAppend => {
                if let [cache, new] = shapes.as_slice() {
                    if cache.len() == 2 && new.len() == 2 && cache[1] != new[1] {
                        flag(format!(
                            "kv_append row width {} vs cache width {}",
                            new[1], cache[1]
                        ));
                    }
                }
            }
            OpKind::Concat => {
                let dim: usize = node
                    .attrs
                    .get("dim")
                    .and_then(|d| d.parse().ok())
                    .unwrap_or(0);
                if let [a, rest @ ..] = shapes.as_slice() {
                    for b in rest {
                        let ranks_match = a.len() == b.len() && dim < a.len();
                        let other_dims_match = ranks_match
                            && a.iter()
                                .zip(b.iter())
                                .enumerate()
                                .all(|(i, (x, y))| i == dim || x == y);
                        if !ranks_match || !other_dims_match {
                            flag(format!("concat along dim {dim}: {a:?} vs {b:?}"));
                        }
                    }
                }
            }
            OpKind::Add | OpKind::Mul => {
                // `add_bias` legitimately broadcasts a rank-1 bias over the
                // innermost dim and is marked with a "bias" attr.
                if node.attrs.contains_key("bias") {
                    if let [x, b] = shapes.as_slice() {
                        if b.len() != 1 || x.last() != b.first() {
                            flag(format!("bias {b:?} does not match innermost of {x:?}"));
                        }
                    }
                } else if let [a, b] = shapes.as_slice() {
                    if a != b {
                        flag(format!("elementwise operands {a:?} vs {b:?}"));
                    }
                }
            }
            OpKind::Conv2d if shapes.len() >= 2 => {
                let (x, w) = (shapes[0], shapes[1]);
                if x.len() == 4 && w.len() == 4 && x[1] != w[1] {
                    flag(format!(
                        "conv2d input channels {} vs weight channels {}",
                        x[1], w[1]
                    ));
                }
            }
            _ => {}
        }
    }
}

fn is_index_elem(e: ElemType) -> bool {
    matches!(e, ElemType::I64 | ElemType::I32 | ElemType::Bool)
}

/// GA002 — dtype propagation: arithmetic ops must not silently mix element
/// types (index inputs like I64 gather indices are exempt).
pub fn check_dtypes(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    for node in srg.nodes() {
        if !matches!(
            node.op,
            OpKind::MatMul
                | OpKind::Attention
                | OpKind::KvAppend
                | OpKind::Concat
                | OpKind::Add
                | OpKind::Mul
        ) {
            continue;
        }
        let elems: Vec<ElemType> = data_inputs(srg, node.id)
            .iter()
            .map(|e| e.meta.elem)
            .filter(|e| !is_index_elem(*e))
            .collect();
        if let Some(first) = elems.first() {
            if let Some(other) = elems.iter().find(|e| *e != first) {
                report.push(
                    cfg,
                    LintCode::DtypeMismatch,
                    Anchor::Node(node.id),
                    format!("{} mixes {} and {} inputs", node.op, first, other),
                );
            }
        }
    }
}

fn phase_order(p: &Phase) -> Option<u8> {
    // Only phases with a defined pipeline position participate; Unknown
    // and orthogonal phases (vision, fusion, ...) are compatible with all.
    match p {
        Phase::LlmPrefill | Phase::TrainForward => Some(0),
        Phase::LlmDecode | Phase::TrainBackward => Some(1),
        _ => None,
    }
}

fn same_family(a: &Phase, b: &Phase) -> bool {
    let llm = |p: &Phase| matches!(p, Phase::LlmPrefill | Phase::LlmDecode);
    let train = |p: &Phase| matches!(p, Phase::TrainForward | Phase::TrainBackward);
    (llm(a) && llm(b)) || (train(a) && train(b))
}

/// GA003 — phase coherence: a pipeline-earlier phase must never consume a
/// pipeline-later one (prefill cannot depend on decode; the forward pass
/// cannot depend on the backward pass).
pub fn check_phases(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    for edge in srg.edges() {
        let src = &srg.node(edge.src).phase;
        let dst = &srg.node(edge.dst).phase;
        if !same_family(src, dst) {
            continue;
        }
        if let (Some(a), Some(b)) = (phase_order(src), phase_order(dst)) {
            if a > b {
                report.push(
                    cfg,
                    LintCode::PhaseIncoherence,
                    Anchor::Edge(edge.id),
                    format!("{} node {} feeds {} node {}", src, edge.src, dst, edge.dst),
                );
            }
        }
    }
}

/// GA004 — KV residency: a `StatefulKvCache` value may only flow into
/// `KvAppend` (growing it) or `Attention` (reading it). Anything else
/// treats session state as a throwaway activation.
pub fn check_residency(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    for node in srg.nodes() {
        if node.residency != Residency::StatefulKvCache {
            continue;
        }
        for edge in srg.out_edges(node.id) {
            let consumer = srg.node(edge.dst);
            if !matches!(consumer.op, OpKind::KvAppend | OpKind::Attention) {
                report.push(
                    cfg,
                    LintCode::KvResidencyViolation,
                    Anchor::Edge(edge.id),
                    format!(
                        "kv cache {} consumed by {} node {}",
                        node.id, consumer.op, edge.dst
                    ),
                );
            }
        }
    }
}

/// GA005 / GA006 — cost-hint sanity: compute-heavy ops must carry FLOPs
/// (GA005, deny), and a matmul's FLOPs must agree with its shapes within
/// 4× (GA006, warn).
pub fn check_cost_hints(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    for node in srg.nodes() {
        let heavy = matches!(node.op, OpKind::MatMul | OpKind::Attention | OpKind::Conv2d);
        if !heavy {
            continue;
        }
        if node.cost.flops <= 0.0 {
            report.push(
                cfg,
                LintCode::ZeroFlopCompute,
                Anchor::Node(node.id),
                format!("{} node {} has zero FLOPs", node.op, node.id),
            );
            continue;
        }
        if node.op == OpKind::MatMul {
            let shapes: Vec<Vec<usize>> = data_inputs(srg, node.id)
                .iter()
                .map(|e| e.meta.shape.clone())
                .collect();
            if let [a, b] = shapes.as_slice() {
                if a.len() == 2 && b.len() == 2 && a[1] == b[0] {
                    let expected = 2.0 * a[0] as f64 * a[1] as f64 * b[1] as f64;
                    let ratio = node.cost.flops / expected.max(1.0);
                    if !(0.25..=4.0).contains(&ratio) {
                        report.push(
                            cfg,
                            LintCode::CostHintInconsistent,
                            Anchor::Node(node.id),
                            format!(
                                "matmul {} claims {:.3e} FLOPs, shapes imply {expected:.3e}",
                                node.id, node.cost.flops
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// GA007 — rate sanity: the consumer side of an edge cannot read more
/// bytes than the producer side emits.
pub fn check_rates(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    for edge in srg.edges() {
        let r = edge.rate;
        if r.produced_bytes > 0.0 && r.consumed_bytes > r.produced_bytes * 1.001 {
            report.push(
                cfg,
                LintCode::RateInconsistent,
                Anchor::Edge(edge.id),
                format!(
                    "edge {} consumes {:.0} B but produces {:.0} B",
                    edge.id, r.consumed_bytes, r.produced_bytes
                ),
            );
        }
    }
}

/// GA008 — annotation completeness: a device-work compute node with
/// neither a phase nor a module path is invisible to every semantic
/// optimization the paper motivates.
pub fn check_annotation_gaps(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    for node in srg.nodes() {
        if node.op.is_source() || node.op.is_metadata_only() {
            continue;
        }
        if node.phase == Phase::Unknown && node.module_path.is_empty() {
            report.push(
                cfg,
                LintCode::AnnotationGap,
                Anchor::Node(node.id),
                format!(
                    "{} node {} has no phase and no module path",
                    node.op, node.id
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_srg::{CostHints, Node, NodeId, Rate, TensorMeta};

    fn meta(shape: &[usize]) -> TensorMeta {
        TensorMeta::new(shape.to_vec(), ElemType::F32)
    }

    fn lint(srg: &Srg) -> Report {
        run_srg_passes(srg, &LintConfig::new())
    }

    #[test]
    fn ga001_matmul_inner_dim_mismatch() {
        let mut g = Srg::new("bad-matmul");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
        let mm = g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "mm")
                .with_cost(CostHints::new(1e6, 1.0, 1.0)),
        );
        g.connect(a, mm, meta(&[2, 3]));
        g.connect(b, mm, meta(&[5, 7]));
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::ShapeMismatch).len(), 1, "{r}");
        assert!(r.has_deny());
    }

    #[test]
    fn ga001_concat_axis_mismatch() {
        let mut g = Srg::new("bad-concat");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Concat, "cat").with_attr("dim", "1"));
        g.connect(a, c, meta(&[2, 4]));
        g.connect(b, c, meta(&[3, 4])); // dim-0 differs, concat is along 1
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::ShapeMismatch).len(), 1, "{r}");
    }

    #[test]
    fn ga002_dtype_mix_detected() {
        let mut g = Srg::new("bad-dtype");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
        let add = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "add"));
        g.connect(a, add, meta(&[4]));
        g.connect(b, add, TensorMeta::new([4], ElemType::F16));
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::DtypeMismatch).len(), 1, "{r}");
    }

    #[test]
    fn ga003_decode_feeding_prefill() {
        let mut g = Srg::new("bad-phase");
        let a =
            g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a").with_phase(Phase::LlmDecode));
        let b =
            g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b").with_phase(Phase::LlmPrefill));
        g.connect(a, b, meta(&[4]));
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::PhaseIncoherence).len(), 1, "{r}");

        // The legal direction is clean.
        let mut ok = Srg::new("ok-phase");
        let a = ok
            .add_node(Node::new(NodeId::new(0), OpKind::Input, "a").with_phase(Phase::LlmPrefill));
        let b =
            ok.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b").with_phase(Phase::LlmDecode));
        ok.connect(a, b, meta(&[4]));
        assert!(lint(&ok).with_code(LintCode::PhaseIncoherence).is_empty());
    }

    #[test]
    fn ga003_backward_feeding_forward() {
        let mut g = Srg::new("bad-train");
        let a = g.add_node(
            Node::new(NodeId::new(0), OpKind::Input, "grad").with_phase(Phase::TrainBackward),
        );
        let b = g.add_node(
            Node::new(NodeId::new(0), OpKind::Relu, "fwd").with_phase(Phase::TrainForward),
        );
        g.connect(a, b, meta(&[4]));
        assert_eq!(lint(&g).with_code(LintCode::PhaseIncoherence).len(), 1);
    }

    #[test]
    fn ga004_kv_cache_into_wrong_consumer() {
        let mut g = Srg::new("bad-kv");
        let kv = g.add_node(
            Node::new(NodeId::new(0), OpKind::Input, "kv")
                .with_residency(Residency::StatefulKvCache),
        );
        let relu = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "relu"));
        g.connect(kv, relu, meta(&[2, 4]));
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::KvResidencyViolation).len(), 1, "{r}");

        // The blessed consumers are clean.
        let mut ok = Srg::new("ok-kv");
        let kv = ok.add_node(
            Node::new(NodeId::new(0), OpKind::Input, "kv")
                .with_residency(Residency::StatefulKvCache),
        );
        let row = ok.add_node(Node::new(NodeId::new(0), OpKind::Input, "row"));
        let app = ok.add_node(Node::new(NodeId::new(0), OpKind::KvAppend, "app"));
        ok.connect(kv, app, meta(&[2, 4]));
        ok.connect(row, app, meta(&[1, 4]));
        assert!(lint(&ok)
            .with_code(LintCode::KvResidencyViolation)
            .is_empty());
    }

    #[test]
    fn ga005_zero_flop_matmul() {
        let mut g = Srg::new("zero-flops");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
        let mm = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
        g.connect(a, mm, meta(&[2, 3]));
        g.connect(b, mm, meta(&[3, 4]));
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::ZeroFlopCompute).len(), 1, "{r}");
        // Zero-FLOP gathers / kv_appends are legitimate and not flagged.
        assert!(r.with_code(LintCode::CostHintInconsistent).is_empty());
    }

    #[test]
    fn ga006_cost_hint_off_by_10x() {
        let mut g = Srg::new("bad-cost");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
        let mm = g.add_node(
            Node::new(NodeId::new(0), OpKind::MatMul, "mm").with_cost(CostHints::new(
                2.0 * 2.0 * 3.0 * 4.0 * 10.0,
                1.0,
                1.0,
            )),
        );
        g.connect(a, mm, meta(&[2, 3]));
        g.connect(b, mm, meta(&[3, 4]));
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::CostHintInconsistent).len(), 1, "{r}");
        assert!(!r.has_deny(), "GA006 is warn-level by default");
    }

    #[test]
    fn ga007_consumer_exceeds_producer() {
        let mut g = Srg::new("bad-rate");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        let e = g.connect(a, b, meta(&[4]));
        g.edge_mut(e).rate = Rate {
            produced_bytes: 16.0,
            consumed_bytes: 64.0,
        };
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::RateInconsistent).len(), 1, "{r}");
    }

    #[test]
    fn ga008_unannotated_compute_is_info() {
        let mut g = Srg::new("bare");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        g.connect(a, b, meta(&[4]));
        let r = lint(&g);
        assert_eq!(r.with_code(LintCode::AnnotationGap).len(), 1, "{r}");
        assert!(!r.has_deny(), "info never gates");

        // A module path (or phase) closes the gap.
        let mut ok = Srg::new("scoped");
        let a = ok.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = ok.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b").with_module_path("mlp"));
        ok.connect(a, b, meta(&[4]));
        assert!(lint(&ok).with_code(LintCode::AnnotationGap).is_empty());
    }

    #[test]
    fn allow_suppresses_a_deny() {
        let mut g = Srg::new("bad-kv");
        let kv = g.add_node(
            Node::new(NodeId::new(0), OpKind::Input, "kv")
                .with_residency(Residency::StatefulKvCache),
        );
        let relu = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "relu"));
        g.connect(kv, relu, meta(&[2, 4]));
        let cfg = LintConfig::new().allow(LintCode::KvResidencyViolation);
        let r = run_srg_passes(&g, &cfg);
        assert!(r.with_code(LintCode::KvResidencyViolation).is_empty());
    }
}
