//! The diagnostics framework: lint codes, severities, anchors, and the
//! deterministic [`Report`] the passes accumulate into.

use genie_cluster::DevId;
use genie_srg::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Every lint the engine knows, numbered like compiler diagnostics:
/// `GA0xx` are SRG-level (checkable on a captured graph alone), `GA1xx`
/// are plan-level (need placements, transfers, and cluster state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// GA001 — an op's input tensor shapes are mutually inconsistent
    /// (matmul inner dims, concat axes, elementwise operands, KV dims).
    ShapeMismatch,
    /// GA002 — an op mixes element types across its data inputs.
    DtypeMismatch,
    /// GA003 — a phase-incoherent dependency: an earlier pipeline phase
    /// consumes a later one (prefill depending on decode, forward on
    /// backward).
    PhaseIncoherence,
    /// GA004 — a `StatefulKvCache` value flows into a consumer that is
    /// neither a KV append nor an attention op, breaking the stateful
    /// co-location contract.
    KvResidencyViolation,
    /// GA005 — a compute-heavy op (matmul / attention / conv) carries a
    /// zero-FLOP cost hint, blinding every cost-model decision downstream.
    ZeroFlopCompute,
    /// GA006 — a cost hint disagrees with what the tensor shapes imply by
    /// more than 4×.
    CostHintInconsistent,
    /// GA007 — an edge's rate annotation claims the consumer reads more
    /// bytes than the producer emits.
    RateInconsistent,
    /// GA008 — a compute node reached the scheduler with no phase and no
    /// module path: semantics were lost in translation.
    AnnotationGap,
    /// GA101 — a plan's pinned + transient bytes exceed a device's free
    /// memory.
    DeviceOvercommit,
    /// GA102 — a transfer's endpoints disagree with the placements of the
    /// edge it claims to realize.
    TransferEndpointMismatch,
    /// GA103 — a persistent weight or embedding shard ships by value to a
    /// device instead of by resident-object handle.
    WeightReshippedByValue,
    /// GA104 — a stateful KV cache crosses a location boundary, forcing a
    /// per-step re-ship of growing state.
    KvCacheNotColocated,
}

impl LintCode {
    /// Every code, in report order.
    pub const ALL: [LintCode; 12] = [
        LintCode::ShapeMismatch,
        LintCode::DtypeMismatch,
        LintCode::PhaseIncoherence,
        LintCode::KvResidencyViolation,
        LintCode::ZeroFlopCompute,
        LintCode::CostHintInconsistent,
        LintCode::RateInconsistent,
        LintCode::AnnotationGap,
        LintCode::DeviceOvercommit,
        LintCode::TransferEndpointMismatch,
        LintCode::WeightReshippedByValue,
        LintCode::KvCacheNotColocated,
    ];

    /// The stable `GAnnn` identifier.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::ShapeMismatch => "GA001",
            LintCode::DtypeMismatch => "GA002",
            LintCode::PhaseIncoherence => "GA003",
            LintCode::KvResidencyViolation => "GA004",
            LintCode::ZeroFlopCompute => "GA005",
            LintCode::CostHintInconsistent => "GA006",
            LintCode::RateInconsistent => "GA007",
            LintCode::AnnotationGap => "GA008",
            LintCode::DeviceOvercommit => "GA101",
            LintCode::TransferEndpointMismatch => "GA102",
            LintCode::WeightReshippedByValue => "GA103",
            LintCode::KvCacheNotColocated => "GA104",
        }
    }

    /// Parse a `GAnnn` identifier back to a code.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.code() == s)
    }

    /// The severity a fresh [`LintConfig`] assigns this code.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::ShapeMismatch
            | LintCode::DtypeMismatch
            | LintCode::PhaseIncoherence
            | LintCode::KvResidencyViolation
            | LintCode::ZeroFlopCompute
            | LintCode::DeviceOvercommit
            | LintCode::TransferEndpointMismatch => Severity::Deny,
            LintCode::CostHintInconsistent
            | LintCode::RateInconsistent
            | LintCode::WeightReshippedByValue
            | LintCode::KvCacheNotColocated => Severity::Warn,
            LintCode::AnnotationGap => Severity::Info,
        }
    }

    /// Whether the code lints plans (GA1xx) rather than raw SRGs (GA0xx).
    pub fn is_plan_level(self) -> bool {
        matches!(
            self,
            LintCode::DeviceOvercommit
                | LintCode::TransferEndpointMismatch
                | LintCode::WeightReshippedByValue
                | LintCode::KvCacheNotColocated
        )
    }

    /// One-line statement of the invariant this code protects.
    pub fn invariant(self) -> &'static str {
        match self {
            LintCode::ShapeMismatch => "every op's input shapes must compose",
            LintCode::DtypeMismatch => "arithmetic ops must not mix element types",
            LintCode::PhaseIncoherence => "earlier phases never depend on later ones",
            LintCode::KvResidencyViolation => {
                "KV-cache state flows only through kv_append and attention"
            }
            LintCode::ZeroFlopCompute => "compute-heavy ops must carry FLOP estimates",
            LintCode::CostHintInconsistent => "cost hints must agree with tensor shapes",
            LintCode::RateInconsistent => "a consumer cannot read more bytes than produced",
            LintCode::AnnotationGap => "compute nodes should carry phase or module context",
            LintCode::DeviceOvercommit => "per-device demand must fit free device memory",
            LintCode::TransferEndpointMismatch => "transfers must match node placements",
            LintCode::WeightReshippedByValue => "persistent weights ship once, then by handle",
            LintCode::KvCacheNotColocated => "decode-state KV caches stay with their consumer",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl Serialize for LintCode {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.code())
    }
}

impl<'de> Deserialize<'de> for LintCode {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        LintCode::parse(&s)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown lint code {s}")))
    }
}

/// How a diagnostic is treated.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Informational; never blocks anything.
    Info,
    /// Suspicious but not necessarily wrong.
    #[default]
    Warn,
    /// A semantic contract violation; gates fail on these.
    Deny,
}

impl Severity {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a diagnostic points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Anchor {
    /// The graph as a whole.
    Graph,
    /// A node.
    Node(NodeId),
    /// An edge.
    Edge(EdgeId),
    /// A device.
    Device(DevId),
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Graph => write!(f, "graph"),
            Anchor::Node(n) => write!(f, "{n}"),
            Anchor::Edge(e) => write!(f, "{e}"),
            Anchor::Device(d) => write!(f, "{d}"),
        }
    }
}

/// One finding: a code, its effective severity, where, and why.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity after config overrides.
    pub severity: Severity,
    /// What it points at.
    pub anchor: Anchor,
    /// Human-readable explanation with concrete values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.code, self.severity, self.anchor, self.message
        )
    }
}

/// Per-graph lint policy: severity overrides and outright suppression.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LintConfig {
    overrides: std::collections::BTreeMap<String, Severity>,
    allowed: std::collections::BTreeSet<String>,
}

impl LintConfig {
    /// The default policy: every code at its built-in severity.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Suppress a code entirely (diagnostics are dropped, like
    /// `#[allow(...)]`).
    pub fn allow(mut self, code: LintCode) -> Self {
        self.allowed.insert(code.code().to_string());
        self
    }

    /// Escalate a code to [`Severity::Deny`].
    pub fn deny(mut self, code: LintCode) -> Self {
        self.overrides
            .insert(code.code().to_string(), Severity::Deny);
        self
    }

    /// Demote a code to [`Severity::Warn`].
    pub fn warn(mut self, code: LintCode) -> Self {
        self.overrides
            .insert(code.code().to_string(), Severity::Warn);
        self
    }

    /// Whether a code is suppressed.
    pub fn is_allowed(&self, code: LintCode) -> bool {
        self.allowed.contains(code.code())
    }

    /// The effective severity of a code under this config.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .get(code.code())
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

/// The outcome of a lint run over one graph or plan: diagnostics in a
/// deterministic order plus enough context to render them.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Name of the graph or plan that was linted.
    pub subject: String,
    /// All findings, sorted by (severity desc, code, anchor, message).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Record a finding unless the config suppresses its code; the
    /// config's severity override is applied here.
    pub fn push(&mut self, cfg: &LintConfig, code: LintCode, anchor: Anchor, message: String) {
        if cfg.is_allowed(code) {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity: cfg.severity(code),
            anchor,
            message,
        });
    }

    /// Sort into the canonical order. Idempotent; passes call this once
    /// after accumulating.
    pub fn finish(mut self) -> Self {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.anchor.cmp(&b.anchor))
                .then(a.message.cmp(&b.message))
        });
        self
    }

    /// Append another report's diagnostics (re-sorting canonically).
    pub fn merge(mut self, other: Report) -> Self {
        self.diagnostics.extend(other.diagnostics);
        self.finish()
    }

    /// No findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any deny-level finding is present (the gate condition).
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Render the human-readable multi-line form.
    pub fn render(&self) -> String {
        let mut out = format!(
            "lint report for {}: {} deny, {} warn, {} info\n",
            self.subject,
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The machine-readable form written by `lint_report`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("report serializes")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for code in LintCode::ALL {
            assert!(seen.insert(code.code()), "duplicate {code}");
            assert_eq!(LintCode::parse(code.code()), Some(code));
            assert!(!code.invariant().is_empty());
        }
        assert_eq!(LintCode::parse("GA999"), None);
    }

    #[test]
    fn severity_ordering_gates_on_deny() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn config_overrides_and_allows() {
        let cfg = LintConfig::new()
            .warn(LintCode::DeviceOvercommit)
            .deny(LintCode::KvCacheNotColocated)
            .allow(LintCode::AnnotationGap);
        assert_eq!(cfg.severity(LintCode::DeviceOvercommit), Severity::Warn);
        assert_eq!(cfg.severity(LintCode::KvCacheNotColocated), Severity::Deny);
        assert_eq!(cfg.severity(LintCode::ShapeMismatch), Severity::Deny);
        assert!(cfg.is_allowed(LintCode::AnnotationGap));

        let mut r = Report::new("g");
        r.push(
            &cfg,
            LintCode::AnnotationGap,
            Anchor::Graph,
            "hidden".into(),
        );
        assert!(r.is_empty(), "allowed codes are dropped");
        r.push(
            &cfg,
            LintCode::DeviceOvercommit,
            Anchor::Device(DevId(0)),
            "x".into(),
        );
        assert_eq!(r.diagnostics[0].severity, Severity::Warn);
    }

    #[test]
    fn report_orders_deny_first_and_renders() {
        let cfg = LintConfig::new();
        let mut r = Report::new("g");
        r.push(
            &cfg,
            LintCode::RateInconsistent,
            Anchor::Edge(EdgeId::new(3)),
            "rate".into(),
        );
        r.push(
            &cfg,
            LintCode::ShapeMismatch,
            Anchor::Node(NodeId::new(1)),
            "shape".into(),
        );
        let r = r.finish();
        assert_eq!(r.diagnostics[0].code, LintCode::ShapeMismatch);
        assert!(r.has_deny());
        assert_eq!(r.count(Severity::Warn), 1);
        let text = r.render();
        assert!(text.contains("GA001[deny] n1: shape"), "{text}");
        assert!(text.contains("1 deny, 1 warn"), "{text}");
    }

    #[test]
    fn report_json_roundtrip() {
        let cfg = LintConfig::new();
        let mut r = Report::new("g");
        r.push(
            &cfg,
            LintCode::DeviceOvercommit,
            Anchor::Device(DevId(2)),
            "needs 10 B, free 5 B".into(),
        );
        let json = r.to_json();
        assert_eq!(json["diagnostics"][0]["code"], "GA101");
        let back: Report = serde_json::from_value(json).unwrap();
        assert_eq!(back, r);
    }
}
