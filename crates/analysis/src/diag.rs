//! The diagnostics framework: lint codes, severities, anchors, and the
//! deterministic [`Report`] the passes accumulate into.

use genie_cluster::DevId;
use genie_srg::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Every lint the engine knows, numbered like compiler diagnostics:
/// `GA0xx` are SRG-level (checkable on a captured graph alone), `GA1xx`
/// are plan-level (need placements, transfers, and cluster state),
/// `GA2xx` are schedule-timeline safety passes (liveness, transfer
/// ordering, deadlock), and `GA3xx` are precision/criticality
/// consistency passes (error-interval propagation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// GA001 — an op's input tensor shapes are mutually inconsistent
    /// (matmul inner dims, concat axes, elementwise operands, KV dims).
    ShapeMismatch,
    /// GA002 — an op mixes element types across its data inputs.
    DtypeMismatch,
    /// GA003 — a phase-incoherent dependency: an earlier pipeline phase
    /// consumes a later one (prefill depending on decode, forward on
    /// backward).
    PhaseIncoherence,
    /// GA004 — a `StatefulKvCache` value flows into a consumer that is
    /// neither a KV append nor an attention op, breaking the stateful
    /// co-location contract.
    KvResidencyViolation,
    /// GA005 — a compute-heavy op (matmul / attention / conv) carries a
    /// zero-FLOP cost hint, blinding every cost-model decision downstream.
    ZeroFlopCompute,
    /// GA006 — a cost hint disagrees with what the tensor shapes imply by
    /// more than 4×.
    CostHintInconsistent,
    /// GA007 — an edge's rate annotation claims the consumer reads more
    /// bytes than the producer emits.
    RateInconsistent,
    /// GA008 — a compute node reached the scheduler with no phase and no
    /// module path: semantics were lost in translation.
    AnnotationGap,
    /// GA101 — a plan's pinned + transient bytes exceed a device's free
    /// memory.
    DeviceOvercommit,
    /// GA102 — a transfer's endpoints disagree with the placements of the
    /// edge it claims to realize.
    TransferEndpointMismatch,
    /// GA103 — a persistent weight or embedding shard ships by value to a
    /// device instead of by resident-object handle.
    WeightReshippedByValue,
    /// GA104 — a stateful KV cache crosses a location boundary, forcing a
    /// per-step re-ship of growing state.
    KvCacheNotColocated,
    /// GA201 — a transfer is queued behind another transfer on the same
    /// channel whose consumer runs later, so FIFO delivery lands it after
    /// its own consumer's start.
    TransferOrderHazard,
    /// GA202 — the same (tensor, device) buffer is pinned more than once,
    /// double-charging device memory for one logical object.
    DoublePinnedBuffer,
    /// GA203 — the waits-for graph of node steps and channel-FIFO
    /// transfers contains a cycle: the plan deadlocks before any dynamic
    /// scheduler can help.
    TransferDependencyCycle,
    /// GA204 — the per-device participation order of blocking collectives
    /// contains a waits-for cycle across shards: two devices each block in
    /// a collective the other has not reached yet.
    CollectiveScheduleCycle,
    /// GA301 — a criticality/tolerance annotation demands a tighter
    /// numerical error bound than the scheduled kernel tier / device
    /// class statically delivers.
    CriticalityToleranceExceeded,
    /// GA302 — a node downcasts to a lossier element type on a path that
    /// feeds a `Criticality::Critical` edge.
    PrecisionLossyCriticalPath,
    /// GA303 — an op with no static error model (fused/custom kernels)
    /// makes the error interval unbounded from that point on.
    ErrorIntervalUnknown,
}

impl LintCode {
    /// Every code, in report order.
    pub const ALL: [LintCode; 19] = [
        LintCode::ShapeMismatch,
        LintCode::DtypeMismatch,
        LintCode::PhaseIncoherence,
        LintCode::KvResidencyViolation,
        LintCode::ZeroFlopCompute,
        LintCode::CostHintInconsistent,
        LintCode::RateInconsistent,
        LintCode::AnnotationGap,
        LintCode::DeviceOvercommit,
        LintCode::TransferEndpointMismatch,
        LintCode::WeightReshippedByValue,
        LintCode::KvCacheNotColocated,
        LintCode::TransferOrderHazard,
        LintCode::DoublePinnedBuffer,
        LintCode::TransferDependencyCycle,
        LintCode::CollectiveScheduleCycle,
        LintCode::CriticalityToleranceExceeded,
        LintCode::PrecisionLossyCriticalPath,
        LintCode::ErrorIntervalUnknown,
    ];

    /// The stable `GAnnn` identifier.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::ShapeMismatch => "GA001",
            LintCode::DtypeMismatch => "GA002",
            LintCode::PhaseIncoherence => "GA003",
            LintCode::KvResidencyViolation => "GA004",
            LintCode::ZeroFlopCompute => "GA005",
            LintCode::CostHintInconsistent => "GA006",
            LintCode::RateInconsistent => "GA007",
            LintCode::AnnotationGap => "GA008",
            LintCode::DeviceOvercommit => "GA101",
            LintCode::TransferEndpointMismatch => "GA102",
            LintCode::WeightReshippedByValue => "GA103",
            LintCode::KvCacheNotColocated => "GA104",
            LintCode::TransferOrderHazard => "GA201",
            LintCode::DoublePinnedBuffer => "GA202",
            LintCode::TransferDependencyCycle => "GA203",
            LintCode::CollectiveScheduleCycle => "GA204",
            LintCode::CriticalityToleranceExceeded => "GA301",
            LintCode::PrecisionLossyCriticalPath => "GA302",
            LintCode::ErrorIntervalUnknown => "GA303",
        }
    }

    /// Parse a `GAnnn` identifier back to a code.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.code() == s)
    }

    /// The severity a fresh [`LintConfig`] assigns this code.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::ShapeMismatch
            | LintCode::DtypeMismatch
            | LintCode::PhaseIncoherence
            | LintCode::KvResidencyViolation
            | LintCode::ZeroFlopCompute
            | LintCode::DeviceOvercommit
            | LintCode::TransferEndpointMismatch
            | LintCode::TransferOrderHazard
            | LintCode::DoublePinnedBuffer
            | LintCode::TransferDependencyCycle
            | LintCode::CollectiveScheduleCycle
            | LintCode::CriticalityToleranceExceeded => Severity::Deny,
            LintCode::CostHintInconsistent
            | LintCode::RateInconsistent
            | LintCode::WeightReshippedByValue
            | LintCode::KvCacheNotColocated
            | LintCode::PrecisionLossyCriticalPath => Severity::Warn,
            LintCode::AnnotationGap | LintCode::ErrorIntervalUnknown => Severity::Info,
        }
    }

    /// Whether the code needs a plan (placements, transfers, pins) rather
    /// than a raw SRG. `GA3xx` codes are graph-checkable — a plan only
    /// sharpens them with device classes — so they report `false`.
    pub fn is_plan_level(self) -> bool {
        matches!(self.family(), LintFamily::Plan | LintFamily::Schedule)
    }

    /// The pass family (`GA0xx` / `GA1xx` / `GA2xx` / `GA3xx`) this code
    /// belongs to, the granularity at which [`LintConfig`] can switch
    /// whole pass families off.
    pub fn family(self) -> LintFamily {
        match self {
            LintCode::ShapeMismatch
            | LintCode::DtypeMismatch
            | LintCode::PhaseIncoherence
            | LintCode::KvResidencyViolation
            | LintCode::ZeroFlopCompute
            | LintCode::CostHintInconsistent
            | LintCode::RateInconsistent
            | LintCode::AnnotationGap => LintFamily::Graph,
            LintCode::DeviceOvercommit
            | LintCode::TransferEndpointMismatch
            | LintCode::WeightReshippedByValue
            | LintCode::KvCacheNotColocated => LintFamily::Plan,
            LintCode::TransferOrderHazard
            | LintCode::DoublePinnedBuffer
            | LintCode::TransferDependencyCycle
            | LintCode::CollectiveScheduleCycle => LintFamily::Schedule,
            LintCode::CriticalityToleranceExceeded
            | LintCode::PrecisionLossyCriticalPath
            | LintCode::ErrorIntervalUnknown => LintFamily::Precision,
        }
    }

    /// One-line statement of the invariant this code protects.
    pub fn invariant(self) -> &'static str {
        match self {
            LintCode::ShapeMismatch => "every op's input shapes must compose",
            LintCode::DtypeMismatch => "arithmetic ops must not mix element types",
            LintCode::PhaseIncoherence => "earlier phases never depend on later ones",
            LintCode::KvResidencyViolation => {
                "KV-cache state flows only through kv_append and attention"
            }
            LintCode::ZeroFlopCompute => "compute-heavy ops must carry FLOP estimates",
            LintCode::CostHintInconsistent => "cost hints must agree with tensor shapes",
            LintCode::RateInconsistent => "a consumer cannot read more bytes than produced",
            LintCode::AnnotationGap => "compute nodes should carry phase or module context",
            LintCode::DeviceOvercommit => "per-device demand must fit free device memory",
            LintCode::TransferEndpointMismatch => "transfers must match node placements",
            LintCode::WeightReshippedByValue => "persistent weights ship once, then by handle",
            LintCode::KvCacheNotColocated => "decode-state KV caches stay with their consumer",
            LintCode::TransferOrderHazard => "a transfer must land before its consumer starts",
            LintCode::DoublePinnedBuffer => "one logical buffer pins at most once per device",
            LintCode::TransferDependencyCycle => "the waits-for graph must stay acyclic",
            LintCode::CollectiveScheduleCycle => {
                "every device must reach the plan's collectives in one consistent order"
            }
            LintCode::CriticalityToleranceExceeded => {
                "scheduled precision must meet the demanded tolerance"
            }
            LintCode::PrecisionLossyCriticalPath => {
                "critical-path data should not silently downcast"
            }
            LintCode::ErrorIntervalUnknown => "every op should have a static error model",
        }
    }
}

/// A family of lint passes, switchable as a unit via
/// [`LintConfig::disable_family`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LintFamily {
    /// `GA0xx` — SRG-level semantic checks (capture-time gate).
    Graph,
    /// `GA1xx` — plan-level placement/transfer checks.
    Plan,
    /// `GA2xx` — schedule-timeline safety (liveness watermark, transfer
    /// ordering, static deadlock).
    Schedule,
    /// `GA3xx` — precision/criticality consistency (error intervals).
    Precision,
}

impl LintFamily {
    /// Every family, in code order.
    pub const ALL: [LintFamily; 4] = [
        LintFamily::Graph,
        LintFamily::Plan,
        LintFamily::Schedule,
        LintFamily::Precision,
    ];

    /// The stable range label used in configs and reports.
    pub fn key(self) -> &'static str {
        match self {
            LintFamily::Graph => "GA0xx",
            LintFamily::Plan => "GA1xx",
            LintFamily::Schedule => "GA2xx",
            LintFamily::Precision => "GA3xx",
        }
    }

    /// Parse a range label back to a family.
    pub fn parse(s: &str) -> Option<LintFamily> {
        LintFamily::ALL.into_iter().find(|f| f.key() == s)
    }
}

impl fmt::Display for LintFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl Serialize for LintCode {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.code())
    }
}

impl<'de> Deserialize<'de> for LintCode {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        LintCode::parse(&s)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown lint code {s}")))
    }
}

/// How a diagnostic is treated.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Informational; never blocks anything.
    Info,
    /// Suspicious but not necessarily wrong.
    #[default]
    Warn,
    /// A semantic contract violation; gates fail on these.
    Deny,
}

impl Severity {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a diagnostic points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Anchor {
    /// The graph as a whole.
    Graph,
    /// A node.
    Node(NodeId),
    /// An edge.
    Edge(EdgeId),
    /// A device.
    Device(DevId),
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Graph => write!(f, "graph"),
            Anchor::Node(n) => write!(f, "{n}"),
            Anchor::Edge(e) => write!(f, "{e}"),
            Anchor::Device(d) => write!(f, "{d}"),
        }
    }
}

/// One finding: a code, its effective severity, where, and why.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity after config overrides.
    pub severity: Severity,
    /// What it points at.
    pub anchor: Anchor,
    /// Human-readable explanation with concrete values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.code, self.severity, self.anchor, self.message
        )
    }
}

/// Per-graph lint policy: severity overrides, outright suppression, and
/// whole-pass-family selection — all from one builder.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LintConfig {
    overrides: std::collections::BTreeMap<String, Severity>,
    allowed: std::collections::BTreeSet<String>,
    /// Families (by [`LintFamily::key`]) whose diagnostics are dropped
    /// wholesale. `serde(default)` keeps configs serialized before this
    /// field existed deserializable.
    #[serde(default)]
    disabled_families: std::collections::BTreeSet<String>,
}

impl LintConfig {
    /// The default policy: every family enabled, every code at its
    /// built-in severity.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Suppress a code entirely (diagnostics are dropped, like
    /// `#[allow(...)]`).
    pub fn allow(mut self, code: LintCode) -> Self {
        self.allowed.insert(code.code().to_string());
        self
    }

    /// Escalate a code to [`Severity::Deny`].
    pub fn deny(mut self, code: LintCode) -> Self {
        self.overrides
            .insert(code.code().to_string(), Severity::Deny);
        self
    }

    /// Demote a code to [`Severity::Warn`].
    pub fn warn(mut self, code: LintCode) -> Self {
        self.overrides
            .insert(code.code().to_string(), Severity::Warn);
        self
    }

    /// Override a code to an arbitrary severity.
    pub fn with_severity(mut self, code: LintCode, severity: Severity) -> Self {
        self.overrides.insert(code.code().to_string(), severity);
        self
    }

    /// Drop every diagnostic of a pass family (`GA0xx`..`GA3xx`).
    pub fn disable_family(mut self, family: LintFamily) -> Self {
        self.disabled_families.insert(family.key().to_string());
        self
    }

    /// Re-enable a previously disabled pass family.
    pub fn enable_family(mut self, family: LintFamily) -> Self {
        self.disabled_families.remove(family.key());
        self
    }

    /// Whether a whole pass family is disabled.
    pub fn is_family_disabled(&self, family: LintFamily) -> bool {
        self.disabled_families.contains(family.key())
    }

    /// Whether a code is suppressed (individually or via its family).
    pub fn is_allowed(&self, code: LintCode) -> bool {
        self.allowed.contains(code.code()) || self.is_family_disabled(code.family())
    }

    /// The effective severity of a code under this config.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .get(code.code())
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

/// The outcome of a lint run over one graph or plan: diagnostics in a
/// deterministic order plus enough context to render them.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Name of the graph or plan that was linted.
    pub subject: String,
    /// All findings, sorted by (severity desc, code, anchor, message).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Record a finding unless the config suppresses its code; the
    /// config's severity override is applied here.
    pub fn push(&mut self, cfg: &LintConfig, code: LintCode, anchor: Anchor, message: String) {
        if cfg.is_allowed(code) {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity: cfg.severity(code),
            anchor,
            message,
        });
    }

    /// [`push`](Self::push) with the effective severity capped at
    /// `cap`. Used by fallback passes that must never gate (e.g. the
    /// pessimistic GA101 sum when liveness is unavailable).
    pub fn push_capped(
        &mut self,
        cfg: &LintConfig,
        code: LintCode,
        cap: Severity,
        anchor: Anchor,
        message: String,
    ) {
        if cfg.is_allowed(code) {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            severity: cfg.severity(code).min(cap),
            anchor,
            message,
        });
    }

    /// Sort into the canonical order. Idempotent; passes call this once
    /// after accumulating.
    pub fn finish(mut self) -> Self {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.anchor.cmp(&b.anchor))
                .then(a.message.cmp(&b.message))
        });
        self
    }

    /// Append another report's diagnostics (re-sorting canonically).
    pub fn merge(mut self, other: Report) -> Self {
        self.diagnostics.extend(other.diagnostics);
        self.finish()
    }

    /// No findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any deny-level finding is present (the gate condition).
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Render the human-readable multi-line form.
    pub fn render(&self) -> String {
        let mut out = format!(
            "lint report for {}: {} deny, {} warn, {} info\n",
            self.subject,
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The machine-readable form written by `lint_report`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("report serializes")
    }

    /// Bump the `genie_lint_findings_total{code}` counter once per
    /// finding, so fleet dashboards see which lints fire how often.
    /// Returns `self` for call chaining from pass runners.
    pub fn record_metrics(self) -> Self {
        let metrics = &genie_telemetry::global().metrics;
        for d in &self.diagnostics {
            metrics
                .counter("genie_lint_findings_total", &[("code", d.code.code())])
                .inc();
        }
        self
    }
}

/// Run one lint pass under a timing span (`lint.<name>` in the `lint`
/// category), so per-pass cost shows up in trace exports.
pub(crate) fn timed_pass(name: &str, f: impl FnOnce()) {
    let _span = genie_telemetry::global().collector.span_with(
        format!("lint.{name}"),
        "lint",
        genie_telemetry::SemAttrs::new().with("pass", name),
    );
    f();
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for code in LintCode::ALL {
            assert!(seen.insert(code.code()), "duplicate {code}");
            assert_eq!(LintCode::parse(code.code()), Some(code));
            assert!(!code.invariant().is_empty());
        }
        assert_eq!(LintCode::parse("GA999"), None);
    }

    #[test]
    fn severity_ordering_gates_on_deny() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn config_overrides_and_allows() {
        let cfg = LintConfig::new()
            .warn(LintCode::DeviceOvercommit)
            .deny(LintCode::KvCacheNotColocated)
            .allow(LintCode::AnnotationGap);
        assert_eq!(cfg.severity(LintCode::DeviceOvercommit), Severity::Warn);
        assert_eq!(cfg.severity(LintCode::KvCacheNotColocated), Severity::Deny);
        assert_eq!(cfg.severity(LintCode::ShapeMismatch), Severity::Deny);
        assert!(cfg.is_allowed(LintCode::AnnotationGap));

        let mut r = Report::new("g");
        r.push(
            &cfg,
            LintCode::AnnotationGap,
            Anchor::Graph,
            "hidden".into(),
        );
        assert!(r.is_empty(), "allowed codes are dropped");
        r.push(
            &cfg,
            LintCode::DeviceOvercommit,
            Anchor::Device(DevId(0)),
            "x".into(),
        );
        assert_eq!(r.diagnostics[0].severity, Severity::Warn);
    }

    #[test]
    fn report_orders_deny_first_and_renders() {
        let cfg = LintConfig::new();
        let mut r = Report::new("g");
        r.push(
            &cfg,
            LintCode::RateInconsistent,
            Anchor::Edge(EdgeId::new(3)),
            "rate".into(),
        );
        r.push(
            &cfg,
            LintCode::ShapeMismatch,
            Anchor::Node(NodeId::new(1)),
            "shape".into(),
        );
        let r = r.finish();
        assert_eq!(r.diagnostics[0].code, LintCode::ShapeMismatch);
        assert!(r.has_deny());
        assert_eq!(r.count(Severity::Warn), 1);
        let text = r.render();
        assert!(text.contains("GA001[deny] n1: shape"), "{text}");
        assert!(text.contains("1 deny, 1 warn"), "{text}");
    }

    #[test]
    fn families_partition_the_namespace() {
        for code in LintCode::ALL {
            let fam = code.family();
            assert!(
                code.code().starts_with(&fam.key()[..3]),
                "{code} sits in family {fam}"
            );
            assert_eq!(LintFamily::parse(fam.key()), Some(fam));
        }
        assert_eq!(
            LintCode::parse("GA201"),
            Some(LintCode::TransferOrderHazard)
        );
        assert_eq!(
            LintCode::parse("GA301"),
            Some(LintCode::CriticalityToleranceExceeded)
        );
        assert!(LintCode::TransferOrderHazard.is_plan_level());
        assert!(
            !LintCode::CriticalityToleranceExceeded.is_plan_level(),
            "GA3xx is graph-checkable"
        );
    }

    #[test]
    fn family_disable_drops_diagnostics() {
        let cfg = LintConfig::new().disable_family(LintFamily::Schedule);
        assert!(cfg.is_allowed(LintCode::TransferOrderHazard));
        assert!(cfg.is_allowed(LintCode::DoublePinnedBuffer));
        assert!(!cfg.is_allowed(LintCode::DeviceOvercommit));

        let mut r = Report::new("g");
        r.push(
            &cfg,
            LintCode::TransferOrderHazard,
            Anchor::Graph,
            "hidden".into(),
        );
        assert!(r.is_empty(), "disabled family is dropped");

        let cfg = cfg.enable_family(LintFamily::Schedule);
        assert!(!cfg.is_allowed(LintCode::TransferOrderHazard));
    }

    #[test]
    fn config_serde_roundtrip_with_families() {
        let cfg = LintConfig::new()
            .disable_family(LintFamily::Precision)
            .with_severity(LintCode::TransferOrderHazard, Severity::Warn)
            .allow(LintCode::AnnotationGap);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: LintConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        assert!(back.is_family_disabled(LintFamily::Precision));
        assert_eq!(back.severity(LintCode::TransferOrderHazard), Severity::Warn);

        // Configs serialized before the family field existed still load.
        let legacy = r#"{"overrides":{},"allowed":[]}"#;
        let back: LintConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(back, LintConfig::new());
    }

    #[test]
    fn push_capped_never_exceeds_cap() {
        let cfg = LintConfig::new();
        let mut r = Report::new("g");
        r.push_capped(
            &cfg,
            LintCode::DeviceOvercommit,
            Severity::Warn,
            Anchor::Device(DevId(0)),
            "fallback estimate".into(),
        );
        assert_eq!(r.diagnostics[0].severity, Severity::Warn);
        assert!(!r.has_deny());
    }

    #[test]
    fn report_json_roundtrip() {
        let cfg = LintConfig::new();
        let mut r = Report::new("g");
        r.push(
            &cfg,
            LintCode::DeviceOvercommit,
            Anchor::Device(DevId(2)),
            "needs 10 B, free 5 B".into(),
        );
        let json = r.to_json();
        assert_eq!(json["diagnostics"][0]["code"], "GA101");
        let back: Report = serde_json::from_value(json).unwrap();
        assert_eq!(back, r);
    }
}
