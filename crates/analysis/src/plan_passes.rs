//! Plan-level passes: the post-`schedule()` gate.
//!
//! These checks need placements, transfers, and live cluster state, which
//! live in `genie-scheduler` — a crate that itself depends on this one.
//! The dependency is inverted through [`PlanFacts`]: the scheduler
//! implements the trait for its `ExecutionPlan`, and the passes here see
//! only neutral facts (devices, bytes, handles).

use crate::diag::{timed_pass, Anchor, LintCode, LintConfig, Report};
use genie_cluster::{ClusterState, DevId, Topology};
use genie_srg::{EdgeId, NodeId, Phase, Residency, Srg, TensorId};

/// One scheduled data movement, reduced to what the lints need.
/// `None` locations mean the client CPU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferFact {
    /// The SRG edge this transfer realizes.
    pub edge: EdgeId,
    /// The logical tensor moved.
    pub tensor: TensorId,
    /// Source device (`None` = client).
    pub from: Option<DevId>,
    /// Destination device (`None` = client).
    pub to: Option<DevId>,
    /// Payload bytes.
    pub bytes: u64,
    /// Whether the payload is addressed by resident-object handle.
    pub via_handle: bool,
}

/// The scheduler-neutral view of an execution plan.
pub trait PlanFacts {
    /// A name for the report subject (typically "graph@policy").
    fn subject(&self) -> String;
    /// The graph the plan executes.
    fn srg(&self) -> &Srg;
    /// Device binding of a node (`None` = client CPU).
    fn node_device(&self, node: NodeId) -> Option<DevId>;
    /// All scheduled transfers.
    fn transfers(&self) -> Vec<TransferFact>;
    /// One-time pinned uploads: (tensor, destination, bytes).
    fn pinned_uploads(&self) -> Vec<(TensorId, DevId, u64)>;
}

/// Run every plan pass under `cfg` — the GA1xx local checks, the GA2xx
/// timeline passes from [`crate::schedule_passes`], and the plan-level
/// GA3xx precision passes — and return the merged report.
pub fn run_plan_passes(
    facts: &dyn PlanFacts,
    topo: &Topology,
    state: &ClusterState,
    cfg: &LintConfig,
) -> Report {
    use crate::precision_passes::check_precision_plan;
    use crate::schedule_passes::{
        check_collective_deadlock, check_double_pinning, check_memory_watermark,
        check_transfer_deadlock, check_transfer_ordering,
    };
    let mut report = Report::new(facts.subject());
    timed_pass("memory_watermark", || {
        check_memory_watermark(facts, topo, state, cfg, &mut report)
    });
    timed_pass("transfer_endpoints", || {
        check_transfer_endpoints(facts, cfg, &mut report)
    });
    timed_pass("weight_shipping", || {
        check_weight_shipping(facts, cfg, &mut report)
    });
    timed_pass("kv_colocation", || {
        check_kv_colocation(facts, cfg, &mut report)
    });
    timed_pass("transfer_ordering", || {
        check_transfer_ordering(facts, cfg, &mut report)
    });
    timed_pass("double_pinning", || {
        check_double_pinning(facts, cfg, &mut report)
    });
    timed_pass("transfer_deadlock", || {
        check_transfer_deadlock(facts, cfg, &mut report)
    });
    timed_pass("collective_deadlock", || {
        check_collective_deadlock(facts, cfg, &mut report)
    });
    timed_pass("precision_plan", || {
        check_precision_plan(facts, topo, cfg, &mut report)
    });
    report.finish().record_metrics()
}

/// GA102 — transfer endpoints: each transfer's `from`/`to` must equal the
/// placements of the edge it claims to realize.
pub fn check_transfer_endpoints(facts: &dyn PlanFacts, cfg: &LintConfig, report: &mut Report) {
    let srg = facts.srg();
    for t in facts.transfers() {
        if t.edge.index() >= srg.edge_count() {
            report.push(
                cfg,
                LintCode::TransferEndpointMismatch,
                Anchor::Edge(t.edge),
                format!("transfer references edge {} absent from the graph", t.edge),
            );
            continue;
        }
        let edge = srg.edge(t.edge);
        let src_dev = facts.node_device(edge.src);
        let dst_dev = facts.node_device(edge.dst);
        if t.from != src_dev || t.to != dst_dev {
            let show = |d: Option<DevId>| d.map_or("client".to_string(), |d| d.to_string());
            report.push(
                cfg,
                LintCode::TransferEndpointMismatch,
                Anchor::Edge(t.edge),
                format!(
                    "transfer {}→{} disagrees with placements {}→{}",
                    show(t.from),
                    show(t.to),
                    show(src_dev),
                    show(dst_dev)
                ),
            );
        }
    }
}

/// GA103 — weight shipping: a persistent weight (or embedding shard)
/// moving to a device by value instead of by handle re-pays its full
/// footprint on every invocation.
pub fn check_weight_shipping(facts: &dyn PlanFacts, cfg: &LintConfig, report: &mut Report) {
    let srg = facts.srg();
    for t in facts.transfers() {
        if t.via_handle || t.to.is_none() || t.edge.index() >= srg.edge_count() {
            continue;
        }
        let src = srg.node(srg.edge(t.edge).src);
        if matches!(
            src.residency,
            Residency::PersistentWeight | Residency::EmbeddingTable
        ) {
            report.push(
                cfg,
                LintCode::WeightReshippedByValue,
                Anchor::Edge(t.edge),
                format!(
                    "{} B {} re-ships by value to {}",
                    t.bytes,
                    src.residency,
                    t.to.expect("checked above")
                ),
            );
        }
    }
}

/// GA104 — KV co-location: a decode-phase `StatefulKvCache` value whose
/// producer and consumer sit on different locations forces growing state
/// across the network every step.
pub fn check_kv_colocation(facts: &dyn PlanFacts, cfg: &LintConfig, report: &mut Report) {
    let srg = facts.srg();
    for edge in srg.edges() {
        let src = srg.node(edge.src);
        if src.residency != Residency::StatefulKvCache {
            continue;
        }
        let dst = srg.node(edge.dst);
        let decodeish = |p: &Phase| matches!(p, Phase::LlmDecode | Phase::Unknown);
        if !decodeish(&src.phase) && !decodeish(&dst.phase) {
            continue;
        }
        let a = facts.node_device(edge.src);
        let b = facts.node_device(edge.dst);
        if a != b {
            let show = |d: Option<DevId>| d.map_or("client".to_string(), |d| d.to_string());
            report.push(
                cfg,
                LintCode::KvCacheNotColocated,
                Anchor::Edge(edge.id),
                format!(
                    "kv cache {} on {} consumed by {} on {}",
                    edge.src,
                    show(a),
                    edge.dst,
                    show(b)
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_cluster::GpuSpec;
    use genie_cluster::NicSpec;
    use genie_srg::{ElemType, Node, OpKind, TensorMeta};
    use std::collections::BTreeMap;

    /// A hand-built plan for tests: the scheduler-free implementation of
    /// [`PlanFacts`].
    struct FakePlan {
        srg: Srg,
        placements: BTreeMap<NodeId, Option<DevId>>,
        transfers: Vec<TransferFact>,
        pinned: Vec<(TensorId, DevId, u64)>,
    }

    impl PlanFacts for FakePlan {
        fn subject(&self) -> String {
            format!("{}@fake", self.srg.name)
        }
        fn srg(&self) -> &Srg {
            &self.srg
        }
        fn node_device(&self, node: NodeId) -> Option<DevId> {
            self.placements.get(&node).copied().flatten()
        }
        fn transfers(&self) -> Vec<TransferFact> {
            self.transfers.clone()
        }
        fn pinned_uploads(&self) -> Vec<(TensorId, DevId, u64)> {
            self.pinned.clone()
        }
    }

    fn tiny_topo(mem_capacity: u64) -> (Topology, DevId) {
        let mut t = Topology::new();
        let h = t.add_host("s", NicSpec::rnic_100g());
        let spec = GpuSpec {
            mem_capacity,
            ..GpuSpec::a100_80gb()
        };
        let d = t.add_device(h, spec);
        (t, d)
    }

    fn two_node_graph() -> (Srg, NodeId, NodeId, EdgeId) {
        let mut g = Srg::new("plan-g");
        let a = g.add_node(
            Node::new(NodeId::new(0), OpKind::Parameter, "w")
                .with_residency(Residency::PersistentWeight),
        );
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
        let e = g.connect(a, b, TensorMeta::new([1024, 1024], ElemType::F32));
        (g, a, b, e)
    }

    fn lint(facts: &FakePlan, topo: &Topology, state: &ClusterState) -> Report {
        run_plan_passes(facts, topo, state, &LintConfig::new())
    }

    #[test]
    fn ga101_overcommit_detected() {
        let (topo, dev) = tiny_topo(1_000_000); // 1 MB device
        let (srg, a, b, _) = two_node_graph();
        let plan = FakePlan {
            srg,
            placements: [(a, None), (b, Some(dev))].into_iter().collect(),
            transfers: Vec::new(),
            pinned: vec![(TensorId::new(0), dev, 8_000_000)], // 8 MB of weights
        };
        let state = ClusterState::new();
        let r = lint(&plan, &topo, &state);
        let hits = r.with_code(LintCode::DeviceOvercommit);
        assert_eq!(hits.len(), 1, "{r}");
        assert!(hits[0].message.contains("only 1000000 B are free"), "{r}");
        assert!(r.has_deny());
    }

    #[test]
    fn ga101_fits_is_clean() {
        let (topo, dev) = tiny_topo(80_000_000_000);
        let (srg, a, b, _) = two_node_graph();
        let plan = FakePlan {
            srg,
            placements: [(a, None), (b, Some(dev))].into_iter().collect(),
            transfers: Vec::new(),
            pinned: vec![(TensorId::new(0), dev, 8_000_000)],
        };
        let state = ClusterState::new();
        assert!(lint(&plan, &topo, &state)
            .with_code(LintCode::DeviceOvercommit)
            .is_empty());
    }

    #[test]
    fn ga102_endpoint_mismatch_detected() {
        let (topo, dev) = tiny_topo(80_000_000_000);
        let (srg, a, b, e) = two_node_graph();
        let plan = FakePlan {
            srg,
            placements: [(a, None), (b, Some(dev))].into_iter().collect(),
            // Claims device→device although the edge runs client→device.
            transfers: vec![TransferFact {
                edge: e,
                tensor: TensorId::new(0),
                from: Some(dev),
                to: Some(dev),
                bytes: 64,
                via_handle: true,
            }],
            pinned: Vec::new(),
        };
        let state = ClusterState::new();
        let r = lint(&plan, &topo, &state);
        assert_eq!(
            r.with_code(LintCode::TransferEndpointMismatch).len(),
            1,
            "{r}"
        );
    }

    #[test]
    fn ga103_weight_by_value_detected() {
        let (topo, dev) = tiny_topo(80_000_000_000);
        let (srg, a, b, e) = two_node_graph();
        let plan = FakePlan {
            srg,
            placements: [(a, None), (b, Some(dev))].into_iter().collect(),
            transfers: vec![TransferFact {
                edge: e,
                tensor: TensorId::new(0),
                from: None,
                to: Some(dev),
                bytes: 4 << 20,
                via_handle: false, // weights must go via pinned upload
            }],
            pinned: Vec::new(),
        };
        let state = ClusterState::new();
        let r = lint(&plan, &topo, &state);
        assert_eq!(
            r.with_code(LintCode::WeightReshippedByValue).len(),
            1,
            "{r}"
        );
        assert!(!r.has_deny(), "GA103 is warn-level by default");
    }

    #[test]
    fn ga104_split_kv_detected_and_colocated_clean() {
        let mut t = Topology::new();
        let h = t.add_host("s", NicSpec::rnic_100g());
        let d0 = t.add_device(h, GpuSpec::a100_80gb());
        let d1 = t.add_device(h, GpuSpec::a100_80gb());

        let mut g = Srg::new("kv-g");
        let kv = g.add_node(
            Node::new(NodeId::new(0), OpKind::KvAppend, "kv")
                .with_residency(Residency::StatefulKvCache)
                .with_phase(Phase::LlmDecode),
        );
        let seed = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "seed"));
        let row = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "row"));
        g.connect(seed, kv, TensorMeta::new([4, 8], ElemType::F32));
        g.connect(row, kv, TensorMeta::new([1, 8], ElemType::F32));
        let attn = g.add_node(
            Node::new(NodeId::new(0), OpKind::Attention, "attn")
                .with_phase(Phase::LlmDecode)
                .with_cost(genie_srg::CostHints::new(1e6, 1.0, 1.0)),
        );
        g.connect(kv, attn, TensorMeta::new([5, 8], ElemType::F32));

        let split = FakePlan {
            srg: g.clone(),
            placements: [(kv, Some(d0)), (attn, Some(d1))].into_iter().collect(),
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        let state = ClusterState::new();
        let r = lint(&split, &t, &state);
        assert_eq!(r.with_code(LintCode::KvCacheNotColocated).len(), 1, "{r}");

        let colocated = FakePlan {
            srg: g,
            placements: [(kv, Some(d0)), (attn, Some(d0))].into_iter().collect(),
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        assert!(lint(&colocated, &t, &state)
            .with_code(LintCode::KvCacheNotColocated)
            .is_empty());
    }

    #[test]
    fn unknown_device_reported_not_panicked() {
        let (topo, _) = tiny_topo(1_000_000);
        let (srg, a, b, _) = two_node_graph();
        let ghost = DevId(42);
        let plan = FakePlan {
            srg,
            placements: [(a, None), (b, Some(ghost))].into_iter().collect(),
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        let state = ClusterState::new();
        let r = lint(&plan, &topo, &state);
        assert_eq!(
            r.with_code(LintCode::TransferEndpointMismatch).len(),
            1,
            "{r}"
        );
    }
}
