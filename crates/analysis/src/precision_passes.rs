//! Precision/criticality consistency passes (GA3xx).
//!
//! The SRG carries `Criticality` annotations and element types; the
//! scheduler picks kernel tiers and device classes. This module closes
//! the loop statically: an *error-interval abstract domain* propagates
//! a per-node worst-case relative error bound forward through the graph
//! (a [`MaxLattice`] instance of the fixpoint framework), and the
//! GA3xx passes compare what the schedule *delivers* against what the
//! annotations *demand*:
//!
//! - **GA301** `criticality-tolerance-exceeded` — a node's explicit
//!   `tolerance_rel` attribute is tighter than the delivered bound, or
//!   a `Critical` edge's source exceeds [`CRITICALITY_SLACK`] times its
//!   unit-factor baseline bound (the schedule degraded a critical
//!   value's precision, not the math itself).
//! - **GA302** `precision-lossy-critical-path` — a node downcasts its
//!   floating-point inputs to a wider-epsilon type on a path that
//!   feeds a `Critical` edge downstream.
//! - **GA303** `error-interval-unknown` — `Fused`/`CustomKernel` ops
//!   have no static error model; their (and their consumers') bounds
//!   are `+∞`.
//!
//! The bound is the classic first-order model: each element type
//! contributes a unit roundoff ε, each arithmetic op amplifies the
//! joined input error by its fan-in and adds a local term proportional
//! to its reduction length (k·ε for a length-k dot product). That
//! local term is what kernel tiers and device classes scale; the k·ε
//! worst case holds for *any* summation order, which is why the f32
//! tiers (scalar/blocked/simd/threaded — see
//! [`KernelTier::error_factor`]) all carry factor 1 while the
//! quantized int8/fp16 tiers widen it to their per-MAC error. The
//! differential
//! test in `tests/precision_consistency.rs` executes the functional
//! plane on two tiers and asserts the observed divergence sits inside
//! the static bound.

use crate::dataflow::{solve, BoolOrLattice, Direction, FlowGraph, MaxLattice, SrgFlow};
use crate::diag::{Anchor, LintCode, LintConfig, Report};
use crate::plan_passes::PlanFacts;
use genie_cluster::{GpuClass, Topology};
use genie_srg::traverse::CycleError;
use genie_srg::{Criticality, Edge, ElemType, NodeId, OpKind, Srg};
use std::collections::BTreeMap;

/// Node attribute carrying an explicit relative-tolerance demand, e.g.
/// `"tolerance_rel" = "1e-5"`. Checked by GA301.
pub const TOLERANCE_ATTR: &str = "tolerance_rel";

/// Node attribute naming the kernel tier a plan assigns to the node,
/// e.g. `"kernel_tier" = "int8"` (any [`KernelTier::label`]). Overrides
/// the flop-threshold tier in the GA3xx passes — this is how a
/// quantization-aware planner exposes its choice to GA301, and how
/// GA301 denies a quantized plan whose `tolerance_rel` the tier's error
/// model cannot meet.
pub const KERNEL_TIER_ATTR: &str = "kernel_tier";

/// How much looser than its unit-factor baseline a `Critical` value's
/// delivered bound may be before GA301 fires. Device classes today
/// scale local error by at most 2×, so a healthy heterogeneous
/// schedule always sits inside this slack.
pub const CRITICALITY_SLACK: f64 = 4.0;

/// Unit roundoff of one element type: the relative error introduced by
/// rounding a real to the nearest representable value. Integer and
/// boolean types are exact; `I8` carries its quantization step.
pub fn elem_eps(elem: ElemType) -> f64 {
    match elem {
        ElemType::F32 => (2.0f64).powi(-24),
        ElemType::F16 => (2.0f64).powi(-11),
        ElemType::Bf16 => (2.0f64).powi(-8),
        ElemType::I8 => (2.0f64).powi(-8),
        ElemType::I32 | ElemType::I64 | ElemType::Bool => 0.0,
    }
}

/// The CPU kernel tiers, mirroring the dispatch paths in `genie-tensor`
/// (`matmul` picks scalar / simd / threaded by flop count; blocked is a
/// forced-only tier; int8 and fp16 are quantized tiers a planner must
/// opt into via [`KERNEL_TIER_ATTR`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Naive triple loop.
    Scalar,
    /// Cache-blocked single-thread kernel.
    Blocked,
    /// Lane-unrolled (8-wide f32) single-thread kernel.
    Simd,
    /// Simd rows fanned across worker threads.
    Threaded,
    /// int8 storage with per-row/per-column absmax scales, i32
    /// accumulate.
    Int8,
    /// fp16 (binary16) storage round-trip, f32 accumulate.
    Fp16,
}

impl KernelTier {
    /// The tier `genie-tensor`'s dispatchers would pick for an op of
    /// this flop count (thread availability permitting). Quantized
    /// tiers are never picked by flop count — a planner has to ask for
    /// them explicitly.
    pub fn for_flops(flops: f64) -> KernelTier {
        if flops < genie_tensor::ops::MATMUL_BLOCK_MIN_FLOPS as f64 {
            KernelTier::Scalar
        } else if flops >= genie_tensor::ops::MATMUL_PAR_MIN_FLOPS as f64 {
            KernelTier::Threaded
        } else {
            KernelTier::Simd
        }
    }

    /// Multiplier on a node's local error term when run on this tier.
    ///
    /// The f32 tiers carry factor 1: the k·ε local term already bounds
    /// a length-k reduction under *any* summation order, so lane
    /// unrolling, re-blocking, or splitting the accumulation across
    /// threads cannot exceed it. The quantized tiers scale ε up to
    /// their per-MAC relative error: `factor · ε_f32` must dominate the
    /// bound `genie-tensor`'s quantized kernels advertise —
    /// 2¹⁸·2⁻²⁴ = 2⁻⁶ ≥ `quant::INT8_MAC_RELERR` and
    /// 2¹⁵·2⁻²⁴ = 2⁻⁹ ≥ `quant::FP16_MAC_RELERR` — which the
    /// `quant_error` proptest suite checks empirically against the
    /// scalar oracle.
    pub fn error_factor(self) -> f64 {
        match self {
            KernelTier::Scalar | KernelTier::Blocked | KernelTier::Simd | KernelTier::Threaded => {
                1.0
            }
            KernelTier::Int8 => (2.0f64).powi(18),
            KernelTier::Fp16 => (2.0f64).powi(15),
        }
    }

    /// Short label for reports; matches the dispatch-path labels in
    /// `genie-tensor::stats`.
    pub fn label(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Blocked => "blocked",
            KernelTier::Simd => "simd",
            KernelTier::Threaded => "threaded",
            KernelTier::Int8 => "int8",
            KernelTier::Fp16 => "fp16",
        }
    }

    /// Parse a [`KernelTier::label`] back to the tier (also accepts the
    /// dispatch-path spelling `"parallel"` for the threaded tier).
    pub fn from_label(label: &str) -> Option<KernelTier> {
        Some(match label {
            "scalar" => KernelTier::Scalar,
            "blocked" => KernelTier::Blocked,
            "simd" => KernelTier::Simd,
            "threaded" | "parallel" => KernelTier::Threaded,
            "int8" => KernelTier::Int8,
            "fp16" => KernelTier::Fp16,
            _ => return None,
        })
    }
}

/// The kernel tier assigned to a node: an explicit [`KERNEL_TIER_ATTR`]
/// attribute wins, else the flop-threshold natural dispatch.
pub fn tier_for_node(srg: &Srg, id: NodeId) -> KernelTier {
    let node = srg.node(id);
    node.attrs
        .get(KERNEL_TIER_ATTR)
        .and_then(|s| KernelTier::from_label(s))
        .unwrap_or_else(|| KernelTier::for_flops(node.cost.flops))
}

/// Multiplier on a node's local error term when scheduled onto a
/// device of this class. Inference-class parts model reduced-precision
/// accumulate paths (tensor-core style) as a 2× widening.
pub fn device_class_error_factor(class: GpuClass) -> f64 {
    match class {
        GpuClass::Flagship | GpuClass::BandwidthOptimized => 1.0,
        GpuClass::Inference => 2.0,
    }
}

/// Worst-case relative error bound per node output, from a forward
/// [`MaxLattice`] solve. `+∞` means "no static bound" (downstream of a
/// fused or custom kernel).
#[derive(Clone, Debug)]
pub struct ErrorBounds {
    bounds: BTreeMap<NodeId, f64>,
}

impl ErrorBounds {
    /// The bound for one node (`+∞` if the node is unknown).
    pub fn bound(&self, node: NodeId) -> f64 {
        self.bounds.get(&node).copied().unwrap_or(f64::INFINITY)
    }

    /// All (node, bound) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.bounds.iter().map(|(&n, &b)| (n, b))
    }

    /// The largest finite bound, if any node has one.
    pub fn max_finite(&self) -> Option<f64> {
        self.bounds
            .values()
            .copied()
            .filter(|b| b.is_finite())
            .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
    }
}

/// Error bounds with unit kernel-tier/device factors: what the graph's
/// math delivers on an exact-dispatch backend.
pub fn error_bounds(srg: &Srg) -> Result<ErrorBounds, CycleError> {
    error_bounds_with(srg, |_| 1.0)
}

/// Error bounds with a per-node multiplier on the local error term
/// (kernel tier × device class). The multiplier scales only the error
/// *introduced at* the node, not the error flowing through it, so the
/// delivered/baseline ratio is bounded by the largest single factor.
pub fn error_bounds_with<F>(srg: &Srg, factor: F) -> Result<ErrorBounds, CycleError>
where
    F: Fn(NodeId) -> f64,
{
    let flow = SrgFlow::new(srg)?;
    let fx = solve(&MaxLattice, &flow, Direction::Forward, |v, joined| {
        let id = flow.node_at(v);
        node_bound(srg, id, *joined, factor(id))
    });
    debug_assert!(fx.converged, "error propagation is monotone over a DAG");
    let bounds = flow
        .order()
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, fx.outputs[i]))
        .collect();
    Ok(ErrorBounds { bounds })
}

/// Epsilon of the value a node produces: widest outgoing element type,
/// falling back to the widest incoming one for sink nodes.
fn output_eps(srg: &Srg, id: NodeId) -> f64 {
    let out = srg
        .out_edges(id)
        .map(|e| elem_eps(e.meta.elem))
        .fold(None, |acc: Option<f64>, e| {
            Some(acc.map_or(e, |a| a.max(e)))
        });
    out.unwrap_or_else(|| {
        srg.in_edges(id)
            .map(|e| elem_eps(e.meta.elem))
            .fold(0.0, f64::max)
    })
}

/// Length of the reduction a node performs, from its input shapes: the
/// `k` in the k·ε local error term.
fn reduction_len(op: &OpKind, ins: &[&Edge]) -> f64 {
    let last_dim = |e: &Edge| e.meta.shape.last().copied().unwrap_or(1).max(1) as f64;
    match op {
        // Dot products of length k (the contracted dimension).
        OpKind::MatMul => ins.first().map(|e| last_dim(e)).unwrap_or(16.0),
        // QKᵀ (length d) + softmax (length seq) + AV (length seq).
        OpKind::Attention => ins
            .first()
            .map(|e| {
                let shape = &e.meta.shape;
                let d = shape.last().copied().unwrap_or(1).max(1) as f64;
                let seq = if shape.len() >= 2 {
                    shape[shape.len() - 2].max(1) as f64
                } else {
                    1.0
                };
                d + 2.0 * seq
            })
            .unwrap_or(64.0),
        // One output accumulates C_in·kh·kw products (weight shape
        // [C_out, C_in, kh, kw]).
        OpKind::Conv2d => ins
            .get(1)
            .map(|e| {
                e.meta.shape[1..]
                    .iter()
                    .copied()
                    .map(|d| d.max(1) as f64)
                    .product::<f64>()
                    .max(1.0)
            })
            .unwrap_or(64.0),
        // A length-n reduction plus a division/rescale pass.
        OpKind::LayerNorm
        | OpKind::RmsNorm
        | OpKind::Softmax
        | OpKind::BatchNorm
        | OpKind::Reduce => ins.first().map(|e| 2.0 * last_dim(e)).unwrap_or(16.0),
        // One rounding each.
        OpKind::Add | OpKind::Mul => 1.0,
        // Polynomial/rational approximations: a few ulps.
        OpKind::Gelu | OpKind::Silu | OpKind::Pool2d => 4.0,
        _ => 0.0,
    }
}

/// One step of the error transfer function: the bound on a node's
/// output given the join (max) of its inputs' bounds.
fn node_bound(srg: &Srg, id: NodeId, joined: f64, factor: f64) -> f64 {
    let node = srg.node(id);
    let ins: Vec<&Edge> = srg.in_edges(id).collect();
    match node.op {
        // No static model: poison downstream bounds.
        OpKind::Fused(_) | OpKind::CustomKernel(_) => f64::INFINITY,
        // Sources contribute only their representation roundoff.
        OpKind::Input | OpKind::Parameter => output_eps(srg, id),
        // Pure data movement / monotone selection: error flows through.
        OpKind::Relu
        | OpKind::Concat
        | OpKind::Slice
        | OpKind::Reshape
        | OpKind::Transpose
        | OpKind::EmbeddingGather
        | OpKind::KvAppend
        | OpKind::Sample
        | OpKind::Output => joined,
        // Arithmetic: fan-in errors add (bounded by count × max), plus
        // the local reduction term scaled by the schedule factor.
        _ => {
            let fan_in = ins.len().max(1) as f64;
            let local = reduction_len(&node.op, &ins) * output_eps(srg, id);
            fan_in * joined + factor * local
        }
    }
}

/// Per-node "does a `Critical` edge sit downstream of here" flags, via
/// a backward [`BoolOrLattice`] reachability solve.
fn critical_downstream(srg: &Srg, flow: &SrgFlow<'_>) -> Vec<bool> {
    let seeds: Vec<bool> = (0..flow.len())
        .map(|v| {
            srg.out_edges(flow.node_at(v))
                .any(|e| e.criticality == Criticality::Critical)
        })
        .collect();
    let fx = solve(&BoolOrLattice, flow, Direction::Backward, |v, down| {
        *down || seeds[v]
    });
    fx.outputs
}

/// GA301/GA302/GA303 at graph level. Factors are unit except where a
/// node carries an explicit [`KERNEL_TIER_ATTR`] — a quantized tier
/// request widens that node's local term even before any plan exists.
pub fn check_precision_consistency(srg: &Srg, cfg: &LintConfig, report: &mut Report) {
    check_precision_with_factors(
        srg,
        |id| {
            srg.node(id)
                .attrs
                .get(KERNEL_TIER_ATTR)
                .and_then(|s| KernelTier::from_label(s))
                .map_or(1.0, KernelTier::error_factor)
        },
        cfg,
        report,
    );
}

/// GA301/GA302/GA303 against a plan: the local-error multiplier per
/// node is its kernel tier (from the cost hints) times its device's
/// class factor.
pub fn check_precision_plan(
    facts: &dyn PlanFacts,
    topo: &Topology,
    cfg: &LintConfig,
    report: &mut Report,
) {
    let srg = facts.srg();
    let ndev = topo.devices().len();
    check_precision_with_factors(
        srg,
        |id| {
            let mut f = tier_for_node(srg, id).error_factor();
            if let Some(dev) = facts.node_device(id) {
                if (dev.0 as usize) < ndev {
                    f *= device_class_error_factor(topo.device(dev).spec.class);
                }
            }
            f
        },
        cfg,
        report,
    );
}

/// The full GA3xx pass with an explicit per-node local-error factor.
pub fn check_precision_with_factors<F>(srg: &Srg, factor: F, cfg: &LintConfig, report: &mut Report)
where
    F: Fn(NodeId) -> f64,
{
    let Ok(flow) = SrgFlow::new(srg) else {
        return; // cyclic graphs are a GA0xx problem
    };
    let delivered = error_bounds_with(srg, &factor).expect("flow already built");
    let baseline = error_bounds_with(srg, |_| 1.0).expect("flow already built");
    let downstream = critical_downstream(srg, &flow);

    for node in srg.nodes() {
        // GA303 — ops with no static error model.
        match &node.op {
            OpKind::Fused(k) => report.push(
                cfg,
                LintCode::ErrorIntervalUnknown,
                Anchor::Node(node.id),
                format!(
                    "fused region {} ({k} ops) has no static error model; \
                     downstream bounds are unbounded",
                    node.name
                ),
            ),
            OpKind::CustomKernel(name) => report.push(
                cfg,
                LintCode::ErrorIntervalUnknown,
                Anchor::Node(node.id),
                format!(
                    "custom kernel {} ({name}) has no static error model; \
                     downstream bounds are unbounded",
                    node.name
                ),
            ),
            _ => {}
        }

        // GA301 (absolute) — explicit tolerance demand vs delivered bound.
        if let Some(tol) = node
            .attrs
            .get(TOLERANCE_ATTR)
            .and_then(|s| s.parse::<f64>().ok())
        {
            let got = delivered.bound(node.id);
            if got > tol {
                report.push(
                    cfg,
                    LintCode::CriticalityToleranceExceeded,
                    Anchor::Node(node.id),
                    format!(
                        "node {} demands relative tolerance {tol:.3e} but the \
                         scheduled kernels deliver a worst-case bound of {got:.3e}",
                        node.name
                    ),
                );
            }
        }

        // GA302 — float downcast feeding a Critical edge downstream.
        let Some(v) = flow.index_of(node.id) else {
            continue;
        };
        if !downstream[v] {
            continue;
        }
        let in_eps = srg
            .in_edges(node.id)
            .map(|e| elem_eps(e.meta.elem))
            .filter(|&e| e > 0.0)
            .fold(None, |acc: Option<f64>, e| {
                Some(acc.map_or(e, |a| a.max(e)))
            });
        let out_eps = srg
            .out_edges(node.id)
            .map(|e| elem_eps(e.meta.elem))
            .filter(|&e| e > 0.0)
            .fold(None, |acc: Option<f64>, e| {
                Some(acc.map_or(e, |a| a.max(e)))
            });
        if let (Some(ie), Some(oe)) = (in_eps, out_eps) {
            if oe > ie {
                report.push(
                    cfg,
                    LintCode::PrecisionLossyCriticalPath,
                    Anchor::Node(node.id),
                    format!(
                        "node {} downcasts its inputs (output ε {oe:.1e} > input \
                         ε {ie:.1e}) on a path feeding a Critical edge",
                        node.name
                    ),
                );
            }
        }
    }

    // GA301 (relative) — the schedule degraded a Critical value's bound
    // past the slack, even without an explicit tolerance demand. One
    // finding per offending source node.
    let mut flagged: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
    for edge in srg.edges() {
        if edge.criticality != Criticality::Critical || !flagged.insert(edge.src) {
            continue;
        }
        let d = delivered.bound(edge.src);
        let b = baseline.bound(edge.src);
        if d > CRITICALITY_SLACK * b {
            report.push(
                cfg,
                LintCode::CriticalityToleranceExceeded,
                Anchor::Edge(edge.id),
                format!(
                    "critical value from {} is delivered at a worst-case bound of \
                     {d:.3e}, more than {CRITICALITY_SLACK}× its baseline {b:.3e}: \
                     the schedule, not the math, degraded it",
                    srg.node(edge.src).name
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_srg::{Node, TensorMeta};

    fn chain() -> (Srg, NodeId, NodeId, NodeId) {
        let mut g = Srg::new("prec");
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "x"));
        let w = g.add_node(Node::new(NodeId::new(0), OpKind::Parameter, "w"));
        let mm =
            g.add_node(
                Node::new(NodeId::new(0), OpKind::MatMul, "mm")
                    .with_cost(genie_srg::CostHints::new(2.0 * 8.0 * 64.0 * 8.0, 1.0, 1.0)),
            );
        g.connect(x, mm, TensorMeta::new([8, 64], ElemType::F32));
        g.connect(w, mm, TensorMeta::new([64, 8], ElemType::F32));
        let out = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "out"));
        g.connect(mm, out, TensorMeta::new([8, 8], ElemType::F32));
        (g, x, mm, out)
    }

    #[test]
    fn bounds_are_finite_and_monotone_along_the_chain() {
        let (g, x, mm, out) = chain();
        let b = error_bounds(&g).unwrap();
        assert!(b.bound(x) > 0.0 && b.bound(x).is_finite());
        assert!(b.bound(mm) > b.bound(x), "matmul adds a k·ε local term");
        assert!(b.bound(out) >= b.bound(mm), "output only propagates");
        assert!(b.max_finite().unwrap() >= b.bound(out));
        // k = 64 contracted elements: local term alone is 64·ε.
        assert!(b.bound(mm) >= 64.0 * elem_eps(ElemType::F32));
    }

    #[test]
    fn clean_f32_graph_has_no_findings() {
        let (g, ..) = chain();
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        assert!(r.finish().is_empty());
    }

    #[test]
    fn ga301_tolerance_attr_tighter_than_bound_denied() {
        let (mut g, _, mm, _) = chain();
        g.node_mut(mm)
            .attrs
            .insert(TOLERANCE_ATTR.into(), "1e-12".into());
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        let r = r.finish();
        assert_eq!(
            r.with_code(LintCode::CriticalityToleranceExceeded).len(),
            1,
            "{r}"
        );
        assert!(r.has_deny());

        // A loose demand is satisfied.
        let (mut g, _, mm, _) = chain();
        g.node_mut(mm)
            .attrs
            .insert(TOLERANCE_ATTR.into(), "0.1".into());
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        assert!(r.finish().is_empty());
    }

    #[test]
    fn ga301_relative_fires_when_schedule_inflates_critical_value() {
        let (mut g, _, mm, out) = chain();
        let e = g.out_edges(mm).next().unwrap().id;
        let _ = out;
        g.edge_mut(e).criticality = Criticality::Critical;

        // Unit factors: inside the slack.
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        assert!(r.finish().is_empty());

        // A hypothetical 8× lossier kernel on the critical producer
        // blows past the 4× slack.
        let mut r = Report::new("t");
        check_precision_with_factors(
            &g,
            |id| if id == mm { 8.0 } else { 1.0 },
            &LintConfig::new(),
            &mut r,
        );
        let r = r.finish();
        assert_eq!(
            r.with_code(LintCode::CriticalityToleranceExceeded).len(),
            1,
            "{r}"
        );
        assert!(r.has_deny());
    }

    #[test]
    fn ga302_downcast_on_critical_path_warns() {
        let mut g = Srg::new("down");
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "x"));
        let mm = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
        g.connect(x, mm, TensorMeta::new([8, 8], ElemType::F32));
        let out = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "out"));
        let e = g.connect(mm, out, TensorMeta::new([8, 8], ElemType::F16));

        // Not critical: quiet.
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        assert!(r
            .finish()
            .with_code(LintCode::PrecisionLossyCriticalPath)
            .is_empty());

        g.edge_mut(e).criticality = Criticality::Critical;
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        let r = r.finish();
        let hits = r.with_code(LintCode::PrecisionLossyCriticalPath);
        assert_eq!(hits.len(), 1, "{r}");
        assert!(!r.has_deny(), "GA302 warns");
    }

    #[test]
    fn uniform_f16_critical_graph_is_quiet() {
        // Zoo spec graphs are uniformly F16 with Critical edges from
        // the critical-path marker; neither GA301 nor GA302 may fire.
        let mut g = Srg::new("f16");
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "x"));
        let mm = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
        g.connect(x, mm, TensorMeta::new([8, 4096], ElemType::F16));
        let out = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "out"));
        let e = g.connect(mm, out, TensorMeta::new([8, 8], ElemType::F16));
        g.edge_mut(e).criticality = Criticality::Critical;
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        assert!(r.finish().is_empty());
    }

    #[test]
    fn ga303_unknown_op_is_info_and_poisons_bounds() {
        let mut g = Srg::new("fused");
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "x"));
        let f = g.add_node(Node::new(NodeId::new(0), OpKind::Fused(3), "blk"));
        g.connect(x, f, TensorMeta::new([8, 8], ElemType::F32));
        let out = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "out"));
        g.connect(f, out, TensorMeta::new([8, 8], ElemType::F32));

        let b = error_bounds(&g).unwrap();
        assert!(b.bound(f).is_infinite());
        assert!(b.bound(out).is_infinite(), "poison flows downstream");

        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        let r = r.finish();
        assert_eq!(r.with_code(LintCode::ErrorIntervalUnknown).len(), 1, "{r}");
        assert!(!r.has_deny(), "GA303 is informational");
    }

    #[test]
    fn kernel_tiers_mirror_dispatch_thresholds() {
        use genie_tensor::ops::{MATMUL_BLOCK_MIN_FLOPS, MATMUL_PAR_MIN_FLOPS};
        assert_eq!(
            KernelTier::for_flops(MATMUL_BLOCK_MIN_FLOPS as f64 - 1.0),
            KernelTier::Scalar
        );
        assert_eq!(
            KernelTier::for_flops(MATMUL_BLOCK_MIN_FLOPS as f64),
            KernelTier::Simd
        );
        assert_eq!(
            KernelTier::for_flops(MATMUL_PAR_MIN_FLOPS as f64),
            KernelTier::Threaded
        );
        for t in [
            KernelTier::Scalar,
            KernelTier::Blocked,
            KernelTier::Simd,
            KernelTier::Threaded,
        ] {
            assert_eq!(t.error_factor(), 1.0, "f32 tiers share the k·ε bound");
        }
        // factor · ε_f32 must dominate the advertised per-MAC error.
        let eps = elem_eps(ElemType::F32);
        assert!(KernelTier::Int8.error_factor() * eps >= genie_tensor::quant::INT8_MAC_RELERR);
        assert!(KernelTier::Fp16.error_factor() * eps >= genie_tensor::quant::FP16_MAC_RELERR);
        // Labels round-trip, including the dispatch-path alias.
        for t in [
            KernelTier::Scalar,
            KernelTier::Blocked,
            KernelTier::Simd,
            KernelTier::Threaded,
            KernelTier::Int8,
            KernelTier::Fp16,
        ] {
            assert_eq!(KernelTier::from_label(t.label()), Some(t));
        }
        assert_eq!(
            KernelTier::from_label("parallel"),
            Some(KernelTier::Threaded)
        );
        assert_eq!(KernelTier::from_label("fp4"), None);
    }

    #[test]
    fn ga301_denies_overtight_int8_plan() {
        // 1e-3 is comfortable for any f32 tier (the 64-wide matmul's
        // bound is ~66·2⁻²⁴ ≈ 4e-6) but far tighter than the int8
        // tier's widened local term (2¹⁸·64·2⁻²⁴ = 1.0) — requesting
        // the quantized tier must flip the plan from clean to denied.
        let (mut g, _, mm, _) = chain();
        g.node_mut(mm)
            .attrs
            .insert(TOLERANCE_ATTR.into(), "1e-3".into());
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        assert!(r.finish().is_empty(), "f32 dispatch meets 1e-3");

        g.node_mut(mm)
            .attrs
            .insert(KERNEL_TIER_ATTR.into(), "int8".into());
        assert_eq!(tier_for_node(&g, mm), KernelTier::Int8);
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        let r = r.finish();
        assert_eq!(
            r.with_code(LintCode::CriticalityToleranceExceeded).len(),
            1,
            "{r}"
        );
        assert!(r.has_deny(), "GA301 denies the int8 plan");

        // A demand the int8 error model can meet is allowed through.
        let (mut g, _, mm, _) = chain();
        g.node_mut(mm)
            .attrs
            .insert(TOLERANCE_ATTR.into(), "8.0".into());
        g.node_mut(mm)
            .attrs
            .insert(KERNEL_TIER_ATTR.into(), "int8".into());
        let mut r = Report::new("t");
        check_precision_consistency(&g, &LintConfig::new(), &mut r);
        assert!(r.finish().is_empty(), "loose tolerance admits int8");
    }

    #[test]
    fn integer_values_are_exact() {
        let mut g = Srg::new("ids");
        let ids = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "ids"));
        let sink = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "sink"));
        g.connect(ids, sink, TensorMeta::new([16], ElemType::I32));
        let b = error_bounds(&g).unwrap();
        assert_eq!(b.bound(ids), 0.0);
        assert_eq!(b.bound(sink), 0.0);
    }
}
