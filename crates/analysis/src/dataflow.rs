//! Generic fixpoint dataflow framework.
//!
//! Every cross-cutting lint in this crate — liveness-based memory
//! watermarks (GA101/GA2xx), error-interval propagation (GA3xx) — is an
//! instance of the same classic scheme: pick a join-semilattice of
//! abstract values, pick a flow graph (the SRG in topological order, or
//! an `ExecutionPlan`'s linear step timeline), pick a monotone transfer
//! function per vertex, and iterate a worklist to the least fixpoint.
//! This module is that scheme, factored once so every future pass
//! (heterogeneous fleets, PD disaggregation — see ROADMAP item 4 and
//! beyond) reuses the solver instead of hand-rolling its own traversal.
//!
//! The solver is deliberately tiny and `std`-only:
//!
//! - [`Lattice`] — bottom element + join; the element type only needs
//!   `Clone + PartialEq + Debug`.
//! - [`FlowGraph`] — vertices are `0..len()`, with `preds`/`succs`
//!   adjacency. [`Timeline`] models a linear schedule; [`SrgFlow`]
//!   adapts an [`Srg`] through its deterministic topological order.
//! - [`solve`] — a worklist iteration in the chosen [`Direction`], with
//!   a fuel cap so a non-monotone transfer function degrades into
//!   `converged == false` instead of an infinite loop.
//!
//! For a monotone transfer function over a finite-height lattice the
//! solver terminates at the unique least fixpoint regardless of visit
//! order; the proptests in `tests/fixpoint_props.rs` pin termination,
//! monotone convergence, and agreement with brute-force recomputation.

use genie_srg::traverse::{topo_order, CycleError};
use genie_srg::{NodeId, Srg};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Debug;
use std::marker::PhantomData;

/// A join-semilattice: the abstract domain a dataflow analysis runs over.
///
/// Implementations must satisfy the usual laws — `join` is associative,
/// commutative, idempotent, and `bottom` is its identity — and the
/// transfer functions handed to [`solve`] should be monotone with
/// respect to the induced order (`a ⊑ b  ⇔  join(a, b) == b`).
pub trait Lattice {
    /// The abstract value.
    type Elem: Clone + PartialEq + Debug;
    /// The least element (identity of `join`).
    fn bottom(&self) -> Self::Elem;
    /// Least upper bound of two elements.
    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// Which way facts flow along the graph's edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors (e.g. error intervals).
    Forward,
    /// Facts flow from successors to predecessors (e.g. liveness).
    Backward,
}

/// The shape a dataflow analysis walks: vertices `0..len()` plus
/// adjacency. Adjacency returns owned `Vec`s so implementations can
/// compute it on the fly (index translation, filtering).
pub trait FlowGraph {
    /// Number of vertices.
    fn len(&self) -> usize;
    /// Whether the graph has no vertices.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Vertices with an edge into `v`.
    fn preds(&self, v: usize) -> Vec<usize>;
    /// Vertices `v` has an edge into.
    fn succs(&self, v: usize) -> Vec<usize>;
}

/// A linear chain of `steps` vertices: the flow graph of an execution
/// plan's step timeline, where step `i` happens-before step `i + 1`.
#[derive(Clone, Copy, Debug)]
pub struct Timeline {
    steps: usize,
}

impl Timeline {
    /// A timeline with `steps` sequential steps.
    pub fn new(steps: usize) -> Self {
        Timeline { steps }
    }
}

impl FlowGraph for Timeline {
    fn len(&self) -> usize {
        self.steps
    }
    fn preds(&self, v: usize) -> Vec<usize> {
        if v == 0 {
            Vec::new()
        } else {
            vec![v - 1]
        }
    }
    fn succs(&self, v: usize) -> Vec<usize> {
        if v + 1 < self.steps {
            vec![v + 1]
        } else {
            Vec::new()
        }
    }
}

/// An [`Srg`] adapted to [`FlowGraph`]: vertex `i` is the `i`-th node of
/// the deterministic topological order, so a single forward (or
/// backward) sweep of the solver visits producers before (or after)
/// consumers.
pub struct SrgFlow<'a> {
    srg: &'a Srg,
    order: Vec<NodeId>,
    index: BTreeMap<NodeId, usize>,
}

impl<'a> SrgFlow<'a> {
    /// Build the adapter; fails with the witness cycle on a cyclic graph.
    pub fn new(srg: &'a Srg) -> Result<Self, CycleError> {
        let order = topo_order(srg)?;
        let index = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        Ok(SrgFlow { srg, order, index })
    }

    /// The node at vertex `i` of the topological order.
    pub fn node_at(&self, i: usize) -> NodeId {
        self.order[i]
    }

    /// The vertex index of a node.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.index.get(&node).copied()
    }

    /// The underlying topological order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }
}

impl FlowGraph for SrgFlow<'_> {
    fn len(&self) -> usize {
        self.order.len()
    }
    fn preds(&self, v: usize) -> Vec<usize> {
        self.srg
            .predecessors(self.order[v])
            .into_iter()
            .filter_map(|n| self.index_of(n))
            .collect()
    }
    fn succs(&self, v: usize) -> Vec<usize> {
        self.srg
            .successors(self.order[v])
            .into_iter()
            .filter_map(|n| self.index_of(n))
            .collect()
    }
}

/// The result of a fixpoint solve: per-vertex `inputs` (the join over
/// the upstream side) and `outputs` (the transfer function applied to
/// the input), plus how hard the solver worked.
#[derive(Clone, Debug)]
pub struct Fixpoint<E> {
    /// Per-vertex join of upstream outputs (predecessors when forward,
    /// successors when backward).
    pub inputs: Vec<E>,
    /// Per-vertex transfer-function output.
    pub outputs: Vec<E>,
    /// Transfer-function evaluations performed.
    pub iterations: usize,
    /// False iff the fuel cap tripped before the worklist drained
    /// (possible only for non-monotone transfer functions).
    pub converged: bool,
}

/// Worklist fixpoint iteration of `transfer` over `graph` in the given
/// `direction`.
///
/// The transfer function receives the vertex index and the join of the
/// upstream outputs and returns the vertex's new output. Monotone
/// transfer functions over finite-height lattices always converge; a
/// fuel cap of `64 · len + 64` evaluations bounds pathological inputs,
/// reported via [`Fixpoint::converged`].
pub fn solve<L, G, F>(
    lattice: &L,
    graph: &G,
    direction: Direction,
    mut transfer: F,
) -> Fixpoint<L::Elem>
where
    L: Lattice,
    G: FlowGraph,
    F: FnMut(usize, &L::Elem) -> L::Elem,
{
    let n = graph.len();
    let mut inputs: Vec<L::Elem> = (0..n).map(|_| lattice.bottom()).collect();
    let mut outputs: Vec<L::Elem> = (0..n).map(|_| lattice.bottom()).collect();
    // Seed in an order that needs one sweep for DAG-shaped inputs.
    let mut queue: VecDeque<usize> = match direction {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let mut queued = vec![true; n];
    let fuel = n.saturating_mul(64).saturating_add(64);
    let mut iterations = 0usize;
    while let Some(v) = queue.pop_front() {
        queued[v] = false;
        if iterations >= fuel {
            // Put the vertex back so the drain check below sees the
            // unfinished work.
            queue.push_front(v);
            break;
        }
        iterations += 1;
        let upstream = match direction {
            Direction::Forward => graph.preds(v),
            Direction::Backward => graph.succs(v),
        };
        let mut input = lattice.bottom();
        for u in upstream {
            input = lattice.join(&input, &outputs[u]);
        }
        let out = transfer(v, &input);
        inputs[v] = input;
        if out != outputs[v] {
            outputs[v] = out;
            let downstream = match direction {
                Direction::Forward => graph.succs(v),
                Direction::Backward => graph.preds(v),
            };
            for d in downstream {
                if !queued[d] {
                    queued[d] = true;
                    queue.push_back(d);
                }
            }
        }
    }
    let converged = queue.is_empty();
    Fixpoint {
        inputs,
        outputs,
        iterations,
        converged,
    }
}

/// The powerset lattice over `T`: `bottom = ∅`, `join = ∪`. Used for
/// liveness (sets of live values) and reachability.
pub struct SetLattice<T>(PhantomData<T>);

impl<T> SetLattice<T> {
    /// The set-union lattice.
    pub fn new() -> Self {
        SetLattice(PhantomData)
    }
}

impl<T> Default for SetLattice<T> {
    fn default() -> Self {
        SetLattice(PhantomData)
    }
}

impl<T: Clone + Ord + Debug> Lattice for SetLattice<T> {
    type Elem = BTreeSet<T>;
    fn bottom(&self) -> BTreeSet<T> {
        BTreeSet::new()
    }
    fn join(&self, a: &BTreeSet<T>, b: &BTreeSet<T>) -> BTreeSet<T> {
        a.union(b).cloned().collect()
    }
}

/// The max-of-nonnegative-reals lattice: `bottom = 0`, `join = max`.
/// Used for worst-case error-interval propagation (GA3xx), where `+∞`
/// encodes "no static bound".
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxLattice;

impl Lattice for MaxLattice {
    type Elem = f64;
    fn bottom(&self) -> f64 {
        0.0
    }
    fn join(&self, a: &f64, b: &f64) -> f64 {
        a.max(*b)
    }
}

/// The two-point boolean lattice: `bottom = false`, `join = ∨`. Used
/// for "is anything critical downstream of here" reachability.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolOrLattice;

impl Lattice for BoolOrLattice {
    type Elem = bool;
    fn bottom(&self) -> bool {
        false
    }
    fn join(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_srg::{ElemType, Node, OpKind, TensorMeta};

    #[test]
    fn timeline_adjacency_is_a_chain() {
        let t = Timeline::new(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.preds(0), Vec::<usize>::new());
        assert_eq!(t.preds(2), vec![1]);
        assert_eq!(t.succs(0), vec![1]);
        assert_eq!(t.succs(2), Vec::<usize>::new());
        assert!(Timeline::new(0).is_empty());
    }

    #[test]
    fn forward_reachability_on_a_chain() {
        // Transfer: out(v) = in(v) ∪ {v}. Fixpoint: out(v) = {0..=v}.
        let t = Timeline::new(5);
        let lat = SetLattice::<usize>::new();
        let fx = solve(&lat, &t, Direction::Forward, |v, input| {
            let mut s = input.clone();
            s.insert(v);
            s
        });
        assert!(fx.converged);
        assert_eq!(fx.outputs[4], (0..=4).collect());
        assert_eq!(fx.outputs[0], std::iter::once(0).collect());
    }

    #[test]
    fn backward_liveness_on_a_chain() {
        // Step v defines value v and uses value v-1: classic liveness.
        let t = Timeline::new(4);
        let lat = SetLattice::<usize>::new();
        let fx = solve(&lat, &t, Direction::Backward, |v, live_out| {
            let mut s = live_out.clone();
            s.remove(&v); // defined here
            if v > 0 {
                s.insert(v - 1); // used here
            }
            s
        });
        assert!(fx.converged);
        // Before step 3, value 2 is live; before step 1, value 0 is live.
        assert_eq!(fx.outputs[3], std::iter::once(2).collect());
        assert_eq!(fx.outputs[1], std::iter::once(0).collect());
        assert_eq!(fx.outputs[0], BTreeSet::new());
    }

    #[test]
    fn max_lattice_propagates_peaks_forward() {
        let t = Timeline::new(4);
        let fx = solve(&MaxLattice, &t, Direction::Forward, |v, input| {
            input.max(if v == 1 { 7.0 } else { 1.0 })
        });
        assert!(fx.converged);
        assert_eq!(fx.outputs[0], 1.0);
        assert_eq!(fx.outputs[3], 7.0);
    }

    #[test]
    fn srg_flow_follows_topo_order() {
        let mut g = Srg::new("flow");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "c"));
        g.connect(a, b, TensorMeta::new([4], ElemType::F32));
        g.connect(b, c, TensorMeta::new([4], ElemType::F32));
        let flow = SrgFlow::new(&g).expect("acyclic");
        assert_eq!(flow.len(), 3);
        let ia = flow.index_of(a).unwrap();
        let ic = flow.index_of(c).unwrap();
        assert!(ia < ic, "producer precedes consumer in topo order");
        assert_eq!(flow.node_at(ia), a);
        assert_eq!(flow.preds(ia), Vec::<usize>::new());

        // Downstream-of-`a` reachability via BoolOr, backward from c.
        let fx = solve(&BoolOrLattice, &flow, Direction::Backward, |v, down| {
            *down || flow.node_at(v) == c
        });
        assert!(fx.converged);
        assert!(fx.outputs[ia], "c is downstream of a");
    }

    #[test]
    fn non_monotone_transfer_hits_fuel_not_hang() {
        // Two mutually-dependent vertices plus a transfer function that
        // climbs an infinite ascending chain never stabilize; the fuel
        // cap must report non-convergence instead of spinning forever.
        struct Ring;
        impl FlowGraph for Ring {
            fn len(&self) -> usize {
                2
            }
            fn preds(&self, v: usize) -> Vec<usize> {
                vec![1 - v]
            }
            fn succs(&self, v: usize) -> Vec<usize> {
                vec![1 - v]
            }
        }
        let mut counter = 0.0;
        let fx = solve(&MaxLattice, &Ring, Direction::Forward, |_, _| {
            counter += 1.0;
            counter
        });
        assert!(!fx.converged);
        assert!(fx.iterations <= 64 * 2 + 64);
    }

    #[test]
    fn diamond_joins_both_branches() {
        let mut g = Srg::new("diamond");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let l = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "l"));
        let r = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "r"));
        let j = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "j"));
        let m = TensorMeta::new([4], ElemType::F32);
        g.connect(a, l, m.clone());
        g.connect(a, r, m.clone());
        g.connect(l, j, m.clone());
        g.connect(r, j, m);
        let flow = SrgFlow::new(&g).expect("acyclic");
        let lat = SetLattice::<NodeId>::new();
        let fx = solve(&lat, &flow, Direction::Forward, |v, input| {
            let mut s = input.clone();
            s.insert(flow.node_at(v));
            s
        });
        assert!(fx.converged);
        let ij = flow.index_of(j).unwrap();
        assert_eq!(fx.outputs[ij], [a, l, r, j].into_iter().collect());
    }
}
