//! Schedule-timeline safety passes (GA2xx) and the liveness-based
//! GA101 re-anchor.
//!
//! Where `plan_passes` checks each placement/transfer locally, the
//! passes here reason about the plan's *timeline*: which values are
//! simultaneously live (memory watermark), in which order a channel
//! delivers its transfers (FIFO ordering hazards), and whether the
//! waits-for relation induced by channel FIFO order plus data
//! dependencies is acyclic (static deadlock). All three are instances
//! of the fixpoint framework in [`crate::dataflow`] or of a plain
//! topological sweep over the same structures.

use crate::dataflow::{solve, Direction, FlowGraph, SetLattice, SrgFlow, Timeline};
use crate::diag::{Anchor, LintCode, LintConfig, Report, Severity};
use crate::plan_passes::{PlanFacts, TransferFact};
use genie_cluster::{ClusterState, DevId, Topology};
use genie_srg::traverse::CycleError;
use genie_srg::{NodeId, Srg, TensorId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-step live-value sets over the SRG's deterministic topological
/// order, computed by a backward liveness solve on the step [`Timeline`].
///
/// Step `i` executes the `i`-th node of the topological order; the
/// value produced by node `n` is live from the step that runs `n`
/// through the last step that consumes it. Entry `i` of the result is
/// the set of producer nodes whose values must be resident *while*
/// step `i` runs (including step `i`'s own output).
pub fn live_value_sets(srg: &Srg) -> Result<Vec<BTreeSet<NodeId>>, CycleError> {
    let flow = SrgFlow::new(srg)?;
    let steps = flow.len();
    let lat = SetLattice::<NodeId>::new();
    let fx = solve(
        &lat,
        &Timeline::new(steps),
        Direction::Backward,
        |i, live_out| {
            let node = flow.node_at(i);
            let mut live_in = live_out.clone();
            live_in.remove(&node); // defined here, dead before this step
            for p in srg.predecessors(node) {
                live_in.insert(p); // used here, live from its producer on
            }
            live_in
        },
    );
    debug_assert!(fx.converged, "liveness is monotone over a finite lattice");
    Ok((0..steps)
        .map(|i| {
            let mut during = fx.outputs[i].clone();
            during.insert(flow.node_at(i));
            during
        })
        .collect())
}

/// The bytes held by a node's output value: the widest outgoing edge,
/// or the node's own write-footprint hint if larger.
fn value_bytes(srg: &Srg, node: NodeId) -> u64 {
    srg.out_edges(node)
        .map(|e| e.meta.size_bytes() as u64)
        .max()
        .unwrap_or(0)
        .max(srg.node(node).cost.bytes_written as u64)
}

/// GA101 — memory watermark: pinned uploads plus the *liveness-based*
/// peak of simultaneously-live values per device must fit in that
/// device's free memory.
///
/// This replaces the old pessimistic `pinned + largest transient` sum:
/// a value is charged only for the steps on which it is actually live,
/// to the device of its producer and of each consumer, and values that
/// are backed by a pinned upload are excluded from the sweep (they are
/// already counted once, on the pinned side). When the graph has no
/// topological order the old sum runs instead, capped at warn level.
pub fn check_memory_watermark(
    facts: &dyn PlanFacts,
    topo: &Topology,
    state: &ClusterState,
    cfg: &LintConfig,
    report: &mut Report,
) {
    let srg = facts.srg();
    let mut demand: BTreeMap<DevId, u64> = BTreeMap::new();
    let mut pinned_tensors: BTreeSet<TensorId> = BTreeSet::new();
    for (tensor, dev, bytes) in facts.pinned_uploads() {
        *demand.entry(dev).or_insert(0) += bytes;
        pinned_tensors.insert(tensor);
    }

    let live = match live_value_sets(srg) {
        Ok(live) => live,
        Err(_) => {
            check_device_capacity_pessimistic(facts, topo, state, cfg, report);
            return;
        }
    };

    // Byte weight and charged devices per producer node. A value
    // occupies memory on the device that computes it and on the device
    // of every consumer it is copied to; `None` (the client CPU) is
    // not capacity-checked.
    let mut charges: BTreeMap<NodeId, (u64, BTreeSet<DevId>)> = BTreeMap::new();
    for node in srg.nodes() {
        if srg
            .out_edges(node.id)
            .any(|e| pinned_tensors.contains(&e.tensor))
        {
            continue; // backed by a pinned upload, charged once above
        }
        let bytes = value_bytes(srg, node.id);
        if bytes == 0 {
            continue;
        }
        let mut devs = BTreeSet::new();
        if let Some(d) = facts.node_device(node.id) {
            devs.insert(d);
        }
        for consumer in srg.successors(node.id) {
            if let Some(d) = facts.node_device(consumer) {
                devs.insert(d);
            }
        }
        if !devs.is_empty() {
            charges.insert(node.id, (bytes, devs));
        }
    }

    // High watermark per device across the step timeline.
    let mut peak: BTreeMap<DevId, u64> = BTreeMap::new();
    for step in &live {
        let mut here: BTreeMap<DevId, u64> = BTreeMap::new();
        for node in step {
            if let Some((bytes, devs)) = charges.get(node) {
                for d in devs {
                    *here.entry(*d).or_insert(0) += bytes;
                }
            }
        }
        for (d, b) in here {
            let e = peak.entry(d).or_insert(0);
            *e = (*e).max(b);
        }
    }
    for (d, b) in peak {
        *demand.entry(d).or_insert(0) += b;
    }

    for (dev, required) in demand {
        if dev.0 as usize >= topo.devices().len() {
            report.push(
                cfg,
                LintCode::TransferEndpointMismatch,
                Anchor::Device(dev),
                format!("plan references device {dev} absent from the topology"),
            );
            continue;
        }
        let free = state.mem_free(topo, dev);
        if required > free {
            report.push(
                cfg,
                LintCode::DeviceOvercommit,
                Anchor::Device(dev),
                format!("plan needs {required} B on {dev} but only {free} B are free"),
            );
        }
    }
}

/// The pre-liveness GA101: pinned uploads plus the single largest
/// transient per device. Pessimistic (ignores live ranges), so findings
/// are capped at [`Severity::Warn`]; used only when the graph is cyclic
/// and no topological timeline exists.
pub fn check_device_capacity_pessimistic(
    facts: &dyn PlanFacts,
    topo: &Topology,
    state: &ClusterState,
    cfg: &LintConfig,
    report: &mut Report,
) {
    let srg = facts.srg();
    let mut demand: BTreeMap<DevId, u64> = BTreeMap::new();
    for (_, dev, bytes) in facts.pinned_uploads() {
        *demand.entry(dev).or_insert(0) += bytes;
    }
    let mut transient: BTreeMap<DevId, u64> = BTreeMap::new();
    for node in srg.nodes() {
        if let Some(dev) = facts.node_device(node.id) {
            let out_bytes = value_bytes(srg, node.id);
            let e = transient.entry(dev).or_insert(0);
            *e = (*e).max(out_bytes);
        }
    }
    for (dev, b) in transient {
        *demand.entry(dev).or_insert(0) += b;
    }
    for (dev, required) in demand {
        if dev.0 as usize >= topo.devices().len() {
            report.push(
                cfg,
                LintCode::TransferEndpointMismatch,
                Anchor::Device(dev),
                format!("plan references device {dev} absent from the topology"),
            );
            continue;
        }
        let free = state.mem_free(topo, dev);
        if required > free {
            report.push_capped(
                cfg,
                LintCode::DeviceOvercommit,
                Severity::Warn,
                Anchor::Device(dev),
                format!(
                    "plan needs {required} B on {dev} but only {free} B are free \
                     (pessimistic bound: graph is cyclic, liveness unavailable)"
                ),
            );
        }
    }
}

/// GA201 — transfer ordering: each channel (source, destination pair)
/// delivers its transfers in the order the plan lists them. A transfer
/// queued behind one whose consumer runs *later* in the topological
/// order arrives after its own consumer's start.
pub fn check_transfer_ordering(facts: &dyn PlanFacts, cfg: &LintConfig, report: &mut Report) {
    let srg = facts.srg();
    let Ok(flow) = SrgFlow::new(srg) else {
        return; // no step order to compare against
    };
    let mut channels: BTreeMap<(Option<DevId>, Option<DevId>), Vec<TransferFact>> = BTreeMap::new();
    for t in facts.transfers() {
        if t.edge.index() >= srg.edge_count() {
            continue; // GA102 reports dangling edges
        }
        channels.entry((t.from, t.to)).or_default().push(t);
    }
    let show = |d: Option<DevId>| d.map_or("client".to_string(), |d| d.to_string());
    for ((from, to), list) in channels {
        let mut latest: Option<(usize, genie_srg::EdgeId)> = None;
        for t in list {
            let consumer = srg.edge(t.edge).dst;
            let Some(step) = flow.index_of(consumer) else {
                continue;
            };
            if let Some((blocker_step, blocker)) = latest {
                if step < blocker_step {
                    report.push(
                        cfg,
                        LintCode::TransferOrderHazard,
                        Anchor::Edge(t.edge),
                        format!(
                            "transfer for {} is queued on channel {}→{} behind the \
                             transfer for {} whose consumer runs later (step {step} < \
                             step {blocker_step}): FIFO delivery lands it after its \
                             consumer starts",
                            t.edge,
                            show(from),
                            show(to),
                            blocker
                        ),
                    );
                }
            }
            let advance = match latest {
                Some((blocker_step, _)) => step > blocker_step,
                None => true,
            };
            if advance {
                latest = Some((step, t.edge));
            }
        }
    }
}

/// GA202 — double pinning: the same tensor pinned twice onto the same
/// device within one plan double-counts (and double-occupies) device
/// memory.
pub fn check_double_pinning(facts: &dyn PlanFacts, cfg: &LintConfig, report: &mut Report) {
    let mut seen: BTreeMap<(TensorId, DevId), u64> = BTreeMap::new();
    for (tensor, dev, bytes) in facts.pinned_uploads() {
        if let Some(prev) = seen.insert((tensor, dev), bytes) {
            report.push(
                cfg,
                LintCode::DoublePinnedBuffer,
                Anchor::Device(dev),
                format!(
                    "tensor {tensor} pinned twice on {dev} ({prev} B and {bytes} B): \
                     the duplicate upload double-counts device memory"
                ),
            );
        }
    }
}

/// GA202 across plans: two plans that each pin the same tensor onto the
/// same device will fight over one resident buffer (or silently hold
/// two copies). Cross-plan the intent may be legitimate sharing, so the
/// severity is capped at [`Severity::Warn`].
pub fn check_cross_plan_pinning(plans: &[&dyn PlanFacts], cfg: &LintConfig) -> Report {
    let mut report = Report::new("cross-plan pinning");
    let mut owners: BTreeMap<(TensorId, DevId), String> = BTreeMap::new();
    for plan in plans {
        let subject = plan.subject();
        let mut mine: BTreeSet<(TensorId, DevId)> = BTreeSet::new();
        for (tensor, dev, bytes) in plan.pinned_uploads() {
            if !mine.insert((tensor, dev)) {
                continue; // in-plan duplicate: GA202's own finding
            }
            if let Some(owner) = owners.get(&(tensor, dev)) {
                report.push_capped(
                    cfg,
                    LintCode::DoublePinnedBuffer,
                    Severity::Warn,
                    Anchor::Device(dev),
                    format!(
                        "tensor {tensor} ({bytes} B) pinned on {dev} by both \
                         {owner} and {subject}"
                    ),
                );
            } else {
                owners.insert((tensor, dev), subject.clone());
            }
        }
    }
    report.finish()
}

/// GA203 — static deadlock: build the waits-for graph over compute
/// steps and transfers (data dependencies, transfer issue/landing, and
/// per-channel FIFO delivery order) and reject plans whose waits-for
/// relation is cyclic — at runtime every participant would block
/// forever on the others.
pub fn check_transfer_deadlock(facts: &dyn PlanFacts, cfg: &LintConfig, report: &mut Report) {
    let srg = facts.srg();
    let node_ids: Vec<NodeId> = srg.node_ids().collect();
    let n = node_ids.len();
    let index: BTreeMap<NodeId, usize> = node_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let transfers: Vec<TransferFact> = facts
        .transfers()
        .into_iter()
        .filter(|t| t.edge.index() < srg.edge_count())
        .collect();
    if transfers.is_empty() {
        return;
    }
    let total = n + transfers.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut indeg = vec![0usize; total];
    let connect = |succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
        succs[a].push(b);
        indeg[b] += 1;
    };
    // Data dependencies: a consumer waits for each of its producers.
    for edge in srg.edges() {
        if let (Some(&s), Some(&d)) = (index.get(&edge.src), index.get(&edge.dst)) {
            connect(&mut succs, &mut indeg, s, d);
        }
    }
    // A transfer waits for its source node; its destination node waits
    // for the transfer to land. Channel FIFO: each transfer also waits
    // for the previously-issued transfer on the same channel.
    let mut channel_last: BTreeMap<(Option<DevId>, Option<DevId>), usize> = BTreeMap::new();
    for (k, t) in transfers.iter().enumerate() {
        let v = n + k;
        let edge = srg.edge(t.edge);
        if let Some(&s) = index.get(&edge.src) {
            connect(&mut succs, &mut indeg, s, v);
        }
        if let Some(&d) = index.get(&edge.dst) {
            connect(&mut succs, &mut indeg, v, d);
        }
        if let Some(&prev) = channel_last.get(&(t.from, t.to)) {
            connect(&mut succs, &mut indeg, prev, v);
        }
        channel_last.insert((t.from, t.to), v);
    }
    // Kahn's algorithm; anything left unprocessed sits on or behind a
    // waits-for cycle.
    let mut ready: Vec<usize> = (0..total).filter(|&v| indeg[v] == 0).collect();
    let mut processed = 0usize;
    while let Some(v) = ready.pop() {
        processed += 1;
        for &s in &succs[v] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    if processed == total {
        return;
    }
    // Trim downstream tails so the witness names only the cycle core:
    // repeatedly drop leftovers with no leftover successor.
    let mut leftover: BTreeSet<usize> = (0..total).filter(|&v| indeg[v] > 0).collect();
    loop {
        let tail: Vec<usize> = leftover
            .iter()
            .copied()
            .filter(|&v| succs[v].iter().all(|s| !leftover.contains(s)))
            .collect();
        if tail.is_empty() {
            break;
        }
        for v in tail {
            leftover.remove(&v);
        }
    }
    let involved: Vec<String> = leftover
        .iter()
        .filter_map(|&v| v.checked_sub(n).map(|k| transfers[k].edge.to_string()))
        .collect();
    if involved.is_empty() {
        return; // a cycle purely in the SRG is a graph-level problem
    }
    let anchor = leftover
        .iter()
        .find_map(|&v| v.checked_sub(n).map(|k| Anchor::Edge(transfers[k].edge)))
        .unwrap_or(Anchor::Graph);
    report.push(
        cfg,
        LintCode::TransferDependencyCycle,
        anchor,
        format!(
            "transfer dependency cycle: channel FIFO order contradicts data \
             dependencies (transfers for {} wait on each other)",
            involved.join(", ")
        ),
    );
}

/// GA204 — collective schedule cycle: blocking collectives (all_reduce /
/// all_gather / send_activation) must be reached by every participating
/// device in one consistent global order.
///
/// A device participates in a collective when it produces one of the
/// collective's inputs; it reaches the collective once its *last* such
/// producer has run, so the device's participation order is the
/// collectives sorted by the maximum topological index of its producers.
/// If device A reaches `c1` before `c2` while device B reaches `c2`
/// before `c1`, each blocks in a collective the other has not entered —
/// the NCCL-style deadlock GA203 cannot see because no single transfer
/// channel is involved. The waits-for graph over collectives (one edge
/// per consecutive pair in each device's order) must be acyclic.
pub fn check_collective_deadlock(facts: &dyn PlanFacts, cfg: &LintConfig, report: &mut Report) {
    let srg = facts.srg();
    let collectives: Vec<NodeId> = srg
        .nodes()
        .filter(|n| {
            matches!(
                n.op,
                genie_srg::OpKind::AllReduce
                    | genie_srg::OpKind::AllGather
                    | genie_srg::OpKind::SendActivation
            )
        })
        .map(|n| n.id)
        .collect();
    if collectives.len() < 2 {
        return;
    }
    let Ok(flow) = SrgFlow::new(srg) else {
        return; // cyclic SRG: GA203 / graph passes own that finding
    };
    let index: BTreeMap<NodeId, usize> = collectives
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();

    // Per device: (reach step, collective) for every collective the
    // device feeds.
    let mut orders: BTreeMap<DevId, Vec<(usize, usize)>> = BTreeMap::new();
    for (&c, &ci) in &index {
        let mut reach: BTreeMap<DevId, usize> = BTreeMap::new();
        for e in srg.in_edges(c) {
            let Some(dev) = facts.node_device(e.src) else {
                continue;
            };
            let Some(step) = flow.index_of(e.src) else {
                continue;
            };
            let r = reach.entry(dev).or_insert(step);
            *r = (*r).max(step);
        }
        for (dev, step) in reach {
            orders.entry(dev).or_default().push((step, ci));
        }
    }

    // Waits-for edges between consecutive collectives per device.
    let n = collectives.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let mut blamed_dev: BTreeMap<(usize, usize), DevId> = BTreeMap::new();
    for (dev, mut list) in orders {
        list.sort();
        for pair in list.windows(2) {
            let (a, b) = (pair[0].1, pair[1].1);
            if a != b {
                succs[a].push(b);
                indeg[b] += 1;
                blamed_dev.entry((a, b)).or_insert(dev);
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut processed = 0usize;
    while let Some(v) = ready.pop() {
        processed += 1;
        for &s in &succs[v].clone() {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    if processed == n {
        return;
    }
    let leftover: Vec<usize> = (0..n).filter(|&v| indeg[v] > 0).collect();
    let names: Vec<String> = leftover
        .iter()
        .map(|&v| srg.node(collectives[v]).name.clone())
        .collect();
    let devs: BTreeSet<DevId> = blamed_dev
        .iter()
        .filter(|((a, b), _)| leftover.contains(a) && leftover.contains(b))
        .map(|(_, &d)| d)
        .collect();
    let devs: Vec<String> = devs.iter().map(|d| d.to_string()).collect();
    report.push(
        cfg,
        LintCode::CollectiveScheduleCycle,
        Anchor::Node(collectives[leftover[0]]),
        format!(
            "collective schedule cycle: devices [{}] reach collectives [{}] in \
             contradictory orders — each would block in a collective another \
             device has not entered",
            devs.join(", "),
            names.join(", ")
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_cluster::{GpuSpec, NicSpec};
    use genie_srg::{EdgeId, ElemType, Node, OpKind, Residency, TensorMeta};

    struct FakePlan {
        srg: Srg,
        placements: BTreeMap<NodeId, Option<DevId>>,
        transfers: Vec<TransferFact>,
        pinned: Vec<(TensorId, DevId, u64)>,
    }

    impl PlanFacts for FakePlan {
        fn subject(&self) -> String {
            format!("{}@fake", self.srg.name)
        }
        fn srg(&self) -> &Srg {
            &self.srg
        }
        fn node_device(&self, node: NodeId) -> Option<DevId> {
            self.placements.get(&node).copied().flatten()
        }
        fn transfers(&self) -> Vec<TransferFact> {
            self.transfers.clone()
        }
        fn pinned_uploads(&self) -> Vec<(TensorId, DevId, u64)> {
            self.pinned.clone()
        }
    }

    fn two_dev_topo(mem_capacity: u64) -> (Topology, DevId, DevId) {
        let mut t = Topology::new();
        let h = t.add_host("s", NicSpec::rnic_100g());
        let spec = GpuSpec {
            mem_capacity,
            ..GpuSpec::a100_80gb()
        };
        let d0 = t.add_device(h, spec.clone());
        let d1 = t.add_device(h, spec);
        (t, d0, d1)
    }

    fn xfer(edge: EdgeId, tensor: u64, from: Option<DevId>, to: Option<DevId>) -> TransferFact {
        TransferFact {
            edge,
            tensor: TensorId::new(tensor),
            from,
            to,
            bytes: 64,
            via_handle: false,
        }
    }

    /// A chain `a → b → c` where each value dies as soon as its consumer
    /// runs: the liveness watermark is one value + its consumer's
    /// output, never the sum of all three.
    #[test]
    fn watermark_uses_live_ranges_not_sum() {
        let mut g = Srg::new("chain");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "c"));
        let m = TensorMeta::new([250, 1000], ElemType::F32); // 1 MB each
        g.connect(a, b, m.clone());
        g.connect(b, c, m.clone());
        let d = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "d"));
        g.connect(c, d, m);

        // 2.5 MB device: any two adjacent 1 MB values fit, all three
        // would not. The liveness peak (2 MB: a value plus its
        // consumer's output) fits, while a naive all-values sum (3 MB)
        // would not.
        let (topo, d0, _) = two_dev_topo(2_500_000);
        let plan = FakePlan {
            srg: g,
            placements: [(a, Some(d0)), (b, Some(d0)), (c, Some(d0)), (d, Some(d0))]
                .into_iter()
                .collect(),
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        let state = ClusterState::new();
        let mut r = Report::new("t");
        check_memory_watermark(&plan, &topo, &state, &LintConfig::new(), &mut r);
        let r = r.finish();
        assert!(
            r.with_code(LintCode::DeviceOvercommit).is_empty(),
            "live ranges never overlap more than 2 MB: {r}"
        );
    }

    #[test]
    fn watermark_counts_overlapping_lives() {
        // A fan-out where `a` stays live across both consumers: peak is
        // a + b + c alive together at step c.
        let mut g = Srg::new("fan");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        let c = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "c"));
        let m = TensorMeta::new([250, 1000], ElemType::F32); // 1 MB each
        g.connect(a, b, m.clone());
        g.connect(a, c, m.clone());
        g.connect(b, c, m.clone());
        let d = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "d"));
        g.connect(c, d, m);

        let (topo, d0, _) = two_dev_topo(2_500_000);
        let plan = FakePlan {
            srg: g,
            placements: [(a, Some(d0)), (b, Some(d0)), (c, Some(d0)), (d, Some(d0))]
                .into_iter()
                .collect(),
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        let state = ClusterState::new();
        let mut r = Report::new("t");
        check_memory_watermark(&plan, &topo, &state, &LintConfig::new(), &mut r);
        let r = r.finish();
        let hits = r.with_code(LintCode::DeviceOvercommit);
        assert_eq!(hits.len(), 1, "a+b+c live together = 3 MB > 2.5 MB: {r}");
        assert!(hits[0].message.contains("only 2500000 B are free"), "{r}");
    }

    /// The GA101 pessimism fix: the old sum double-counted a pinned
    /// weight — once as a pinned upload and again as the producing
    /// node's transient — and flagged plans that actually fit.
    #[test]
    fn pinned_backed_value_not_double_counted() {
        let mut g = Srg::new("pin");
        let w = g.add_node(
            Node::new(NodeId::new(0), OpKind::Parameter, "w")
                .with_residency(Residency::PersistentWeight),
        );
        let mm = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
        let e = g.connect(w, mm, TensorMeta::new([1000, 2000], ElemType::F32)); // 8 MB
        let tensor = g.edge(e).tensor;

        // 10 MB free: pinned 8 MB fits; the old 8 MB + 8 MB = 16 MB
        // double count would have flagged it.
        let (topo, d0, _) = two_dev_topo(10_000_000);
        let plan = FakePlan {
            srg: g,
            placements: [(w, Some(d0)), (mm, Some(d0))].into_iter().collect(),
            transfers: Vec::new(),
            pinned: vec![(tensor, d0, 8_000_000)],
        };
        let state = ClusterState::new();

        let mut old = Report::new("old");
        check_device_capacity_pessimistic(&plan, &topo, &state, &LintConfig::new(), &mut old);
        assert_eq!(
            old.finish().with_code(LintCode::DeviceOvercommit).len(),
            1,
            "the pessimistic sum double-counts the pinned weight"
        );

        let mut new = Report::new("new");
        check_memory_watermark(&plan, &topo, &state, &LintConfig::new(), &mut new);
        let new = new.finish();
        assert!(
            new.with_code(LintCode::DeviceOvercommit).is_empty(),
            "liveness charges the pinned weight once: {new}"
        );
    }

    #[test]
    fn cyclic_graph_falls_back_to_warn_level_sum() {
        let mut g = Srg::new("cyc");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "a"));
        let b = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "b"));
        let m = TensorMeta::new([250, 1000], ElemType::F32);
        g.connect(a, b, m.clone());
        g.connect(b, a, m); // cycle: no topological timeline
        let (topo, d0, _) = two_dev_topo(500_000); // 0.5 MB: 1 MB transient overcommits
        let plan = FakePlan {
            srg: g,
            placements: [(a, Some(d0)), (b, Some(d0))].into_iter().collect(),
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        let state = ClusterState::new();
        let mut r = Report::new("t");
        check_memory_watermark(&plan, &topo, &state, &LintConfig::new(), &mut r);
        let r = r.finish();
        let hits = r.with_code(LintCode::DeviceOvercommit);
        assert_eq!(hits.len(), 1, "{r}");
        assert_eq!(hits[0].severity, Severity::Warn, "fallback is warn-capped");
        assert!(!r.has_deny());
    }

    fn ordering_fixture() -> (Srg, NodeId, NodeId, NodeId, EdgeId, EdgeId) {
        // a → early (consumed at step 1), a → late-chain (consumed last).
        let mut g = Srg::new("ord");
        let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
        let early = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "early"));
        let mid = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "mid"));
        let late = g.add_node(Node::new(NodeId::new(0), OpKind::Add, "late"));
        let m = TensorMeta::new([4, 4], ElemType::F32);
        let e_early = g.connect(a, early, m.clone());
        g.connect(early, mid, m.clone());
        g.connect(mid, late, m.clone());
        let e_late = g.connect(a, late, m);
        (g, a, early, late, e_early, e_late)
    }

    #[test]
    fn ga201_inverted_channel_order_flagged() {
        let (g, a, early, late, e_early, e_late) = ordering_fixture();
        let (topo, d0, _) = two_dev_topo(80_000_000_000);
        let _ = topo;
        // Channel client→d0 lists the late consumer's transfer FIRST:
        // FIFO delivery parks the early consumer's payload behind it.
        let plan = FakePlan {
            srg: g,
            placements: [(a, None), (early, Some(d0)), (late, Some(d0))]
                .into_iter()
                .collect(),
            transfers: vec![
                xfer(e_late, 1, None, Some(d0)),
                xfer(e_early, 0, None, Some(d0)),
            ],
            pinned: Vec::new(),
        };
        let mut r = Report::new("t");
        check_transfer_ordering(&plan, &LintConfig::new(), &mut r);
        let r = r.finish();
        let hits = r.with_code(LintCode::TransferOrderHazard);
        assert_eq!(hits.len(), 1, "{r}");
        assert_eq!(hits[0].anchor, Anchor::Edge(e_early), "{r}");
        assert!(r.has_deny());
    }

    #[test]
    fn ga201_consumer_order_is_clean() {
        let (g, a, early, late, e_early, e_late) = ordering_fixture();
        let (_, d0, _) = two_dev_topo(80_000_000_000);
        let plan = FakePlan {
            srg: g,
            placements: [(a, None), (early, Some(d0)), (late, Some(d0))]
                .into_iter()
                .collect(),
            transfers: vec![
                xfer(e_early, 0, None, Some(d0)),
                xfer(e_late, 1, None, Some(d0)),
            ],
            pinned: Vec::new(),
        };
        let mut r = Report::new("t");
        check_transfer_ordering(&plan, &LintConfig::new(), &mut r);
        assert!(r
            .finish()
            .with_code(LintCode::TransferOrderHazard)
            .is_empty());
    }

    #[test]
    fn ga202_in_plan_double_pin_denied() {
        let (g, ..) = ordering_fixture();
        let (_, d0, _) = two_dev_topo(80_000_000_000);
        let plan = FakePlan {
            srg: g,
            placements: BTreeMap::new(),
            transfers: Vec::new(),
            pinned: vec![(TensorId::new(7), d0, 1024), (TensorId::new(7), d0, 1024)],
        };
        let mut r = Report::new("t");
        check_double_pinning(&plan, &LintConfig::new(), &mut r);
        let r = r.finish();
        assert_eq!(r.with_code(LintCode::DoublePinnedBuffer).len(), 1, "{r}");
        assert!(r.has_deny());
    }

    #[test]
    fn ga202_cross_plan_double_pin_warns() {
        let (g, ..) = ordering_fixture();
        let (_, d0, d1) = two_dev_topo(80_000_000_000);
        let mk = |name: &str, dev: DevId| {
            let mut srg = g.clone();
            srg.name = name.into();
            FakePlan {
                srg,
                placements: BTreeMap::new(),
                transfers: Vec::new(),
                pinned: vec![(TensorId::new(7), dev, 1024)],
            }
        };
        let p1 = mk("p1", d0);
        let p2 = mk("p2", d0);
        let p3 = mk("p3", d1); // same tensor, different device: fine
        let r = check_cross_plan_pinning(&[&p1, &p2, &p3], &LintConfig::new());
        let hits = r.with_code(LintCode::DoublePinnedBuffer);
        assert_eq!(hits.len(), 1, "{r}");
        assert_eq!(hits[0].severity, Severity::Warn, "{r}");
        assert!(
            hits[0].message.contains("p1") && hits[0].message.contains("p2"),
            "{r}"
        );
    }

    #[test]
    fn ga203_fifo_against_dataflow_deadlocks() {
        // x → y (cross-device, e2), y → z local, z → w (cross-device,
        // e1). Listing e1's transfer before e2's on the same channel
        // makes e2 wait behind e1, but e1's source z needs e2's payload
        // first: a waits-for cycle.
        let mut g = Srg::new("dl");
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "x"));
        let y = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "y"));
        let z = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "z"));
        let w = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "w"));
        let m = TensorMeta::new([4, 4], ElemType::F32);
        let e2 = g.connect(x, y, m.clone());
        g.connect(y, z, m.clone());
        let e1 = g.connect(z, w, m);
        let (_, d0, d1) = two_dev_topo(80_000_000_000);
        let plan = FakePlan {
            srg: g,
            placements: [(x, Some(d0)), (y, Some(d1)), (z, Some(d1)), (w, Some(d0))]
                .into_iter()
                .collect(),
            // Both transfers share one declared channel (d0→d1), FIFO
            // order [e1, e2]: e2 waits behind e1, while e1's source z
            // transitively needs e2's payload.
            transfers: vec![
                xfer(e1, 2, Some(d0), Some(d1)),
                xfer(e2, 0, Some(d0), Some(d1)),
            ],
            pinned: Vec::new(),
        };
        let mut r = Report::new("t");
        check_transfer_deadlock(&plan, &LintConfig::new(), &mut r);
        let r = r.finish();
        let hits = r.with_code(LintCode::TransferDependencyCycle);
        assert_eq!(hits.len(), 1, "{r}");
        assert!(r.has_deny());
        assert!(hits[0].message.contains("cycle"), "{r}");
    }

    #[test]
    fn ga203_consistent_order_is_clean() {
        let mut g = Srg::new("dl-ok");
        let x = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "x"));
        let y = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "y"));
        let z = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "z"));
        let w = g.add_node(Node::new(NodeId::new(0), OpKind::Output, "w"));
        let m = TensorMeta::new([4, 4], ElemType::F32);
        let e2 = g.connect(x, y, m.clone());
        g.connect(y, z, m.clone());
        let e1 = g.connect(z, w, m);
        let (_, d0, d1) = two_dev_topo(80_000_000_000);
        let plan = FakePlan {
            srg: g,
            placements: [(x, Some(d0)), (y, Some(d1)), (z, Some(d1)), (w, Some(d0))]
                .into_iter()
                .collect(),
            transfers: vec![
                xfer(e2, 0, Some(d0), Some(d1)),
                xfer(e1, 2, Some(d0), Some(d1)),
            ],
            pinned: Vec::new(),
        };
        let mut r = Report::new("t");
        check_transfer_deadlock(&plan, &LintConfig::new(), &mut r);
        assert!(r
            .finish()
            .with_code(LintCode::TransferDependencyCycle)
            .is_empty());
    }

    /// Two collectives whose producers land on two devices in
    /// contradictory orders: d0 reaches c1 early and c2 late, d1 reaches
    /// c2 early and c1 late — each device blocks in a collective the
    /// other has not entered.
    fn collective_fixture(contradictory: bool) -> (Srg, BTreeMap<NodeId, Option<DevId>>) {
        let mut g = Srg::new("coll");
        let m = TensorMeta::new([4, 4], ElemType::F32);
        let p0 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "p0")); // d0 early
        let p1 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "p1")); // d1 early
        let q0 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "q0")); // d0 late
        let q1 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "q1")); // d1 late
        let c1 = g.add_node(Node::new(NodeId::new(0), OpKind::AllReduce, "c1"));
        let c2 = g.add_node(Node::new(NodeId::new(0), OpKind::AllReduce, "c2"));
        g.connect(p0, c1, m.clone());
        g.connect(p1, c2, m.clone());
        if contradictory {
            // c1 also needs d1's LATE producer, c2 also needs d0's late.
            g.connect(q1, c1, m.clone());
            g.connect(q0, c2, m.clone());
        } else {
            // Both devices reach c1 early and c2 late: consistent.
            g.connect(p1, c1, m.clone());
            g.connect(q1, c2, m.clone());
            g.connect(q0, c2, m.clone());
        }
        let (_, d0, d1) = two_dev_topo(80_000_000_000);
        let placements = [
            (p0, Some(d0)),
            (q0, Some(d0)),
            (p1, Some(d1)),
            (q1, Some(d1)),
            (c1, Some(d0)),
            (c2, Some(d1)),
        ]
        .into_iter()
        .collect();
        (g, placements)
    }

    #[test]
    fn ga204_contradictory_collective_orders_denied() {
        let (g, placements) = collective_fixture(true);
        let plan = FakePlan {
            srg: g,
            placements,
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        let mut r = Report::new("t");
        check_collective_deadlock(&plan, &LintConfig::new(), &mut r);
        let r = r.finish();
        let hits = r.with_code(LintCode::CollectiveScheduleCycle);
        assert_eq!(hits.len(), 1, "{r}");
        assert!(r.has_deny());
        assert!(hits[0].message.contains("contradictory orders"), "{r}");
    }

    #[test]
    fn ga204_consistent_collective_order_is_clean() {
        let (g, placements) = collective_fixture(false);
        let plan = FakePlan {
            srg: g,
            placements,
            transfers: Vec::new(),
            pinned: Vec::new(),
        };
        let mut r = Report::new("t");
        check_collective_deadlock(&plan, &LintConfig::new(), &mut r);
        assert!(r
            .finish()
            .with_code(LintCode::CollectiveScheduleCycle)
            .is_empty());
    }

    #[test]
    fn live_sets_match_interval_definition() {
        // Brute force: node n is live at step i iff pos(n) ≤ i ≤
        // last-use(n); the dataflow answer must agree exactly.
        let (g, ..) = ordering_fixture();
        let flow = SrgFlow::new(&g).unwrap();
        let live = live_value_sets(&g).unwrap();
        for (i, set) in live.iter().enumerate() {
            for (pos, &n) in flow.order().iter().enumerate() {
                let last_use = g
                    .successors(n)
                    .into_iter()
                    .filter_map(|s| flow.index_of(s))
                    .max()
                    .unwrap_or(pos);
                let expect = pos <= i && i <= last_use;
                assert_eq!(set.contains(&n), expect, "node {n} at step {i}");
            }
        }
    }
}
