//! # genie-analysis — the semantic lint engine
//!
//! The paper's thesis is that application semantics are *lost in
//! translation* as computation descends the stack; this crate is the gate
//! that keeps the semantics the platform still has **coherent**. Structural
//! well-formedness lives in `genie_srg::validate`; everything semantic —
//! shapes that must compose, phases that must not invert, KV caches that
//! must not leak into arbitrary consumers, plans that must fit device
//! memory — is checked here, as a multi-pass static analyzer with
//! compiler-style diagnostics.
//!
//! Four pass families share one [`diag`] framework and the generic
//! fixpoint solver in [`dataflow`]:
//!
//! - **SRG passes** ([`srg_passes`], codes `GA0xx`) run at capture time —
//!   `genie-frontend` fails fast when a finished capture carries
//!   deny-level findings.
//! - **Plan passes** ([`plan_passes`], codes `GA1xx`) run inside
//!   `genie-scheduler::schedule` as a post-gate over placements and
//!   transfers, reported through the scheduler-neutral
//!   [`plan_passes::PlanFacts`] trait.
//! - **Schedule-timeline passes** ([`schedule_passes`], codes `GA2xx`)
//!   reason over the plan's step timeline: the liveness-based memory
//!   watermark, channel-FIFO transfer-ordering hazards, double pinning,
//!   and static transfer-deadlock detection.
//! - **Precision passes** ([`precision_passes`], codes `GA3xx`)
//!   propagate worst-case error intervals through the graph and deny
//!   plans whose `Criticality`/tolerance annotations demand tighter
//!   bounds than the scheduled kernel tier or device class delivers.
//!
//! Severities and whole families are per-graph configurable via
//! [`LintConfig`]; reports render both human-readable and as JSON
//! (`cargo run -p genie-bench --bin lint_report` emits one per
//! model-zoo workload). Pass runners emit per-pass timing spans and a
//! `genie_lint_findings_total{code}` counter through `genie-telemetry`.
//!
//! ```
//! use genie_analysis::{run_srg_passes, LintConfig};
//! use genie_srg::{ElemType, Node, NodeId, OpKind, Srg, TensorMeta};
//!
//! let mut g = Srg::new("bad");
//! let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
//! let b = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "b"));
//! let mm = g.add_node(Node::new(NodeId::new(0), OpKind::MatMul, "mm"));
//! g.connect(a, mm, TensorMeta::new([2, 3], ElemType::F32));
//! g.connect(b, mm, TensorMeta::new([5, 7], ElemType::F32)); // 3 != 5
//! let report = run_srg_passes(&g, &LintConfig::new());
//! assert!(report.has_deny());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataflow;
pub mod diag;
pub mod plan_passes;
pub mod precision_passes;
pub mod schedule_passes;
pub mod srg_passes;

pub use diag::{Anchor, Diagnostic, LintCode, LintConfig, LintFamily, Report, Severity};
pub use plan_passes::{run_plan_passes, PlanFacts, TransferFact};
pub use precision_passes::{
    check_precision_consistency, device_class_error_factor, elem_eps, error_bounds,
    error_bounds_with, tier_for_node, ErrorBounds, KernelTier, CRITICALITY_SLACK, KERNEL_TIER_ATTR,
    TOLERANCE_ATTR,
};
pub use schedule_passes::{check_cross_plan_pinning, live_value_sets};
pub use srg_passes::run_srg_passes;
