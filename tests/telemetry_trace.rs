//! Integration: cross-layer telemetry — the Perfetto/Chrome trace export
//! over a zoo model, and the metric surface the run leaves behind.

use genie::backend::{simulate_once, simulate_once_faulty};
use genie::models::Workload;
use genie::netsim::{FaultPlan, FaultSchedule, FaultSpec, Nanos, RpcParams};
use genie::prelude::*;
use genie::telemetry::ChromeTrace;

/// Golden-shape test: a scheduled + simulated zoo run exports a
/// Chrome-trace JSON document where every kernel slice carries SRG-node
/// and phase attribution and the device/link tracks are named.
#[test]
fn trace_export_attributes_every_kernel() {
    let w = Workload::ComputerVision;
    let srg = w.spec_graph();
    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
    let report = simulate_once(&plan, &topo, &cost, RpcParams::tensorpipe_python());

    let mut chrome = ChromeTrace::new();
    chrome.push_sim_trace(&report.trace, Some(&srg), Some(&plan.label()));
    let doc: serde_json::Value = serde_json::from_str(&chrome.to_json_string()).unwrap();

    let events = doc["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty(), "trace document must hold events");

    let kernels: Vec<&serde_json::Value> =
        events.iter().filter(|e| e["cat"] == "sim.kernel").collect();
    assert!(!kernels.is_empty(), "simulated run must emit kernel slices");
    for k in &kernels {
        assert_eq!(k["ph"], "X", "kernel events are complete slices");
        assert!(k["dur"].as_f64().unwrap() >= 0.0);
        assert!(
            k["args"]["node"].is_u64(),
            "kernel slice missing SRG node attribution: {k}"
        );
        assert!(
            k["args"]["phase"].is_string(),
            "kernel slice missing phase attribution: {k}"
        );
        assert_eq!(k["args"]["plan"], serde_json::json!(plan.label()));
    }

    // Track naming metadata: a process-name record per simulated pid.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e["name"] == "process_name")
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.iter().any(|n| n.contains("devices")));
    assert!(names.iter().any(|n| n.contains("links")));
}

/// Golden-shape test for injected faults: a run under a fault plan
/// exports its fault windows as instant events in their own `sim.fault`
/// category, at the window's exact simulated timestamps, so Perfetto
/// shows when and why the fabric was degraded.
#[test]
fn trace_export_attributes_fault_windows() {
    let srg = Workload::ComputerVision.spec_graph();
    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
    let faults = FaultPlan::new(
        11,
        FaultSchedule {
            specs: vec![
                FaultSpec::Derate {
                    a: 0,
                    b: 1,
                    factor: 0.5,
                },
                FaultSpec::LinkDown {
                    a: 0,
                    b: 1,
                    from: Nanos::from_millis(2),
                    until: Nanos::from_millis(5),
                },
            ],
        },
    );
    let report = simulate_once_faulty(&plan, &topo, &cost, RpcParams::tensorpipe_python(), &faults);

    let mut chrome = ChromeTrace::new();
    chrome.push_sim_trace(&report.trace, Some(&srg), Some(&plan.label()));
    let doc: serde_json::Value = serde_json::from_str(&chrome.to_json_string()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();

    let fault_events: Vec<&serde_json::Value> =
        events.iter().filter(|e| e["cat"] == "sim.fault").collect();
    assert_eq!(
        fault_events.len(),
        3,
        "derate mark + link-down begin/end: {fault_events:?}"
    );
    for f in &fault_events {
        assert_eq!(f["ph"], "i", "fault windows export as instants");
        let name = f["name"].as_str().unwrap();
        assert!(name.starts_with("fault."), "attributed label: {name}");
    }
    // The window's endpoints land at their exact simulated microseconds.
    let ts_of = |needle: &str| {
        fault_events
            .iter()
            .find(|f| f["name"].as_str().unwrap().contains(needle))
            .unwrap_or_else(|| panic!("no fault event containing {needle}"))["ts"]
            .as_f64()
            .unwrap()
    };
    assert_eq!(ts_of("link_down") /* begin */, 2_000.0);
    assert_eq!(ts_of("end"), 5_000.0);
    // Ordinary marks stay out of the fault category.
    assert!(events
        .iter()
        .filter(|e| e["cat"] == "sim.mark")
        .all(|e| !e["name"].as_str().unwrap_or("").starts_with("fault.")));
}

/// Runtime spans recorded during capture/scheduling surface in the same
/// exported document, and the metrics registry reports the per-device
/// estimate-vs-actual skew gauges after a simulation.
#[test]
fn runtime_spans_and_skew_metrics_surface() {
    let w = Workload::LlmServing;
    let srg = w.spec_graph();
    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
    let _report = simulate_once(&plan, &topo, &cost, RpcParams::rdma_zero_copy());

    let telemetry = genie::telemetry::global();
    let records = telemetry.collector.snapshot();
    let mut chrome = ChromeTrace::new();
    chrome.push_records(&records, Some(&srg));
    let doc: serde_json::Value = serde_json::from_str(&chrome.to_json_string()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    assert!(
        events
            .iter()
            .any(|e| e["name"] == "schedule" && e["cat"] == "scheduler"),
        "scheduling span must appear on the runtime track"
    );
    assert!(
        events
            .iter()
            .any(|e| e["name"] == "sim.execute" && e["cat"] == "backend"),
        "simulation span must appear on the runtime track"
    );

    let snap = telemetry.metrics.snapshot();
    let prom = snap.render_prometheus();
    assert!(prom.contains("genie_sim_device_busy_seconds"));
    assert!(prom.contains("genie_sim_device_estimate_seconds"));
    assert!(prom.contains("genie_sim_kernel_skew_ratio"));
}

/// Golden-shape test for the serving runtime: a pinned-seed serving run
/// exports a stable `serving.step` span track on the simulated-device
/// rows, and its `genie_serving_*` metrics surface in the Prometheus
/// rendering with the expected histogram shape.
#[test]
fn serving_run_exports_spans_and_metrics() {
    use genie::models::TransformerConfig;
    use genie::serving::{ArrivalConfig, ServingConfig, ServingLoop, ServingModel};

    let model = TransformerConfig::gptj_6b();
    let requests = ArrivalConfig {
        seed: 7,
        rate_per_s: 4.0,
        horizon: Nanos::from_secs_f64(2.0),
        prompt_len: (16, 32),
        decode_tokens: (8, 16),
        vocab: model.vocab,
        tenants: 2,
    }
    .generate();
    let conf = ServingConfig::paper_testbed();
    let run = || ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);
    let a = run();
    let b = run();
    assert!(a.completed() > 0, "pinned seed must complete requests");

    // Stable shape: the same seed renders byte-identical trace documents
    // (the report carries its own deterministic span ids, so the export
    // is independent of whatever else the process-global collector saw).
    let doc_of = |r: &genie::serving::ServingReport| {
        let mut chrome = ChromeTrace::new();
        chrome.push_records(&r.spans, None);
        chrome.to_json_string()
    };
    assert_eq!(
        doc_of(&a),
        doc_of(&b),
        "serving trace export must be stable"
    );

    let doc: serde_json::Value = serde_json::from_str(&doc_of(&a)).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let steps: Vec<&serde_json::Value> = events.iter().filter(|e| e["cat"] == "serving").collect();
    assert_eq!(
        steps.len() as u64,
        a.steps,
        "one serving.step slice per engine step"
    );
    for s in &steps {
        assert_eq!(s["name"], "serving.step");
        assert_eq!(s["ph"], "X", "steps are complete slices");
        assert_eq!(s["pid"], 2, "serving steps ride the simulated-device rows");
        assert!(
            s["args"]["members"].is_string(),
            "batch size attributed: {s}"
        );
        assert_eq!(s["args"]["phase"], "llm_decode");
    }

    // Metrics surface: TTFT histogram with the default time bounds, plus
    // request/token counters.
    let snap = genie::telemetry::global().metrics.snapshot();
    let prom = snap.render_prometheus();
    assert!(prom.contains("genie_serving_ttft_seconds_bucket"));
    assert!(prom.contains("genie_serving_ttft_seconds_count"));
    assert!(prom.contains("genie_serving_tokens_total"));
    assert!(prom.contains("genie_serving_requests_total"));
    let hist = snap
        .histogram("genie_serving_ttft_seconds", &[])
        .expect("serving TTFT histogram registered");
    assert!(
        hist.count >= 2 * a.completed() as u64,
        "both pinned runs observed a TTFT per completion"
    );
}
