//! Golden suite for causal blame analysis.
//!
//! Three pins:
//!
//! 1. **Bit-stability** — the pinned-seed blame report serializes to
//!    the same bytes on every run (the whole causal pipeline is a pure
//!    function of the request trace + config).
//! 2. **Fault attribution** — a chaos fault schedule surfaces as
//!    `fault` blame, not inflated `compute` blame: the roofline compute
//!    nanoseconds of a chaotic run stay within the fault-free run's
//!    envelope.
//! 3. **What-if soundness** — replaying the chaos trace with zero
//!    faults predicts a latency no worse than observed, and the
//!    identity scenario reproduces observed TTLT exactly.

use genie::models::TransformerConfig;
use genie::netsim::{FaultPlan, FaultSchedule, FaultSpec, Nanos};
use genie::serving::{ArrivalConfig, ServingConfig, ServingLoop, ServingModel, ServingReport};
use genie::telemetry::causal::{self, WhatIf};

fn requests() -> Vec<genie::serving::ServingRequest> {
    ArrivalConfig {
        seed: 42,
        rate_per_s: 4.0,
        horizon: Nanos::from_secs_f64(3.0),
        prompt_len: (16, 48),
        decode_tokens: (8, 24),
        vocab: 50400,
        tenants: 3,
    }
    .generate()
}

fn run(fault_plan: Option<FaultPlan>) -> ServingReport {
    let mut config = ServingConfig::paper_testbed();
    config.max_batch = 4;
    config.fault_plan = fault_plan;
    config.record_telemetry = false;
    ServingLoop::new(ServingModel::Spec(TransformerConfig::gptj_6b()), config).run(&requests())
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(
        29,
        FaultSchedule {
            specs: vec![
                FaultSpec::Derate {
                    a: 0,
                    b: 1,
                    factor: 0.25,
                },
                FaultSpec::Jitter {
                    a: 0,
                    b: 1,
                    max: Nanos::from_millis(2),
                },
            ],
        },
    )
}

#[test]
fn pinned_seed_blame_is_bit_stable() {
    let a = causal::analyze(&run(None).causal_doc());
    let b = causal::analyze(&run(None).causal_doc());
    assert!(!a.requests.is_empty(), "pinned seed must complete requests");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "same-seed blame must render byte-identically"
    );
    for r in &a.requests {
        assert!(
            (r.fractions.sum() - 1.0).abs() < 1e-6,
            "request {} fractions sum to {}",
            r.request,
            r.fractions.sum()
        );
        assert_eq!(r.blame.total_ns(), r.ttlt_ns);
        assert_eq!(r.critical_path.first().unwrap().start_ns, r.arrival_ns);
        assert_eq!(r.critical_path.last().unwrap().end_ns, r.finished_ns);
    }
}

#[test]
fn chaos_is_blamed_to_fault_not_compute() {
    let clean = causal::analyze(&run(None).causal_doc());
    let chaos = causal::analyze(&run(Some(chaos_plan())).causal_doc());

    let fault_ns: u64 = chaos.requests.iter().map(|r| r.blame.fault_ns).sum();
    assert!(fault_ns > 0, "chaos run must accrue fault blame");
    let clean_fault_ns: u64 = clean.requests.iter().map(|r| r.blame.fault_ns).sum();
    assert_eq!(clean_fault_ns, 0, "fault-free run accrues no fault blame");

    // Compute blame is roofline time, which faults cannot inflate: the
    // worst per-step compute cost is bounded by the full-batch step, so
    // mean per-step compute in the chaotic run stays within 2x of the
    // clean run's (the chaotic run may batch differently, not slower).
    let mean_step_compute = |r: &causal::BlameReport| {
        let compute: u64 = r
            .requests
            .iter()
            .map(|b| b.blame.compute_prefill_ns + b.blame.compute_decode_ns)
            .sum();
        let steps: usize = r.requests.iter().map(|b| b.critical_path.len()).sum();
        compute as f64 / steps.max(1) as f64
    };
    assert!(
        mean_step_compute(&chaos) < 2.0 * mean_step_compute(&clean),
        "fault time must not leak into compute blame"
    );
}

#[test]
fn migrate_blame_is_attributed_and_tiles_the_lifetime() {
    // Disaggregated run with every prefix shipped: `kv.migrate` spans
    // carry request attribution, and migration wire time surfaces as
    // its own blame category while each request's blamed nanoseconds
    // still tile [arrival, finished] exactly.
    use genie::serving::{DisaggConfig, MigrationPolicy};

    let run_disagg = || {
        let mut config = ServingConfig::paper_testbed();
        config.max_batch = 4;
        config.record_telemetry = false;
        let mut d = DisaggConfig::paper_testbed(1);
        d.policy = MigrationPolicy::AlwaysShip;
        config.disagg = Some(d);
        ServingLoop::new(ServingModel::Spec(TransformerConfig::gptj_6b()), config).run(&requests())
    };
    let report = run_disagg();
    assert!(report.migrations > 0, "AlwaysShip must migrate prefixes");

    // Every kv.migrate span names its request and the fabric endpoints.
    let migrate_spans: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name == "kv.migrate")
        .collect();
    assert_eq!(
        migrate_spans.len() as u64,
        report.migrations,
        "one kv.migrate span per migration"
    );
    let mut attributed = std::collections::BTreeSet::new();
    for s in &migrate_spans {
        let request = s.attrs.request.expect("kv.migrate span names a request");
        attributed.insert(request);
        for key in ["from_lane", "to_lane", "bytes", "outcome"] {
            assert!(
                s.attrs.extra.iter().any(|(k, _)| k == key),
                "kv.migrate span for request {request} is missing `{key}`"
            );
        }
    }

    let blame = causal::analyze(&report.causal_doc());
    let migrate_ns: u64 = blame.requests.iter().map(|r| r.blame.migrate_ns).sum();
    assert!(migrate_ns > 0, "shipped prefixes must accrue migrate blame");
    for r in &blame.requests {
        assert!(
            (r.fractions.sum() - 1.0).abs() < 1e-6,
            "request {} fractions sum to {}",
            r.request,
            r.fractions.sum()
        );
        assert_eq!(
            r.blame.total_ns(),
            r.ttlt_ns,
            "request {}: blame (migrate included) must tile its lifetime",
            r.request
        );
        if r.blame.migrate_ns > 0 {
            assert!(
                attributed.contains(&r.request),
                "request {} accrued migrate blame without a kv.migrate span",
                r.request
            );
        }
    }

    // The disaggregated blame pipeline is bit-stable under replay.
    let again = causal::analyze(&run_disagg().causal_doc());
    assert_eq!(blame, again, "same-seed disagg blame must be identical");
}

#[test]
fn zero_fault_what_if_bounds_the_chaos_run() {
    let chaos = causal::analyze(&run(Some(chaos_plan())).causal_doc());
    for r in &chaos.requests {
        assert_eq!(
            WhatIf::observed().replay(r),
            r.ttlt_ns,
            "identity replay reproduces observed TTLT"
        );
        assert!(
            WhatIf::zero_faults().replay(r) <= r.ttlt_ns,
            "removing faults can only help"
        );
        assert!(
            WhatIf::infinite_lanes().replay(r) <= r.ttlt_ns,
            "removing queueing can only help"
        );
    }
    let delta = causal::what_if(&chaos, "zero_faults", &WhatIf::zero_faults());
    assert!(
        delta.predicted_mean_ns <= delta.observed_mean_ns,
        "aggregate zero-fault prediction must not exceed observed"
    );
    assert!(delta.speedup >= 1.0);
}
