//! Wavefront interpretation must be a pure performance optimization:
//! across the whole functional model zoo, `interp::execute` (level-
//! parallel) and `interp::execute_outputs` (level-parallel + value
//! dropping) must produce exactly the same values as the sequential
//! oracle `interp::execute_sequential` — bit for bit, not approximately.

use genie::frontend::capture::{CaptureCtx, CapturedGraph};
use genie::frontend::interp;
use genie::models::{
    CnnConfig, Dlrm, DlrmConfig, KvState, Multimodal, MultimodalConfig, SimpleCnn,
    TransformerConfig, TransformerLm,
};
use genie::srg::NodeId;
use genie::tensor::init;
use genie::tensor::stats::{force_path, Path};

/// Assert the three execution strategies agree exactly on `captured`.
fn assert_wavefront_matches(captured: &CapturedGraph, output: NodeId) {
    let seq = interp::execute_sequential(&captured.srg, &captured.values).expect("sequential");
    let wave = interp::execute(&captured.srg, &captured.values).expect("wavefront");

    assert_eq!(seq.len(), wave.len(), "same set of evaluated nodes");
    for (id, v) in &seq {
        assert_eq!(Some(v), wave.get(id), "node {id:?} diverged");
    }

    let outs =
        interp::execute_outputs(&captured.srg, &captured.values, &[output]).expect("outputs");
    assert_eq!(Some(&outs[0]), seq.get(&output), "output diverged");
}

#[test]
fn transformer_prefill_wavefront_matches_sequential() {
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 11);
    let prompt: Vec<i64> = (0..12).map(|i| i % 32).collect();
    let ctx = CaptureCtx::new("llm.prefill");
    let cap = model.capture_prefill(&ctx, &prompt);
    cap.logits.mark_output();
    let out = cap.logits.node;
    assert_wavefront_matches(&ctx.finish(), out);
}

#[test]
fn transformer_decode_step_wavefront_matches_sequential() {
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 11);
    let cfg = &model.config;
    let kv = KvState {
        k: (0..cfg.layers)
            .map(|l| init::randn([4, cfg.d_model], 100 + l as u64))
            .collect(),
        v: (0..cfg.layers)
            .map(|l| init::randn([4, cfg.d_model], 200 + l as u64))
            .collect(),
    };
    let ctx = CaptureCtx::new("llm.decode");
    let cap = model.capture_decode_step(&ctx, 3, &kv);
    cap.logits.mark_output();
    let out = cap.logits.node;
    assert_wavefront_matches(&ctx.finish(), out);
}

#[test]
fn cnn_inference_wavefront_matches_sequential() {
    let cfg = CnnConfig::tiny();
    let model = SimpleCnn::new_functional(cfg.clone(), 5);
    let pixels = init::randn([2, 3, cfg.image_size, cfg.image_size], 42);
    let ctx = CaptureCtx::new("cnn.inference");
    let scores = model.capture_inference(&ctx, 2, Some(pixels));
    scores.mark_output();
    let out = scores.node;
    assert_wavefront_matches(&ctx.finish(), out);
}

#[test]
fn dlrm_inference_wavefront_matches_sequential() {
    let cfg = DlrmConfig::tiny();
    let model = Dlrm::new_functional(cfg.clone(), 9);
    let ids: Vec<Vec<i64>> = (0..cfg.tables)
        .map(|t| {
            (0..cfg.lookups_per_table)
                .map(|i| ((t * 17 + i * 5) % cfg.rows_per_table) as i64)
                .collect()
        })
        .collect();
    let dense = init::randn([1, cfg.dense_features], 8);
    let ctx = CaptureCtx::new("dlrm.inference");
    let logit = model.capture_inference(&ctx, &ids, Some(dense));
    logit.mark_output();
    let out = logit.node;
    assert_wavefront_matches(&ctx.finish(), out);
}

/// Build the full functional model zoo as named captures.
fn zoo_captures() -> Vec<(&'static str, CapturedGraph)> {
    let mut zoo = Vec::new();

    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 11);
    let prompt: Vec<i64> = (0..12).map(|i| i % 32).collect();
    let ctx = CaptureCtx::new("llm.prefill");
    model.capture_prefill(&ctx, &prompt).logits.mark_output();
    zoo.push(("llm.prefill", ctx.finish()));

    let cfg = &model.config;
    let kv = KvState {
        k: (0..cfg.layers)
            .map(|l| init::randn([4, cfg.d_model], 100 + l as u64))
            .collect(),
        v: (0..cfg.layers)
            .map(|l| init::randn([4, cfg.d_model], 200 + l as u64))
            .collect(),
    };
    let ctx = CaptureCtx::new("llm.decode");
    model.capture_decode_step(&ctx, 3, &kv).logits.mark_output();
    zoo.push(("llm.decode", ctx.finish()));

    let cfg = CnnConfig::tiny();
    let model = SimpleCnn::new_functional(cfg.clone(), 5);
    let pixels = init::randn([2, 3, cfg.image_size, cfg.image_size], 42);
    let ctx = CaptureCtx::new("cnn.inference");
    model.capture_inference(&ctx, 2, Some(pixels)).mark_output();
    zoo.push(("cnn.inference", ctx.finish()));

    let cfg = DlrmConfig::tiny();
    let model = Dlrm::new_functional(cfg.clone(), 9);
    let ids: Vec<Vec<i64>> = (0..cfg.tables)
        .map(|t| {
            (0..cfg.lookups_per_table)
                .map(|i| ((t * 17 + i * 5) % cfg.rows_per_table) as i64)
                .collect()
        })
        .collect();
    let dense = init::randn([1, cfg.dense_features], 8);
    let ctx = CaptureCtx::new("dlrm.inference");
    model
        .capture_inference(&ctx, &ids, Some(dense))
        .mark_output();
    zoo.push(("dlrm.inference", ctx.finish()));

    let cfg = MultimodalConfig::tiny();
    let model = Multimodal::new_functional(cfg.clone(), 13);
    let question: Vec<i64> = (0..6).map(|i| i % cfg.text.vocab as i64).collect();
    let pixels = init::randn([1, 3, cfg.vision.image_size, cfg.vision.image_size], 21);
    let ctx = CaptureCtx::new("vqa.inference");
    model
        .capture_inference(&ctx, &question, Some(pixels))
        .mark_output();
    zoo.push(("vqa.inference", ctx.finish()));

    zoo
}

#[test]
fn zoo_forced_simd_is_bitwise_identical_to_forced_scalar() {
    // The SIMD tier keeps one f32 accumulator per output element and
    // walks reductions in the scalar order, so forcing it must change
    // nothing — bit for bit — across every zoo model. One test walks the
    // whole zoo because `force_path` is process-global and the forced
    // sections must not interleave.
    let run = |captured: &CapturedGraph, path: Path| {
        force_path(Some(path));
        let out = interp::execute_sequential(&captured.srg, &captured.values);
        force_path(None);
        out.expect("forced execution succeeds")
    };
    for (name, captured) in &zoo_captures() {
        let scalar = run(captured, Path::Scalar);
        let simd = run(captured, Path::Simd);
        assert_eq!(scalar.len(), simd.len(), "{name}: same nodes evaluated");
        for (id, v) in &scalar {
            assert_eq!(Some(v), simd.get(id), "{name}: node {id:?} diverged");
        }
    }
}

#[test]
fn multimodal_inference_wavefront_matches_sequential() {
    let cfg = MultimodalConfig::tiny();
    let model = Multimodal::new_functional(cfg.clone(), 13);
    let question: Vec<i64> = (0..6).map(|i| i % cfg.text.vocab as i64).collect();
    let pixels = init::randn([1, 3, cfg.vision.image_size, cfg.vision.image_size], 21);
    let ctx = CaptureCtx::new("vqa.inference");
    let scores = model.capture_inference(&ctx, &question, Some(pixels));
    scores.mark_output();
    let out = scores.node;
    assert_wavefront_matches(&ctx.finish(), out);
}
