//! Integration: lineage-based fault tolerance across the real transport.
//!
//! A decode-style session builds remote state, the device crashes
//! mid-loop, recovery replays the minimal recipe set on the same server,
//! and generation continues to produce exactly the tokens an unfailed run
//! produces (§3.5: "recovery of long-running decode loops").

use genie::backend::{spawn_server, RemoteSession};
use genie::lineage::{
    is_state_loss, recover, CommitLog, LineageLog, PendingOutput, Recipe, RemoteReplayer,
};
use genie::prelude::*;
use genie::tensor::Tensor;
use std::collections::BTreeSet;

/// A deterministic "decode step": state' = relu(state + client_input(i)).
fn step_recipe(i: usize) -> Recipe {
    let ctx = CaptureCtx::new(format!("step{i}"));
    let prev = ctx.input("prev", [4], ElemType::F32, None);
    let inc = ctx.input(
        "inc",
        [4],
        ElemType::F32,
        Some(Tensor::full([4], (i + 1) as f32)),
    );
    let y = prev.add(&inc).relu();
    y.mark_output();
    let mut cap = ctx.finish();
    cap.values.remove(&prev.node);
    Recipe {
        defines: "state".into(),
        cap,
        handle_inputs: vec![(prev.node, "state".into())],
        output: y.node,
    }
}

fn seed_recipe() -> Recipe {
    let ctx = CaptureCtx::new("seed");
    let x = ctx.input(
        "x",
        [4],
        ElemType::F32,
        Some(Tensor::from_vec([4], vec![0.5, -1.0, 2.0, 0.0])),
    );
    let y = x.relu();
    y.mark_output();
    Recipe {
        defines: "state".into(),
        cap: ctx.finish(),
        handle_inputs: vec![],
        output: y.node,
    }
}

fn run_recipe(
    session: &mut RemoteSession,
    r: &Recipe,
) -> Result<(), genie::transport::TransportError> {
    let handle_refs: Vec<(genie::srg::NodeId, &str)> = r
        .handle_inputs
        .iter()
        .map(|(n, s)| (*n, s.as_str()))
        .collect();
    session
        .execute(&r.cap, &handle_refs, &[], &[(r.output, r.defines.as_str())])
        .map(|_| ())
}

#[test]
fn recovery_mid_session_is_exact() {
    // Reference: an unfailed run of 6 steps.
    let (server_a, _) = spawn_server().unwrap();
    let mut clean = RemoteSession::connect(server_a.addr()).unwrap();
    let seed = seed_recipe();
    run_recipe(&mut clean, &seed).unwrap();
    for i in 0..6 {
        run_recipe(&mut clean, &step_recipe(i)).unwrap();
    }
    let expected = clean.fetch("state").unwrap();

    // Failing run: crash after step 3, recover, continue.
    let (server_b, exec) = spawn_server().unwrap();
    let mut session = RemoteSession::connect(server_b.addr()).unwrap();
    let mut log = LineageLog::new();
    let seed = seed_recipe();
    run_recipe(&mut session, &seed).unwrap();
    log.record(seed);
    for i in 0..4 {
        let r = step_recipe(i);
        run_recipe(&mut session, &r).unwrap();
        log.record(r);
    }

    // 💥 device loss.
    let lost = session.inject_crash().unwrap();
    assert_eq!(exec.resident_count(), 0);
    let lost_names: Vec<String> = lost.iter().map(|(n, _)| n.clone()).collect();

    // A stale-handle attempt is detected as state loss.
    let probe = step_recipe(99);
    session.handles.bind("state", lost[0].1);
    let err = run_recipe(&mut session, &probe).unwrap_err();
    assert!(is_state_loss(&err), "stale handle must classify as loss");
    session.handles.unbind("state");

    // Recover and continue the remaining steps.
    let report = recover(
        &log,
        &lost_names,
        &BTreeSet::new(),
        &mut RemoteReplayer {
            session: &mut session,
        },
    )
    .unwrap();
    assert_eq!(report.replayed.len(), log.len(), "all state was lost");

    for i in 4..6 {
        run_recipe(&mut session, &step_recipe(i)).unwrap();
    }
    let recovered = session.fetch("state").unwrap();
    assert_eq!(
        recovered.as_f("state").data(),
        expected.as_f("state").data(),
        "post-recovery continuation must match the unfailed run exactly"
    );
}

#[test]
fn partition_mid_decode_loop_replays_exactly() {
    use genie::backend::{classify_error, ErrorClass};
    use genie::transport::RetryPolicy;

    // Reference: an unfailed run of 6 steps.
    let (server_a, _) = spawn_server().unwrap();
    let mut clean = RemoteSession::connect(server_a.addr()).unwrap();
    run_recipe(&mut clean, &seed_recipe()).unwrap();
    for i in 0..6 {
        run_recipe(&mut clean, &step_recipe(i)).unwrap();
    }
    let expected = clean.fetch("state").unwrap();

    // Chaotic run: the serving host is partitioned away after step 3 —
    // the server vanishes mid-loop, taking all pinned state with it.
    let (server_b, _exec_b) = spawn_server().unwrap();
    let mut session = RemoteSession::connect_with(server_b.addr(), RetryPolicy::fast()).unwrap();
    let mut log = LineageLog::new();
    let seed = seed_recipe();
    run_recipe(&mut session, &seed).unwrap();
    log.record(seed);
    for i in 0..4 {
        let r = step_recipe(i);
        run_recipe(&mut session, &r).unwrap();
        log.record(r);
    }

    // 💥 network partition: even retries cannot reach the host.
    drop(server_b);
    let err = run_recipe(&mut session, &step_recipe(4)).unwrap_err();
    assert!(
        is_state_loss(&err),
        "a severed session must classify as state loss, got {err}"
    );
    assert_eq!(classify_error(&err), ErrorClass::StateLoss);
    let lost_names: Vec<String> = session
        .handles
        .invalidate_all()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert_eq!(lost_names, vec!["state".to_string()]);

    // Recovery re-plans onto a reachable standby and replays lineage.
    let (server_c, _exec_c) = spawn_server().unwrap();
    let mut session = RemoteSession::connect(server_c.addr()).unwrap();
    let report = recover(
        &log,
        &lost_names,
        &BTreeSet::new(),
        &mut RemoteReplayer {
            session: &mut session,
        },
    )
    .unwrap();
    assert_eq!(report.replayed.len(), log.len(), "all state was lost");

    // The decode loop continues where it left off — step 4 never landed.
    for i in 4..6 {
        run_recipe(&mut session, &step_recipe(i)).unwrap();
    }
    let recovered = session.fetch("state").unwrap();
    assert_eq!(
        recovered.as_f("state").data(),
        expected.as_f("state").data(),
        "post-partition continuation must match the unfailed run exactly"
    );
}

#[test]
fn external_outputs_stay_idempotent_across_replay() {
    // Tokens emitted before a crash must not re-emit when the replay
    // regenerates them.
    let mut commits: CommitLog<i64> = CommitLog::new();

    // Pre-crash: steps 0..3 emit tokens and commit.
    for seq in 0..3u64 {
        assert!(commits.stage(PendingOutput {
            key: 1,
            epoch: 0,
            seq,
            value: 100 + seq as i64,
        }));
    }
    let emitted = commits.commit();
    assert_eq!(emitted, vec![100, 101, 102]);

    // Replay regenerates the same scoped outputs: all dropped.
    for seq in 0..3u64 {
        assert!(!commits.stage(PendingOutput {
            key: 1,
            epoch: 0,
            seq,
            value: 100 + seq as i64,
        }));
    }
    // Fresh post-recovery steps continue the stream.
    assert!(commits.stage(PendingOutput {
        key: 1,
        epoch: 0,
        seq: 3,
        value: 103,
    }));
    commits.commit();
    assert_eq!(commits.committed(), &[100, 101, 102, 103]);
}

#[test]
fn partial_survival_minimizes_replay() {
    // With the seed surviving (e.g. checkpointed), only the step chain
    // replays.
    let mut log = LineageLog::new();
    log.record(seed_recipe());
    for i in 0..5 {
        log.record(step_recipe(i));
    }
    let surviving: BTreeSet<String> = BTreeSet::new();
    let full = log.replay_set(&["state".into()], &surviving);
    assert_eq!(full.len(), 6);

    // Note: because every step redefines "state", survival of the *name*
    // cuts everything — model a checkpoint by marking it surviving.
    let surviving: BTreeSet<String> = ["state".to_string()].into_iter().collect();
    let cut = log.replay_set(&[], &surviving);
    assert!(cut.is_empty());
}
