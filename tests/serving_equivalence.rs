//! Differential suite: the continuous-batching serving loop is pinned
//! bit-for-bit to the sequential per-request oracle.
//!
//! For every functional zoo transformer, across arrival seeds and batch
//! sizes, each completed request's token stream must equal
//! `TransformerLm::generate(prompt, total_tokens)` exactly — including
//! through forced KV eviction and lineage-style re-prefill, where the
//! engine rebuilds a victim's cache from prompt + generated prefix.

use genie::cluster::GpuSpec;
use genie::models::functional_transformers;
use genie::netsim::Nanos;
use genie::serving::{ArrivalConfig, ServingConfig, ServingLoop, ServingModel, ServingRequest};

fn roomy_config(max_batch: usize) -> ServingConfig {
    ServingConfig {
        lanes: 1,
        max_batch,
        batched: true,
        kv_capacity_bytes: 1 << 30,
        queue_budget: Nanos::from_secs_f64(1e6),
        max_queue: 10_000,
        gpu: GpuSpec::a100_80gb(),
        link_bandwidth_bps: 25e9,
        link_latency_s: 250e-6,
        fault_plan: None,
        slo: genie::serving::SloConfig::paper_default(),
        record_telemetry: false,
        disagg: None,
        shard: None,
    }
}

#[test]
fn serving_tokens_match_sequential_oracle_across_zoo_seeds_and_batches() {
    for (name, m) in functional_transformers() {
        for seed in [1u64, 7, 42, 1009] {
            let requests = ArrivalConfig {
                seed,
                rate_per_s: 40.0,
                horizon: Nanos::from_secs_f64(0.25),
                prompt_len: (2, 6),
                decode_tokens: (2, 5),
                vocab: m.config.vocab,
                tenants: 2,
            }
            .generate();
            assert!(!requests.is_empty(), "{name} seed {seed}: empty trace");
            let oracle: Vec<(u64, Vec<i64>)> = requests
                .iter()
                .map(|r| (r.id, m.generate(&r.prompt, r.total_tokens)))
                .collect();
            for max_batch in [1usize, 2, 8] {
                let report =
                    ServingLoop::new(ServingModel::Functional(m.clone()), roomy_config(max_batch))
                        .run(&requests);
                assert_eq!(
                    report.completed(),
                    requests.len(),
                    "{name} seed {seed} batch {max_batch}: everyone must complete"
                );
                for (id, want) in &oracle {
                    assert_eq!(
                        report.tokens_for(*id),
                        Some(want.as_slice()),
                        "{name} seed {seed} batch {max_batch} request {id}: \
                         batched decode diverged from the sequential oracle"
                    );
                }
            }
        }
    }
}

#[test]
fn eviction_and_reprefill_preserve_oracle_tokens() {
    for (name, m) in functional_transformers() {
        // Capacity of 15 KV tokens: two 4-token prompts prefill fine, but
        // their caches outgrow the lane mid-decode, forcing an LRU
        // eviction of a request that already generated tokens and, later,
        // a real re-prefill over prompt + prefix.
        let mut conf = roomy_config(2);
        conf.kv_capacity_bytes = 15 * m.config.kv_bytes_per_token();
        let requests: Vec<ServingRequest> = (1..=2u64)
            .map(|id| ServingRequest {
                id,
                tenant: 0,
                arrival: Nanos::ZERO,
                prompt: vec![id as i64, 1, 2, 3],
                total_tokens: 12,
            })
            .collect();
        let report = ServingLoop::new(ServingModel::Functional(m.clone()), conf).run(&requests);
        assert!(report.preemptions >= 1, "{name}: tight capacity must evict");
        assert!(report.reprefills >= 1, "{name}: evictee must re-prefill");
        for r in &requests {
            let want = m.generate(&r.prompt, r.total_tokens);
            assert_eq!(
                report.tokens_for(r.id),
                Some(want.as_slice()),
                "{name} request {}: re-prefill must restore exact KV state",
                r.id
            );
        }
    }
}

#[test]
fn functional_serving_replays_bit_identically() {
    let (_, m) = functional_transformers().remove(0);
    let requests = ArrivalConfig {
        seed: 5,
        rate_per_s: 40.0,
        horizon: Nanos::from_secs_f64(0.2),
        prompt_len: (2, 5),
        decode_tokens: (2, 4),
        vocab: m.config.vocab,
        tenants: 2,
    }
    .generate();
    let a = ServingLoop::new(ServingModel::Functional(m.clone()), roomy_config(4)).run(&requests);
    let b = ServingLoop::new(ServingModel::Functional(m), roomy_config(4)).run(&requests);
    assert_eq!(a.events, b.events, "same inputs must replay identically");
    assert_eq!(a.outcomes, b.outcomes);
}
