//! Integration: the full capture → annotate → schedule → simulate
//! pipeline across workloads and policies, checking plan invariants and
//! the cross-policy orderings the paper's argument rests on.

use genie::backend::simulate_once;
use genie::models::Workload;
use genie::netsim::RpcParams;
use genie::prelude::*;
use genie::scheduler::Location;

fn plan_for(w: Workload, policy: &dyn Policy, topo: &Topology) -> genie::scheduler::ExecutionPlan {
    let srg = w.spec_graph();
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    genie::scheduler::schedule(&srg, topo, &state, &cost, policy)
}

#[test]
fn every_workload_plans_under_every_policy() {
    let topo = Topology::rack(4, 25e9);
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(RoundRobin),
        Box::new(LeastLoaded),
        Box::new(DataAware),
        Box::new(SemanticsAware::new()),
    ];
    for w in Workload::ALL {
        for p in &policies {
            let plan = plan_for(w, p.as_ref(), &topo);
            // Invariant: every node is placed.
            assert_eq!(
                plan.placements.len(),
                plan.srg.node_count(),
                "{:?}/{}",
                w,
                plan.policy
            );
            // Invariant: every cross-location edge is covered by a
            // transfer, a pinned upload, or a handle reference.
            for edge in plan.srg.edges() {
                let src = plan.location(edge.src);
                let dst = plan.location(edge.dst);
                if src != dst {
                    let covered = plan.transfers.iter().any(|t| t.edge == edge.id)
                        || plan
                            .pinned_uploads
                            .iter()
                            .any(|(t, _, _)| *t == edge.tensor);
                    assert!(covered, "{:?}: uncovered edge {}", w, edge.id);
                }
            }
            // Invariant: sources sit on the client.
            for node in plan.srg.nodes() {
                if node.op.is_source() {
                    assert_eq!(plan.location(node.id), Location::ClientCpu);
                }
            }
        }
    }
}

#[test]
fn semantics_aware_dominates_blind_policies_on_llm() {
    let topo = Topology::rack(4, 25e9);
    let aware = plan_for(Workload::LlmServing, &SemanticsAware::new(), &topo);
    for blind in [&RoundRobin as &dyn Policy, &LeastLoaded] {
        let plan = plan_for(Workload::LlmServing, blind, &topo);
        let blind_recurring: u64 = plan
            .transfers
            .iter()
            .filter(|t| !t.via_handle)
            .map(|t| t.bytes)
            .sum();
        let aware_recurring: u64 = aware
            .transfers
            .iter()
            .filter(|t| !t.via_handle)
            .map(|t| t.bytes)
            .sum();
        assert!(
            blind_recurring > aware_recurring * 50,
            "{}: {blind_recurring} vs {aware_recurring}",
            plan.policy
        );
    }
}

#[test]
fn simulation_agrees_with_plan_estimates_directionally() {
    let topo = Topology::paper_testbed();
    let cost = CostModel::paper_stack();
    let aware = plan_for(Workload::LlmServing, &SemanticsAware::new(), &topo);
    let blind = plan_for(Workload::LlmServing, &RoundRobin, &topo);
    let ra = simulate_once(&aware, &topo, &cost, RpcParams::tensorpipe_python());
    let rb = simulate_once(&blind, &topo, &cost, RpcParams::tensorpipe_python());
    assert!(ra.makespan_s <= rb.makespan_s);
    assert!(ra.network_bytes <= rb.network_bytes);
}

#[test]
fn rewrites_preserve_semantics_and_reduce_nodes() {
    let srg = Workload::ComputerVision.spec_graph();
    let (fused, eliminated) = genie::scheduler::rewrite::fuse_elementwise_chains(&srg);
    assert!(genie::srg::validate::validate(&fused).is_empty());
    assert_eq!(fused.node_count() + eliminated, srg.node_count());
    // Total cost is conserved by fusion.
    let before: f64 = srg.total_flops();
    let after: f64 = fused.total_flops();
    assert!((before - after).abs() / before < 1e-9);
}

#[test]
fn plans_are_deterministic() {
    let topo = Topology::rack(3, 25e9);
    let a = plan_for(Workload::Recommendation, &SemanticsAware::new(), &topo);
    let b = plan_for(Workload::Recommendation, &SemanticsAware::new(), &topo);
    assert_eq!(a.placements, b.placements);
    assert_eq!(a.transfers.len(), b.transfers.len());
    assert_eq!(a.network_bytes(), b.network_bytes());
}

#[test]
fn multimodal_lands_by_modality_affinity_in_global_scheduler() {
    use genie::scheduler::global::tenant::{Slo, TenantRequest};
    use genie::scheduler::global::GlobalScheduler;

    let topo = Topology::heterogeneous_fleet(1, 25e9);
    let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
    for (id, w) in [
        (1u64, Workload::LlmServing),
        (2, Workload::ComputerVision),
        (3, Workload::Recommendation),
        (4, Workload::Multimodal),
    ] {
        sched.admit(TenantRequest {
            id,
            name: format!("t{id}"),
            srg: w.spec_graph(),
            slo: Slo::Interactive,
            model_fingerprint: id,
        });
    }
    let fleet = sched.plan_round();
    // The production DLRM (66 GB of tables) exceeds the 24 GB inference
    // tier and is rejected by admission control; the rest plan.
    assert_eq!(fleet.plans.len() + fleet.rejected.len(), 4);
    assert!(fleet.plans.len() >= 3);
    // Admitted tenants produce valid plans with distinct affinity
    // placements for at least two classes.
    let classes: std::collections::BTreeSet<_> = fleet
        .assignments
        .values()
        .flat_map(|devs| devs.iter().map(|d| topo.device(*d).spec.class))
        .collect();
    assert!(
        classes.len() >= 2,
        "fleet must use multiple tiers: {classes:?}"
    );
}
