//! Integration: the chaos harness (§4g) — seeded fault schedules swept
//! across the model zoo on both planes.
//!
//! The invariant under test, everywhere: a chaotic run either matches
//! its fault-free oracle **bit-identically** or fails with a clean typed
//! [`TransportError`] — never a panic, a hang, or wrong numerics.
//!
//! Seeds come from `GENIE_CHAOS_SEEDS` (comma-separated) when set, so a
//! failing CI seed reproduces locally with e.g.
//! `GENIE_CHAOS_SEEDS=47 cargo test --test chaos_fabric`.

use genie::backend::{classify_error, spawn_chaotic_server, spawn_server, ErrorClass};
use genie::chaos::ChaosConfig;
use genie::models::Workload;
use genie::netsim::{FaultSchedule, FaultSpec};
use genie::prelude::*;
use genie::tensor::Tensor;
use genie::transport::TransportError;
use std::sync::Mutex;

/// The retry/fault counters are process-global; tests that assert exact
/// deltas (the oracle's zero-injection invariant) must not interleave
/// with tests that grow them. Each test holds this for its duration.
static METRICS_GATE: Mutex<()> = Mutex::new(());

fn metrics_gate() -> std::sync::MutexGuard<'static, ()> {
    METRICS_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn chaos_seeds() -> Vec<u64> {
    if let Ok(env) = std::env::var("GENIE_CHAOS_SEEDS") {
        let seeds: Vec<u64> = env
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        if !seeds.is_empty() {
            return seeds;
        }
    }
    vec![3, 7, 11, 29, 42, 47, 101, 1009]
}

/// Simulation plane: every seed × every zoo family schedules and runs to
/// completion under its fault schedule. Faults never corrupt traffic
/// accounting — they slow the run down, or (under partition) the
/// scheduler falls back to the client and ships strictly less.
#[test]
fn seeded_schedules_degrade_every_zoo_family_gracefully() {
    let _gate = metrics_gate();
    let seeds = chaos_seeds();
    for w in Workload::ALL {
        let srg = w.spec_graph();
        for &seed in &seeds {
            let cfg = ChaosConfig::for_testbed(seed);
            assert!(!cfg.is_oracle(), "seed {seed}: generated schedule is empty");
            let run = cfg.run_sim(&srg);
            eprintln!(
                "chaos seed {seed} {}: oracle {:.4}s faulty {:.4}s rerouted={}",
                w.name(),
                run.oracle.makespan_s,
                run.faulty.makespan_s,
                run.rerouted
            );
            assert!(
                run.faulty.makespan_s.is_finite(),
                "seed {seed} {}: non-finite makespan",
                w.name()
            );
            if run.rerouted {
                // Partitioned: work fell back to the client, which can
                // only reduce what crosses the wire.
                assert!(
                    run.faulty.network_bytes <= run.oracle.network_bytes,
                    "seed {seed} {}: reroute must not ship more",
                    w.name()
                );
            } else {
                // Derate/jitter only: identical traffic, no faster.
                assert_eq!(
                    run.faulty.network_bytes,
                    run.oracle.network_bytes,
                    "seed {seed} {}: faults must not change traffic",
                    w.name()
                );
                assert!(
                    run.faulty.makespan_s >= run.oracle.makespan_s,
                    "seed {seed} {}: faulted run faster than oracle ({} < {})",
                    w.name(),
                    run.faulty.makespan_s,
                    run.oracle.makespan_s
                );
            }
        }
    }
}

/// Same seed, same timeline: the whole simulated fault story is a pure
/// function of the seed.
#[test]
fn same_seed_same_outcome_twice() {
    let _gate = metrics_gate();
    let srg = Workload::ComputerVision.spec_graph();
    for seed in chaos_seeds() {
        let cfg = ChaosConfig::for_testbed(seed);
        let a = cfg.run_sim(&srg);
        let b = cfg.run_sim(&srg);
        assert_eq!(
            a.faulty.makespan_s, b.faulty.makespan_s,
            "seed {seed}: replay diverged"
        );
        assert_eq!(a.faulty.network_bytes, b.faulty.network_bytes);
        assert_eq!(a.rerouted, b.rerouted);
    }
}

/// Drive a short decode-style loop (state' = relu(state + i)) against
/// `session`, returning the final state vector or the first typed error.
fn drive_decode_loop(
    session: &mut RemoteSession,
    steps: usize,
) -> Result<Vec<f32>, TransportError> {
    let ctx = CaptureCtx::new("seed");
    let x = ctx.input(
        "x",
        [4],
        ElemType::F32,
        Some(Tensor::from_vec([4], vec![0.5, -1.0, 2.0, 0.0])),
    );
    let y = x.relu();
    y.mark_output();
    let cap = ctx.finish();
    session.execute(&cap, &[], &[], &[(y.node, "state")])?;

    for i in 0..steps {
        let ctx = CaptureCtx::new(format!("step{i}"));
        let prev = ctx.input("prev", [4], ElemType::F32, None);
        let inc = ctx.input(
            "inc",
            [4],
            ElemType::F32,
            Some(Tensor::full([4], (i + 1) as f32)),
        );
        let y = prev.add(&inc).relu();
        y.mark_output();
        let mut cap = ctx.finish();
        cap.values.remove(&prev.node);
        session.execute(&cap, &[(prev.node, "state")], &[], &[(y.node, "state")])?;
    }
    let state = session.fetch("state")?;
    Ok(state.as_f("state").data().to_vec())
}

/// What the loop computes, eagerly: relu carries every positive lane.
fn decode_loop_oracle(steps: usize) -> Vec<f32> {
    let mut state = [0.5f32, -1.0, 2.0, 0.0].map(|v| v.max(0.0));
    for i in 0..steps {
        for lane in &mut state {
            *lane = (*lane + (i + 1) as f32).max(0.0);
        }
    }
    state.to_vec()
}

/// Functional plane: the same decode loop against a chaotic server (the
/// seed's transport policy drops ~25% of replies and stalls ~10% past the
/// client deadline). Retry + server-side request-id dedup must yield the
/// oracle's exact bits — or give up with a clean typed error that the
/// recovery layer can classify. Never a panic, never wrong numerics.
#[test]
fn chaotic_transport_is_exact_or_typed_error() {
    let _gate = metrics_gate();
    const STEPS: usize = 5;
    let expected = decode_loop_oracle(STEPS);
    let retries = || {
        genie::telemetry::global()
            .metrics
            .snapshot()
            .counter("genie_rpc_retries_total", &[])
            .unwrap_or(0)
    };

    let before = retries();
    let mut completed = 0usize;
    for seed in chaos_seeds() {
        let cfg = ChaosConfig::for_testbed(seed);
        let (server, exec) = spawn_chaotic_server(cfg.transport_policy()).unwrap();
        let mut session = RemoteSession::connect_with(server.addr(), cfg.retry_policy()).unwrap();
        match drive_decode_loop(&mut session, STEPS) {
            Ok(state) => {
                completed += 1;
                assert_eq!(
                    state, expected,
                    "seed {seed}: completed run must match the oracle bit for bit"
                );
            }
            Err(e) => {
                // A clean, classified failure — retryable budget spent or
                // the session died; either way recovery knows what to do.
                let class = classify_error(&e);
                assert!(
                    matches!(class, ErrorClass::Retryable | ErrorClass::StateLoss),
                    "seed {seed}: untyped/fatal failure {e} ({class:?})"
                );
                eprintln!("chaos seed {seed}: typed failure after retries: {e}");
            }
        }
        // The server executed each distinct step at most once, no matter
        // how many times drops forced the client to re-send.
        assert!(
            exec.resident_count() <= 1,
            "seed {seed}: dedup must keep state single-copy"
        );
        drop(server);
    }
    assert!(completed > 0, "no seed completed — hostility miscalibrated");
    assert!(
        retries() > before,
        "a hostile sweep must exercise the retry path"
    );
}

/// Oracle control: with the fault-free configuration the same loop runs
/// with zero retries and zero injected faults, and matches exactly.
#[test]
fn oracle_configuration_injects_nothing() {
    let _gate = metrics_gate();
    let metric = |name: &str| {
        genie::telemetry::global()
            .metrics
            .snapshot()
            .counter(name, &[])
            .unwrap_or(0)
    };
    let cfg = ChaosConfig::oracle();
    assert!(cfg.is_oracle());

    let retries_before = metric("genie_rpc_retries_total");
    let (server, _exec) = spawn_server().unwrap();
    let mut session = RemoteSession::connect_with(server.addr(), cfg.retry_policy()).unwrap();
    let state = drive_decode_loop(&mut session, 4).unwrap();
    assert_eq!(state, decode_loop_oracle(4));
    assert_eq!(
        metric("genie_rpc_retries_total"),
        retries_before,
        "oracle run must not retry"
    );

    let faults_before = metric("genie_fault_injected_total");
    let run = cfg.run_sim(&Workload::ComputerVision.spec_graph());
    assert_eq!(run.oracle.makespan_s, run.faulty.makespan_s);
    assert_eq!(run.oracle.network_bytes, run.faulty.network_bytes);
    assert_eq!(
        metric("genie_fault_injected_total"),
        faults_before,
        "oracle run must not inject"
    );
}

/// A handcrafted derate schedule drives the fault-injection counter and
/// slows the run — the metric surface the acceptance criteria pin down.
#[test]
fn derate_schedule_counts_injections_and_slows_the_run() {
    let _gate = metrics_gate();
    let faults = || {
        genie::telemetry::global()
            .metrics
            .snapshot()
            .counter("genie_fault_injected_total", &[])
            .unwrap_or(0)
    };
    let cfg = ChaosConfig {
        seed: 5,
        schedule: FaultSchedule {
            specs: vec![FaultSpec::Derate {
                a: 0,
                b: 1,
                factor: 0.25,
            }],
        },
    };
    let before = faults();
    let run = cfg.run_sim(&Workload::LlmServing.spec_graph());
    assert!(!run.rerouted, "a derate never reroutes");
    assert!(
        run.faulty.makespan_s > run.oracle.makespan_s * 2.0,
        "4x less bandwidth on the upload path: {} vs {}",
        run.faulty.makespan_s,
        run.oracle.makespan_s
    );
    assert!(faults() > before, "injections must be counted");
    // The scheduler saw it too: its estimate degrades alongside.
    assert!(run.plan.estimate.transfer_s > run.oracle_plan.estimate.transfer_s * 2.0);
}

/// Disaggregated serving: a link-down window severs KV migrations on
/// the prefill↔decode fabric mid-flight. The in-flight prefix is lost;
/// the engine must fall back to lineage re-prefill at the decode pool
/// and still produce oracle-identical tokens for every request — never
/// a wedge, never wrong numerics.
#[test]
fn migration_severed_by_link_down_recovers_from_lineage() {
    use genie::cluster::GpuSpec;
    use genie::models::functional_transformers;
    use genie::netsim::{FaultPlan, Nanos};
    use genie::serving::{
        DisaggConfig, MigrationPolicy, ServingConfig, ServingLoop, ServingModel, ServingRequest,
    };

    let _gate = metrics_gate();
    for (name, m) in functional_transformers() {
        let requests: Vec<ServingRequest> = (1..=4u64)
            .map(|id| ServingRequest {
                id,
                tenant: 0,
                arrival: Nanos::ZERO,
                prompt: vec![id as i64 % 5, 2, 1],
                total_tokens: 6,
            })
            .collect();
        let mut d = DisaggConfig::paper_testbed(1);
        d.policy = MigrationPolicy::AlwaysShip;
        let conf = ServingConfig {
            lanes: 1,
            max_batch: 8,
            batched: true,
            kv_capacity_bytes: 1 << 30,
            queue_budget: Nanos::from_secs_f64(1e6),
            max_queue: 64,
            gpu: GpuSpec::a100_80gb(),
            link_bandwidth_bps: 25e9,
            link_latency_s: 250e-6,
            // Decode lane 0 is host 1, prefill lane 1 is host 2: take
            // their link down across the whole prefill burst, so every
            // early migration is severed mid-flight.
            fault_plan: Some(FaultPlan::new(
                13,
                FaultSchedule {
                    specs: vec![FaultSpec::LinkDown {
                        a: 1,
                        b: 2,
                        from: Nanos::ZERO,
                        until: Nanos::from_secs_f64(0.05),
                    }],
                },
            )),
            slo: genie::serving::SloConfig::paper_default(),
            record_telemetry: false,
            disagg: Some(d),
            shard: None,
        };
        let report =
            ServingLoop::new(ServingModel::Functional(m.clone()), conf.clone()).run(&requests);
        assert_eq!(
            report.outcomes.len(),
            requests.len(),
            "{name}: every request needs a terminal outcome"
        );
        assert_eq!(report.completed(), 4, "{name}: nobody wedges or sheds");
        assert!(
            report.migrations_failed >= 1,
            "{name}: the outage must sever at least one transfer"
        );
        assert_eq!(
            report.reprefills_migration, report.migrations_failed,
            "{name}: every lost prefix re-prefills from lineage"
        );
        for r in &requests {
            let want = m.generate(&r.prompt, r.total_tokens);
            assert_eq!(
                report.tokens_for(r.id),
                Some(want.as_slice()),
                "{name} request {}: recovery diverged from the oracle",
                r.id
            );
        }
        // The chaotic migration story replays bit-identically.
        let again = ServingLoop::new(ServingModel::Functional(m.clone()), conf).run(&requests);
        assert_eq!(report.events, again.events, "{name}: replay diverged");
    }
}

/// Disaggregated serving under the seeded chaos sweep: derates, jitter,
/// and partitions hit both the client links and the migration fabric.
/// Every request still ends in exactly one typed outcome, the loop
/// drains, and the whole story is a pure function of the seed.
#[test]
fn disaggregated_serving_survives_seeded_fault_schedules() {
    use genie::models::TransformerConfig;
    use genie::netsim::Nanos;
    use genie::serving::{ArrivalConfig, DisaggConfig, ServingConfig, ServingLoop, ServingModel};

    let _gate = metrics_gate();
    let model = TransformerConfig::gptj_6b();
    for seed in chaos_seeds() {
        let chaos = ChaosConfig::for_testbed(seed);
        let requests = ArrivalConfig {
            seed,
            rate_per_s: 20.0,
            horizon: Nanos::from_secs_f64(2.0),
            prompt_len: (8, 16),
            decode_tokens: (4, 8),
            vocab: model.vocab,
            tenants: 4,
        }
        .generate();
        let mut conf = ServingConfig::paper_testbed();
        conf.max_batch = 4;
        conf.max_queue = 256;
        conf.queue_budget = Nanos::from_secs_f64(2.0);
        conf.record_telemetry = false;
        conf.fault_plan = Some(chaos.fault_plan());
        conf.disagg = Some(DisaggConfig::paper_testbed(1));

        let faulty =
            ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);
        assert_eq!(
            faulty.outcomes.len(),
            requests.len(),
            "seed {seed}: every request needs a terminal outcome"
        );
        assert_eq!(
            faulty.migrations,
            faulty.migrations_completed + faulty.migrations_failed,
            "seed {seed}: migration counters must partition"
        );
        assert!(
            faulty.makespan.as_secs_f64() < 120.0,
            "seed {seed}: loop failed to drain ({:?})",
            faulty.makespan
        );
        let again = ServingLoop::new(ServingModel::Spec(model.clone()), conf).run(&requests);
        assert_eq!(faulty.events, again.events, "seed {seed}: replay diverged");
    }
}

/// Sharded serving under chaos: a seeded link-down window severs the
/// fabric the per-layer collectives ride, mid-decode. The lane stalls
/// through the outage (collective time derates and stalls exactly like
/// other link traffic), every request still ends in one typed outcome,
/// the loop never wedges, and the whole story replays bit-identically
/// from the seed.
#[test]
fn sharded_lane_survives_link_down_during_collectives() {
    use genie::models::TransformerConfig;
    use genie::netsim::{FaultPlan, Nanos};
    use genie::serving::{ArrivalConfig, ServingConfig, ServingLoop, ServingModel};
    use genie::srg::shard::ShardSpec;

    let _gate = metrics_gate();
    let model = TransformerConfig::gptj_6b();
    for seed in chaos_seeds() {
        let requests = ArrivalConfig {
            seed,
            rate_per_s: 20.0,
            horizon: Nanos::from_secs_f64(1.0),
            prompt_len: (8, 16),
            decode_tokens: (4, 8),
            vocab: model.vocab,
            tenants: 2,
        }
        .generate();
        let mut conf = ServingConfig::paper_testbed();
        conf.max_batch = 4;
        conf.queue_budget = Nanos::from_secs_f64(1e6);
        conf.record_telemetry = false;
        conf.shard = Some(ShardSpec::tensor(2));
        // Sever lane 0's link (host 0 ↔ host 1) after a few decode
        // steps: the all_reduce window lands inside the outage.
        conf.fault_plan = Some(FaultPlan::new(
            seed,
            FaultSchedule {
                specs: vec![FaultSpec::LinkDown {
                    a: 0,
                    b: 1,
                    from: Nanos::from_secs_f64(0.02),
                    until: Nanos::from_secs_f64(0.08),
                }],
            },
        ));

        let faulty =
            ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);
        assert_eq!(
            faulty.outcomes.len(),
            requests.len(),
            "seed {seed}: every request needs a terminal outcome"
        );
        assert_eq!(
            faulty.completed(),
            requests.len(),
            "seed {seed}: an outage must stall, not shed, under a roomy budget"
        );
        assert!(
            faulty.makespan.as_secs_f64() < 120.0,
            "seed {seed}: sharded loop failed to drain ({:?})",
            faulty.makespan
        );
        // Collective time is still attributed through the outage, and
        // the stall shows up as fault time on some slice.
        assert!(
            faulty.slices.iter().any(|s| s.collective_ns > 0),
            "seed {seed}: collectives must be attributed"
        );
        assert!(
            faulty.slices.iter().any(|s| s.fault_ns > 0),
            "seed {seed}: the outage must be blamed as fault time"
        );

        // Same seed, same story — byte for byte.
        let again =
            ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);
        assert_eq!(faulty.events, again.events, "seed {seed}: replay diverged");

        // Fault-free sharded oracle: same arrivals, no outage. Chaos can
        // only be slower.
        conf.fault_plan = None;
        let oracle = ServingLoop::new(ServingModel::Spec(model.clone()), conf).run(&requests);
        assert!(
            faulty.makespan >= oracle.makespan,
            "seed {seed}: outage made serving faster ({:?} < {:?})",
            faulty.makespan,
            oracle.makespan
        );
    }
}

/// Functional plane: sever one shard of a sharded capture and recover
/// via lineage. `shard_loss_replay` must name exactly the lost shard's
/// nodes as the replay set, its frontier must live on surviving shards,
/// and re-running the capture (the re-prefill path) must reproduce the
/// oracle's bits exactly.
#[test]
fn severed_shard_recovers_via_lineage_replay() {
    use genie::frontend::{execute_sharded, CaptureCtx};
    use genie::models::{ShardedTransformerLm, TransformerConfig, TransformerLm};
    use genie::srg::shard::{shard_loss_replay, Partition, ShardSpec};

    let _gate = metrics_gate();
    let spec = ShardSpec::tensor(2);
    let model = ShardedTransformerLm::new(
        TransformerLm::new_functional(TransformerConfig::tiny(), 42),
        spec,
    );
    let prompt = [1i64, 2, 3];
    let ctx = CaptureCtx::new("chaos.shard");
    let shc = model.capture_prefill(&ctx, &prompt);
    let logits = shc.cap.logits.node;
    let shard_of = shc.shard_of.clone();
    let cap = ctx.finish();

    let (oracle, _) = execute_sharded(&cap.srg, &cap.values, &shard_of).unwrap();

    // Sever shard 1: everything it computed is lost, everything else
    // survives. The replay cut is exactly the lost shard's nodes, and
    // its frontier (the values to re-fetch) lives on surviving shards.
    let part = Partition {
        spec,
        assignment: shard_of.clone(),
    };
    let cut = shard_loss_replay(&cap.srg, &part, 1);
    let lost = part.shard_nodes(1);
    assert!(!lost.is_empty(), "shard 1 must own nodes");
    assert_eq!(
        cut.replay, lost,
        "with all other shards surviving, replay is exactly the lost shard"
    );
    assert!(!cut.frontier.is_empty(), "recovery re-fetches inputs");
    for n in &cut.frontier {
        assert_ne!(
            shard_of.get(n).copied().unwrap_or(0),
            1,
            "frontier values must come from surviving shards"
        );
    }

    // Lineage re-prefill: re-run the capture from retained inputs. The
    // interpreter is deterministic, so the recovered logits are the
    // oracle's bits.
    let (recovered, report) = execute_sharded(&cap.srg, &cap.values, &shard_of).unwrap();
    assert_eq!(
        recovered[&logits].as_f("logits").data(),
        oracle[&logits].as_f("logits").data(),
        "recovery must be bit-identical"
    );
    assert_eq!(report.active_shards(), 2);
}

/// Serving plane: a seeded fault schedule drives the continuous-batching
/// loop — derates and jitter stretch steps, outage windows stall lanes —
/// and every offered request still ends in exactly one typed outcome.
/// The loop degrades (slower than its fault-free oracle, or shedding
/// under the SLO budget); it never panics, hangs, or loses a request.
#[test]
fn serving_loop_survives_seeded_fault_schedules() {
    use genie::models::TransformerConfig;
    use genie::netsim::Nanos;
    use genie::serving::{ArrivalConfig, Outcome, ServingConfig, ServingLoop, ServingModel};

    let _gate = metrics_gate();
    let model = TransformerConfig::gptj_6b();
    for seed in chaos_seeds() {
        let chaos = ChaosConfig::for_testbed(seed);
        let requests = ArrivalConfig {
            seed,
            rate_per_s: 20.0,
            horizon: Nanos::from_secs_f64(2.0),
            prompt_len: (8, 16),
            decode_tokens: (4, 8),
            vocab: model.vocab,
            tenants: 4,
        }
        .generate();
        let mut conf = ServingConfig::paper_testbed();
        conf.max_batch = 4;
        conf.max_queue = 256;
        conf.queue_budget = Nanos::from_secs_f64(2.0);
        conf.fault_plan = Some(chaos.fault_plan());

        let faulty =
            ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);
        assert_eq!(
            faulty.outcomes.len(),
            requests.len(),
            "seed {seed}: every request needs a terminal outcome"
        );
        for (id, outcome) in &faulty.outcomes {
            match outcome {
                Outcome::Completed { tokens, .. } => {
                    assert!(!tokens.is_empty(), "seed {seed} req {id}: empty completion")
                }
                Outcome::Shed { at, .. } => {
                    assert!(*at <= faulty.makespan, "seed {seed} req {id}: shed late")
                }
            }
        }
        assert!(
            faulty.makespan.as_secs_f64() < 120.0,
            "seed {seed}: loop failed to drain ({:?})",
            faulty.makespan
        );

        // Replay: the chaotic serving story is a pure function of seed.
        let again =
            ServingLoop::new(ServingModel::Spec(model.clone()), conf.clone()).run(&requests);
        assert_eq!(faulty.events, again.events, "seed {seed}: replay diverged");

        // Fault-free oracle on the same arrivals: amply provisioned, it
        // completes everyone; the chaotic run can only be no faster.
        conf.fault_plan = None;
        let oracle = ServingLoop::new(ServingModel::Spec(model.clone()), conf).run(&requests);
        assert_eq!(
            oracle.completed(),
            requests.len(),
            "seed {seed}: fault-free oracle must complete all"
        );
        assert!(
            faulty.makespan >= oracle.makespan,
            "seed {seed}: chaos made serving faster ({:?} < {:?})",
            faulty.makespan,
            oracle.makespan
        );
    }
}
