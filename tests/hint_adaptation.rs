//! Integration: the §3.3 hint-adaptation loop closed over real sockets —
//! measured RTTs from the live transport feed the scheduler's cost model.

use genie::backend::spawn_server;
use genie::backend::RemoteSession;
use genie::scheduler::adapt::HintAdapter;
use genie::scheduler::CostModel;

#[test]
fn real_rtt_probes_update_the_cost_model() {
    let (server, _exec) = spawn_server().unwrap();
    let mut session = RemoteSession::connect(server.addr()).unwrap();

    let mut adapter = HintAdapter::new();
    for _ in 0..20 {
        let rtt = session.probe_rtt().expect("ping");
        adapter.observe_rtt(rtt.as_secs_f64());
    }
    let measured = adapter.rtt().expect("samples folded");
    // Loopback pings are fast but nonzero.
    assert!(measured > 0.0);
    assert!(measured < 0.1, "loopback RTT {measured}s");

    // Applying the measurement rewires the model's latency term.
    let mut cost = CostModel::ideal_25g();
    let prior = cost.network_latency_s;
    adapter.apply(&mut cost);
    assert!((cost.network_latency_s - measured / 2.0).abs() < 1e-9);
    assert_ne!(cost.network_latency_s, prior);
}

#[test]
fn observed_transfers_update_goodput() {
    let (server, _exec) = spawn_server().unwrap();
    let mut session = RemoteSession::connect(server.addr()).unwrap();

    // Time a real 4 MB upload and feed the observation to the adapter.
    let payload = genie::frontend::Value::F(genie::tensor::Tensor::zeros(vec![1 << 20]));
    let before = session.traffic_bytes();
    let start = std::time::Instant::now();
    session.upload_pinned("blob", &payload).expect("upload");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let moved = session.traffic_bytes() - before;

    let mut adapter = HintAdapter::new();
    adapter.observe_transfer(moved, elapsed);
    let goodput = adapter.bandwidth().expect("observed");
    assert!(goodput > 0.0);

    let mut cost = CostModel::ideal_25g();
    adapter.apply(&mut cost);
    assert_eq!(cost.network_bandwidth, goodput);
}
