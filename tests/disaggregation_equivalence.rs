//! Differential suite: prefill/decode disaggregation is pinned
//! bit-for-bit to the sequential per-request oracle.
//!
//! Migrating a KV prefix across lanes (or losing the transfer and
//! re-prefilling from lineage) must be *semantically invisible*: for
//! every functional zoo transformer, across arrival seeds and batch
//! sizes, each completed request's token stream must equal
//! `TransformerLm::generate(prompt, total_tokens)` exactly — whether
//! its prefix shipped over the fabric, was recomputed at the decode
//! pool by planner choice, or both across a chaotic run.

use genie::cluster::GpuSpec;
use genie::models::functional_transformers;
use genie::netsim::Nanos;
use genie::serving::{
    ArrivalConfig, DisaggConfig, MigrationPolicy, ServingConfig, ServingLoop, ServingModel,
    ServingRequest,
};

fn disagg_config(max_batch: usize, policy: MigrationPolicy) -> ServingConfig {
    let mut d = DisaggConfig::paper_testbed(1);
    d.policy = policy;
    ServingConfig {
        lanes: 1,
        max_batch,
        batched: true,
        kv_capacity_bytes: 1 << 30,
        queue_budget: Nanos::from_secs_f64(1e6),
        max_queue: 10_000,
        gpu: GpuSpec::a100_80gb(),
        link_bandwidth_bps: 25e9,
        link_latency_s: 250e-6,
        fault_plan: None,
        slo: genie::serving::SloConfig::paper_default(),
        record_telemetry: false,
        disagg: Some(d),
        shard: None,
    }
}

#[test]
fn disaggregated_tokens_match_sequential_oracle_across_zoo_seeds_and_batches() {
    for (name, m) in functional_transformers() {
        for seed in [1u64, 7, 42, 1009] {
            let requests = ArrivalConfig {
                seed,
                rate_per_s: 40.0,
                horizon: Nanos::from_secs_f64(0.25),
                prompt_len: (2, 6),
                decode_tokens: (2, 5),
                vocab: m.config.vocab,
                tenants: 2,
            }
            .generate();
            assert!(!requests.is_empty(), "{name} seed {seed}: empty trace");
            let oracle: Vec<(u64, Vec<i64>)> = requests
                .iter()
                .map(|r| (r.id, m.generate(&r.prompt, r.total_tokens)))
                .collect();
            for max_batch in [1usize, 2, 8] {
                for policy in [
                    MigrationPolicy::Planner,
                    MigrationPolicy::AlwaysShip,
                    MigrationPolicy::AlwaysReprefill,
                ] {
                    let report = ServingLoop::new(
                        ServingModel::Functional(m.clone()),
                        disagg_config(max_batch, policy),
                    )
                    .run(&requests);
                    assert_eq!(
                        report.completed(),
                        requests.len(),
                        "{name} seed {seed} batch {max_batch} {policy:?}: \
                         everyone must complete"
                    );
                    for (id, want) in &oracle {
                        assert_eq!(
                            report.tokens_for(*id),
                            Some(want.as_slice()),
                            "{name} seed {seed} batch {max_batch} {policy:?} \
                             request {id}: disaggregated decode diverged from \
                             the sequential oracle"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn forced_migration_on_every_request_is_oracle_exact() {
    // AlwaysShip + roomy capacity: every single request's KV prefix
    // crosses the fabric before its first decode step. The migrated
    // cache must be byte-equivalent to the one the oracle would have
    // built in place.
    for (name, m) in functional_transformers() {
        let requests: Vec<ServingRequest> = (1..=5u64)
            .map(|id| ServingRequest {
                id,
                tenant: 0,
                arrival: Nanos::from_millis(id),
                prompt: vec![id as i64 % 7, 1, 2, (id as i64) % 5],
                total_tokens: 8,
            })
            .collect();
        let report = ServingLoop::new(
            ServingModel::Functional(m.clone()),
            disagg_config(8, MigrationPolicy::AlwaysShip),
        )
        .run(&requests);
        assert_eq!(report.completed(), 5, "{name}: everyone completes");
        assert_eq!(
            report.migrations, 5,
            "{name}: every request's prefix must migrate"
        );
        assert_eq!(report.migrations_completed, 5);
        assert_eq!(report.migrations_failed, 0);
        for r in &requests {
            let want = m.generate(&r.prompt, r.total_tokens);
            assert_eq!(
                report.tokens_for(r.id),
                Some(want.as_slice()),
                "{name} request {}: migrated KV produced different tokens",
                r.id
            );
        }
    }
}

#[test]
fn planned_reprefill_at_the_decode_pool_is_oracle_exact() {
    // AlwaysReprefill: the prefix is dropped at the prefill lane and
    // rebuilt from lineage (prompt + generated prefix) at the decode
    // pool — the migration-free baseline must also be bit-exact, and
    // every re-prefill must be attributed to the planner.
    for (name, m) in functional_transformers() {
        let requests: Vec<ServingRequest> = (1..=4u64)
            .map(|id| ServingRequest {
                id,
                tenant: 0,
                arrival: Nanos::ZERO,
                prompt: vec![3, id as i64 % 5, 1],
                total_tokens: 6,
            })
            .collect();
        let report = ServingLoop::new(
            ServingModel::Functional(m.clone()),
            disagg_config(8, MigrationPolicy::AlwaysReprefill),
        )
        .run(&requests);
        assert_eq!(report.completed(), 4, "{name}: everyone completes");
        assert_eq!(report.migrations, 0, "{name}: baseline never ships");
        assert_eq!(
            report.reprefills_planned, 4,
            "{name}: one planned re-prefill per request"
        );
        for r in &requests {
            let want = m.generate(&r.prompt, r.total_tokens);
            assert_eq!(
                report.tokens_for(r.id),
                Some(want.as_slice()),
                "{name} request {}: lineage re-prefill diverged",
                r.id
            );
        }
    }
}

#[test]
fn disaggregated_run_replays_bit_identically() {
    let (_, m) = functional_transformers().remove(0);
    let requests = ArrivalConfig {
        seed: 5,
        rate_per_s: 40.0,
        horizon: Nanos::from_secs_f64(0.2),
        prompt_len: (2, 5),
        decode_tokens: (2, 4),
        vocab: m.config.vocab,
        tenants: 2,
    }
    .generate();
    let conf = disagg_config(4, MigrationPolicy::Planner);
    let a = ServingLoop::new(ServingModel::Functional(m.clone()), conf.clone()).run(&requests);
    let b = ServingLoop::new(ServingModel::Functional(m), conf).run(&requests);
    assert_eq!(a.events, b.events, "same inputs must replay identically");
    assert_eq!(a.outcomes, b.outcomes);
}
