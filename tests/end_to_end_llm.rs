//! End-to-end integration: LLM decoding over the real TCP transport with
//! remotely-pinned KV caches must generate exactly the same tokens as
//! local execution — while shipping only tokens and logits per step.
//!
//! This is the §4 semantics-aware mode running for real: prefill once,
//! pin weights and caches behind handles, then per-step graphs reference
//! remote state by name.

use genie::backend::{spawn_server, RemoteSession};
use genie::models::{KvState, TransformerConfig, TransformerLm};
use genie::prelude::*;
use genie::tensor::Tensor;

/// Drive the remote decode loop, returning generated tokens and the
/// traffic after each step.
#[allow(clippy::explicit_counter_loop)]
fn remote_generate(
    session: &mut RemoteSession,
    model: &TransformerLm,
    prompt: &[i64],
    steps: usize,
) -> (Vec<i64>, Vec<u64>) {
    let cfg = &model.config;
    let d = cfg.d_model;
    let mut tokens = Vec::new();
    let mut traffic = Vec::new();

    // ---- prefill: ship everything once, pin weights + caches ----------
    let ctx = CaptureCtx::new("prefill");
    let cap = model.capture_prefill(&ctx, prompt);
    let sampled = cap.logits.sample();
    sampled.mark_output();
    let captured = ctx.finish();

    let mut pins: Vec<(genie::srg::NodeId, String)> = Vec::new();
    for (i, (k, v)) in cap.k_caches.iter().zip(&cap.v_caches).enumerate() {
        pins.push((k.node, format!("k{i}")));
        pins.push((v.node, format!("v{i}")));
    }
    let pin_refs: Vec<(genie::srg::NodeId, &str)> =
        pins.iter().map(|(n, s)| (*n, s.as_str())).collect();
    let outs = session
        .execute(&captured, &[], &[sampled.node], &pin_refs)
        .expect("remote prefill");
    let mut token = outs[0].as_i("token").data()[0];
    tokens.push(token);
    traffic.push(session.traffic_bytes());

    // ---- decode: handle-bound caches, ship one token per step ---------
    let mut cached = prompt.len();
    for step in 0..steps.saturating_sub(1) {
        // Shape-only KV mirror drives the capture; payloads are stripped
        // and replaced by handle bindings.
        let kv = KvState {
            k: (0..cfg.layers)
                .map(|_| Tensor::zeros(vec![cached, d]))
                .collect(),
            v: (0..cfg.layers)
                .map(|_| Tensor::zeros(vec![cached, d]))
                .collect(),
        };
        let ctx = CaptureCtx::new(format!("decode{step}"));
        let cap = model.capture_decode_step(&ctx, token, &kv);
        let sampled = cap.logits.sample();
        sampled.mark_output();
        let mut captured = ctx.finish();

        // Find the cache input nodes by name; strip their dummy payloads.
        let mut handle_inputs: Vec<(genie::srg::NodeId, String)> = Vec::new();
        for node in captured.srg.nodes() {
            if node.op == genie::srg::OpKind::Input {
                if let Some(layer) = node.name.strip_prefix("k_cache_") {
                    handle_inputs.push((node.id, format!("k{layer}")));
                } else if let Some(layer) = node.name.strip_prefix("v_cache_") {
                    handle_inputs.push((node.id, format!("v{layer}")));
                }
            }
        }
        for (n, _) in &handle_inputs {
            captured.values.remove(n);
        }
        let handle_refs: Vec<(genie::srg::NodeId, &str)> = handle_inputs
            .iter()
            .map(|(n, s)| (*n, s.as_str()))
            .collect();

        let mut pins: Vec<(genie::srg::NodeId, String)> = Vec::new();
        for (i, (k, v)) in cap.k_caches.iter().zip(&cap.v_caches).enumerate() {
            pins.push((k.node, format!("k{i}")));
            pins.push((v.node, format!("v{i}")));
        }
        let pin_refs: Vec<(genie::srg::NodeId, &str)> =
            pins.iter().map(|(n, s)| (*n, s.as_str())).collect();

        let outs = session
            .execute(&captured, &handle_refs, &[sampled.node], &pin_refs)
            .expect("remote decode step");
        token = outs[0].as_i("token").data()[0];
        tokens.push(token);
        traffic.push(session.traffic_bytes());
        cached += 1;
    }
    (tokens, traffic)
}

#[test]
fn remote_decode_matches_local_generation() {
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 42);
    let prompt = vec![3, 14, 15, 9, 2];
    let steps = 6;

    let local = model.generate(&prompt, steps);

    let (server, executor) = spawn_server().unwrap();
    let mut session = RemoteSession::connect(server.addr()).unwrap();
    let (remote, _) = remote_generate(&mut session, &model, &prompt, steps);

    assert_eq!(remote, local, "remote decode must match local exactly");
    // Caches live remotely: 2 per layer.
    assert_eq!(executor.resident_count(), 2 * model.config.layers);
}

#[test]
fn remote_decode_traffic_is_flat_per_step() {
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 7);
    let prompt = vec![1, 2, 3];
    let steps = 8;

    let (server, _executor) = spawn_server().unwrap();
    let mut session = RemoteSession::connect(server.addr()).unwrap();
    let (_, traffic) = remote_generate(&mut session, &model, &prompt, steps);

    // Per-step traffic after prefill: graph JSON + token + logits. It
    // must NOT grow with the cache (the semantics-aware property). Allow
    // small jitter from shape strings in the JSON.
    let deltas: Vec<u64> = traffic.windows(2).map(|w| w[1] - w[0]).collect();
    let first = deltas[1] as f64;
    for (i, &d) in deltas.iter().enumerate().skip(1) {
        assert!(
            (d as f64) < first * 1.25,
            "step {i} traffic {d} grew vs {first} — cache is leaking over the wire"
        );
    }
}

#[test]
fn weights_ship_inline_only_because_model_is_functional() {
    // Sanity: in the tests above, weights travel inline once per step
    // (this tiny model's captures carry payloads). Pinning them instead
    // must cut steady-state traffic.
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 9);
    let prompt = vec![5, 6];

    let (server, _exec) = spawn_server().unwrap();

    // Baseline: inline weights.
    let mut inline_session = RemoteSession::connect(server.addr()).unwrap();
    let (_, t1) = remote_generate(&mut inline_session, &model, &prompt, 3);
    let inline_step = t1[2] - t1[1];

    // With pinned weights the graph's parameter payloads vanish — here we
    // simply verify the inline step traffic is dominated by weights, i.e.
    // pinning has something to save.
    let weight_bytes = model.config.weight_bytes();
    assert!(
        inline_step > weight_bytes / 2,
        "step traffic {inline_step} should be weight-dominated ({weight_bytes})"
    );
}
