//! Property-based tests over the platform's core invariants.

use genie::prelude::*;
use genie::srg::traverse;
use genie::tensor::{ops, Tensor};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a random layered DAG capture: `widths` nodes per level, each
/// consuming 1–2 values from the previous level.
fn random_capture(widths: Vec<usize>, edges_seed: u64) -> genie::frontend::CapturedGraph {
    let ctx = CaptureCtx::new("prop");
    let mut prev: Vec<genie::frontend::LazyTensor> = (0..widths[0].max(1))
        .map(|i| {
            ctx.input(
                &format!("in{i}"),
                [2, 2],
                ElemType::F32,
                Some(genie::tensor::init::randn([2, 2], i as u64)),
            )
        })
        .collect();
    let mut rng = edges_seed;
    let mut next_u = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as usize
    };
    for w in widths.iter().skip(1) {
        let mut level = Vec::new();
        for _ in 0..(*w).max(1) {
            let a = &prev[next_u() % prev.len()];
            let node = match next_u() % 3 {
                0 => a.relu(),
                1 => a.gelu(),
                _ => {
                    let b = &prev[next_u() % prev.len()];
                    a.add(b)
                }
            };
            level.push(node);
        }
        prev = level;
    }
    for t in &prev {
        t.mark_output();
    }
    ctx.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random capture is a valid SRG with a consistent topo order.
    #[test]
    fn captures_always_validate(
        widths in prop::collection::vec(1usize..5, 1..6),
        seed in any::<u64>(),
    ) {
        let cap = random_capture(widths, seed);
        prop_assert!(genie::srg::validate::validate(&cap.srg).is_empty());
        let order = traverse::topo_order(&cap.srg).unwrap();
        prop_assert_eq!(order.len(), cap.srg.node_count());
        // Topological property: every edge goes forward in the order.
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for e in cap.srg.edges() {
            prop_assert!(pos[&e.src] < pos[&e.dst]);
        }
    }

    /// Interpreting a capture is deterministic and total for valid graphs.
    #[test]
    fn interpretation_is_deterministic(
        widths in prop::collection::vec(1usize..4, 1..5),
        seed in any::<u64>(),
    ) {
        let cap = random_capture(widths, seed);
        let a = genie::frontend::interp::execute(&cap.srg, &cap.values).unwrap();
        let b = genie::frontend::interp::execute(&cap.srg, &cap.values).unwrap();
        for (k, v) in &a {
            prop_assert_eq!(v, &b[k]);
        }
    }

    /// Replay cuts: the cut plus the frontier always covers the lost set's
    /// ancestry, and replaying is never larger than the whole graph.
    #[test]
    fn replay_cut_covers_losses(
        widths in prop::collection::vec(1usize..5, 2..6),
        seed in any::<u64>(),
        lost_pick in any::<u64>(),
    ) {
        let cap = random_capture(widths, seed);
        let n = cap.srg.node_count() as u64;
        let lost: BTreeSet<genie::srg::NodeId> =
            [genie::srg::NodeId::new((lost_pick % n) as u32)].into_iter().collect();
        let available: BTreeSet<genie::srg::NodeId> = cap
            .srg
            .nodes()
            .filter(|node| node.op.is_source())
            .map(|node| node.id)
            .collect();
        let cut = genie::srg::cut::replay_cut(&cap.srg, &lost, &available);
        // Lost nodes always replay.
        for l in &lost {
            prop_assert!(cut.replay.contains(l));
        }
        // Frontier is disjoint from replay and available-only.
        for f in &cut.frontier {
            prop_assert!(!cut.replay.contains(f));
            prop_assert!(available.contains(f));
        }
        // Every replay node's parents are either replayed or frontier.
        for r in &cut.replay {
            for p in cap.srg.predecessors(*r) {
                prop_assert!(cut.replay.contains(&p) || cut.frontier.contains(&p));
            }
        }
    }

    /// Scheduling places every node and never loses transfers, for any
    /// policy and any graph.
    #[test]
    fn schedule_total_and_consistent(
        widths in prop::collection::vec(1usize..4, 1..5),
        seed in any::<u64>(),
        devices in 1usize..5,
    ) {
        let cap = random_capture(widths, seed);
        let topo = Topology::rack(devices, 25e9);
        let state = ClusterState::new();
        let cost = CostModel::ideal_25g();
        for policy in [&RoundRobin as &dyn Policy, &DataAware, &SemanticsAware::new()] {
            let plan = genie::scheduler::schedule(&cap.srg, &topo, &state, &cost, policy);
            prop_assert_eq!(plan.placements.len(), cap.srg.node_count());
            // Transfers reference real edges and cross locations.
            for t in &plan.transfers {
                let e = plan.srg.edge(t.edge);
                prop_assert!(plan.location(e.src) != plan.location(e.dst));
            }
        }
    }

    /// Tensor algebra invariants under random data.
    #[test]
    fn tensor_invariants(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let a = genie::tensor::init::randn([rows, cols], seed);
        // Transpose is an involution.
        prop_assert_eq!(ops::transpose2d(&ops::transpose2d(&a)), a.clone());
        // Softmax rows sum to 1.
        let s = ops::softmax_lastdim(&a);
        for r in 0..rows {
            let sum: f32 = s.data()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
        // relu is idempotent.
        let r1 = ops::relu(&a);
        prop_assert_eq!(ops::relu(&r1), r1.clone());
        // concat then narrow is identity.
        let b = genie::tensor::init::randn([rows, cols], seed ^ 1);
        let cat = ops::concat(&a, &b, 0);
        prop_assert_eq!(ops::narrow(&cat, 0, 0, rows), a);
        prop_assert_eq!(ops::narrow(&cat, 0, rows, rows), b);
    }

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(n in 1usize..5, seed in any::<u64>()) {
        let a = genie::tensor::init::randn([n, n], seed);
        let b = genie::tensor::init::randn([n, n], seed ^ 2);
        let c = genie::tensor::init::randn([n, n], seed ^ 3);
        let lhs = ops::matmul(&ops::add(&a, &b), &c);
        let rhs = ops::add(&ops::matmul(&a, &c), &ops::matmul(&b, &c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// Wire codec round-trips arbitrary payloads.
    #[test]
    fn transport_payload_roundtrip(data in prop::collection::vec(any::<f32>(), 0..64)) {
        let finite: Vec<f32> = data.into_iter().map(|x| if x.is_finite() { x } else { 0.0 }).collect();
        let n = finite.len();
        let p = genie::transport::TensorPayload::from_f32(vec![n], &finite);
        let req = genie::transport::Request {
            id: 1,
            body: genie::transport::RequestBody::Upload { key: 9, tensor: p },
            trace: None,
        };
        let back = genie::transport::Request::decode(req.encode().unwrap()).unwrap();
        prop_assert_eq!(back, req);
    }

    /// SRG JSON serialization round-trips any capture.
    #[test]
    fn srg_json_roundtrip(
        widths in prop::collection::vec(1usize..4, 1..4),
        seed in any::<u64>(),
    ) {
        let cap = random_capture(widths, seed);
        let json = genie::srg::serialize::to_json(&cap.srg).unwrap();
        let back = genie::srg::serialize::from_json(&json).unwrap();
        prop_assert_eq!(back.node_count(), cap.srg.node_count());
        prop_assert_eq!(back.edge_count(), cap.srg.edge_count());
        let j2 = genie::srg::serialize::to_json(&back).unwrap();
        prop_assert_eq!(json, j2);
    }
}

#[test]
fn tensor_zeros_shape_edge_cases() {
    // Deterministic edge cases outside proptest.
    let empty = Tensor::zeros(vec![0usize, 4]);
    assert_eq!(empty.len(), 0);
    let grown = ops::concat(&empty, &Tensor::ones([1, 4]), 0);
    assert_eq!(grown.dims(), &[1, 4]);
}
