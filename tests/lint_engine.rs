//! Integration tests for the semantic lint engine: every graph the model
//! zoo can produce must pass the deny-level gate, and the lint namespace
//! itself must stay stable.

use genie::analysis::{run_srg_passes, LintCode, LintConfig, Severity};
use genie::models::{KvState, TransformerConfig, TransformerLm, Workload};
use genie::prelude::*;
use genie::tensor::Tensor;
use proptest::prelude::*;

fn deny_free(report: &genie::analysis::Report) -> bool {
    report.count(Severity::Deny) == 0
}

#[test]
fn lint_code_namespace_is_stable() {
    let codes = LintCode::ALL;
    assert!(codes.len() >= 8, "at least 8 distinct lint codes");
    assert!(codes.iter().any(|c| c.is_plan_level()), "GA1xx present");
    assert!(codes.iter().any(|c| !c.is_plan_level()), "GA0xx present");
    for c in codes {
        assert_eq!(
            LintCode::parse(c.code()),
            Some(c),
            "{} round-trips",
            c.code()
        );
        assert!(!c.invariant().is_empty());
    }
}

#[test]
fn every_zoo_family_is_deny_clean_end_to_end() {
    let cfg = LintConfig::new();
    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();
    for w in Workload::ALL {
        // spec_graph() itself passes the capture gate (finish panics on
        // deny); re-lint explicitly and also lint the scheduled plan.
        let srg = w.spec_graph();
        let graph_report = run_srg_passes(&srg, &cfg);
        assert!(deny_free(&graph_report), "{}: {graph_report}", w.name());

        let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        assert!(
            !plan
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Deny),
            "{}: {:?}",
            w.name(),
            plan.diagnostics
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Decode steps at any cached sequence length capture deny-clean:
    /// the KV chain always flows through blessed consumers and the
    /// builders' cost hints always satisfy the GA0xx invariants.
    #[test]
    fn decode_captures_are_deny_clean(cached in 0usize..64) {
        let cfg = TransformerConfig::tiny();
        let d = cfg.d_model;
        let layers = cfg.layers;
        let m = TransformerLm::new_spec(cfg);
        let kv = KvState {
            k: (0..layers).map(|_| Tensor::zeros(vec![cached, d])).collect(),
            v: (0..layers).map(|_| Tensor::zeros(vec![cached, d])).collect(),
        };
        let ctx = CaptureCtx::new("prop.decode");
        let cap = m.capture_decode_step(&ctx, 0, &kv);
        cap.logits.sample().mark_output();
        for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
            k.mark_output();
            v.mark_output();
        }
        let cap = ctx
            .finish_checked(&LintConfig::new())
            .expect("decode capture passes the deny gate");
        let report = run_srg_passes(&cap.srg, &LintConfig::new());
        prop_assert!(deny_free(&report), "{}", report);
    }

    /// Prefill captures at any prompt length are deny-clean too.
    #[test]
    fn prefill_captures_are_deny_clean(prompt_len in 1usize..32) {
        let m = TransformerLm::new_spec(TransformerConfig::tiny());
        let ctx = CaptureCtx::new("prop.prefill");
        let prompt = vec![0i64; prompt_len];
        let cap = m.capture_prefill(&ctx, &prompt);
        cap.logits.mark_output();
        let cap = ctx
            .finish_checked(&LintConfig::new())
            .expect("prefill capture passes the deny gate");
        let report = run_srg_passes(&cap.srg, &LintConfig::new());
        prop_assert!(deny_free(&report), "{}", report);
    }
}
