//! Integration tests for the semantic lint engine: every graph the model
//! zoo can produce must pass the deny-level gate, and the lint namespace
//! itself must stay stable.

use genie::analysis::{run_srg_passes, LintCode, LintConfig, Severity};
use genie::models::{KvState, TransformerConfig, TransformerLm, Workload};
use genie::prelude::*;
use genie::tensor::Tensor;
use proptest::prelude::*;

fn deny_free(report: &genie::analysis::Report) -> bool {
    report.count(Severity::Deny) == 0
}

#[test]
fn lint_code_namespace_is_stable() {
    let codes = LintCode::ALL;
    assert!(codes.len() >= 8, "at least 8 distinct lint codes");
    assert!(codes.iter().any(|c| c.is_plan_level()), "GA1xx present");
    assert!(codes.iter().any(|c| !c.is_plan_level()), "GA0xx present");
    for c in codes {
        assert_eq!(
            LintCode::parse(c.code()),
            Some(c),
            "{} round-trips",
            c.code()
        );
        assert!(!c.invariant().is_empty());
    }
}

#[test]
fn every_zoo_family_is_deny_clean_end_to_end() {
    let cfg = LintConfig::new();
    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();
    for w in Workload::ALL {
        // spec_graph() itself passes the capture gate (finish panics on
        // deny); re-lint explicitly and also lint the scheduled plan.
        let srg = w.spec_graph();
        let graph_report = run_srg_passes(&srg, &cfg);
        assert!(deny_free(&graph_report), "{}: {graph_report}", w.name());

        let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
        assert!(
            !plan
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Deny),
            "{}: {:?}",
            w.name(),
            plan.diagnostics
        );
    }
}

/// Hand-built GA2xx violations must survive the JSON round trip with
/// their stable code strings, so fleet tooling can key on them.
#[test]
fn ga2xx_findings_render_to_json() {
    use genie::analysis::{run_plan_passes, PlanFacts, TransferFact};
    use genie::cluster::DevId;
    use genie::srg::{ElemType, Node, NodeId, OpKind, Srg, TensorId, TensorMeta};
    use std::collections::BTreeMap;

    struct FakePlan {
        srg: Srg,
        devices: BTreeMap<NodeId, DevId>,
        transfers: Vec<TransferFact>,
        pinned: Vec<(TensorId, DevId, u64)>,
    }
    impl PlanFacts for FakePlan {
        fn subject(&self) -> String {
            "fixture@test".into()
        }
        fn srg(&self) -> &Srg {
            &self.srg
        }
        fn node_device(&self, node: NodeId) -> Option<DevId> {
            self.devices.get(&node).copied()
        }
        fn transfers(&self) -> Vec<TransferFact> {
            self.transfers.clone()
        }
        fn pinned_uploads(&self) -> Vec<(TensorId, DevId, u64)> {
            self.pinned.clone()
        }
    }

    // a on d0 feeds both the first and the last step of a chain on d1.
    // Shipping the later consumer's payload first inverts the channel
    // FIFO against consumption order (GA201); pinning one buffer twice
    // double-charges device memory (GA202).
    let mut g = Srg::new("fixture");
    let meta = TensorMeta::new([4], ElemType::F32);
    let a = g.add_node(Node::new(NodeId::new(0), OpKind::Input, "a"));
    let early = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "early"));
    let mid = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "mid"));
    let late = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "late"));
    let e_early = g.connect(a, early, meta.clone());
    g.connect(early, mid, meta.clone());
    g.connect(mid, late, meta.clone());
    let e_late = g.connect(a, late, meta);

    let (d0, d1) = (DevId(0), DevId(1));
    let xfer = |edge, tensor| TransferFact {
        edge,
        tensor,
        from: Some(d0),
        to: Some(d1),
        bytes: 16,
        via_handle: false,
    };
    let plan = FakePlan {
        devices: [(a, d0), (early, d1), (mid, d1), (late, d1)].into(),
        transfers: vec![
            xfer(e_late, g.edge(e_late).tensor),
            xfer(e_early, g.edge(e_early).tensor),
        ],
        pinned: vec![(TensorId::new(99), d1, 1024), (TensorId::new(99), d1, 1024)],
        srg: g,
    };

    let topo = Topology::rack(2, 25e9);
    let report = run_plan_passes(&plan, &topo, &ClusterState::new(), &LintConfig::new());
    let json = report.to_json();
    let codes: Vec<&str> = json["diagnostics"]
        .as_array()
        .expect("diagnostics array")
        .iter()
        .map(|d| d["code"].as_str().expect("code string"))
        .collect();
    assert!(codes.contains(&"GA201"), "{json}");
    assert!(codes.contains(&"GA202"), "{json}");
    assert_eq!(json["subject"], "fixture@test");
    for d in json["diagnostics"].as_array().unwrap() {
        assert!(d["severity"].is_string(), "{d}");
        assert!(!d["message"].as_str().unwrap().is_empty(), "{d}");
    }
}

/// GA3xx violations — an unmeetable tolerance and an unmodeled fused
/// op — must also surface through `Report::to_json` with stable codes.
#[test]
fn ga3xx_findings_render_to_json() {
    use genie::srg::{ElemType as El, Node, NodeId, OpKind, TensorMeta};
    use genie::tensor::init;

    let ctx = CaptureCtx::new("precision-fixture");
    let x = ctx.input("x", [4, 16], El::F32, Some(init::randn([4, 16], 1)));
    let w = ctx.parameter("w", [16, 16], El::F32, Some(init::randn([16, 16], 2)));
    let y = x.matmul(&w);
    y.mark_output();
    let mm = y.node;
    let mut cap = ctx.finish();
    // 2^-24 per element over a k=16 reduction can never meet 1e-12.
    cap.srg
        .node_mut(mm)
        .attrs
        .insert("tolerance_rel".into(), "1e-12".into());
    // A fused region has no static error model: GA303, and every bound
    // downstream of it is unbounded.
    let fx = cap
        .srg
        .add_node(Node::new(NodeId::new(0), OpKind::Fused(2), "fx"));
    cap.srg.connect(mm, fx, TensorMeta::new([4, 16], El::F32));

    let report = run_srg_passes(&cap.srg, &LintConfig::new());
    let json = report.to_json();
    let codes: Vec<&str> = json["diagnostics"]
        .as_array()
        .expect("diagnostics array")
        .iter()
        .map(|d| d["code"].as_str().expect("code string"))
        .collect();
    assert!(codes.contains(&"GA301"), "{json}");
    assert!(codes.contains(&"GA303"), "{json}");
    // The JSON must round-trip back into an identical report.
    let back: genie::analysis::Report = serde_json::from_value(json).expect("round trip");
    assert_eq!(back, report);
}

/// GA204 fixture: two devices that reach two all_reduce collectives in
/// contradictory orders must be denied — and the sharded model's own
/// captures, whose collective order is the capture program order on
/// every rank, must stay clean.
#[test]
fn ga204_collective_schedule_cycle_denied() {
    use genie::analysis::{run_plan_passes, PlanFacts, TransferFact};
    use genie::cluster::DevId;
    use genie::srg::{ElemType, Node, NodeId, OpKind, Srg, TensorId, TensorMeta};
    use std::collections::BTreeMap;

    struct FakePlan {
        srg: Srg,
        devices: BTreeMap<NodeId, DevId>,
    }
    impl PlanFacts for FakePlan {
        fn subject(&self) -> String {
            "collective-fixture@test".into()
        }
        fn srg(&self) -> &Srg {
            &self.srg
        }
        fn node_device(&self, node: NodeId) -> Option<DevId> {
            self.devices.get(&node).copied()
        }
        fn transfers(&self) -> Vec<TransferFact> {
            Vec::new()
        }
        fn pinned_uploads(&self) -> Vec<(TensorId, DevId, u64)> {
            Vec::new()
        }
    }

    // d0 produces p0 (early) and q0 (late); d1 produces p1 (early) and
    // q1 (late). c1 consumes {p0, q1}, c2 consumes {p1, q0}: d0 reaches
    // c1 first, d1 reaches c2 first — each blocks in a collective the
    // other has not entered.
    let mut g = Srg::new("collective-fixture");
    let meta = TensorMeta::new([4, 4], ElemType::F32);
    let p0 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "p0"));
    let p1 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "p1"));
    let q0 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "q0"));
    let q1 = g.add_node(Node::new(NodeId::new(0), OpKind::Relu, "q1"));
    let c1 = g.add_node(Node::new(NodeId::new(0), OpKind::AllReduce, "c1"));
    let c2 = g.add_node(Node::new(NodeId::new(0), OpKind::AllReduce, "c2"));
    g.connect(p0, c1, meta.clone());
    g.connect(q1, c1, meta.clone());
    g.connect(p1, c2, meta.clone());
    g.connect(q0, c2, meta);

    let (d0, d1) = (DevId(0), DevId(1));
    let plan = FakePlan {
        devices: [(p0, d0), (q0, d0), (p1, d1), (q1, d1), (c1, d0), (c2, d1)].into(),
        srg: g,
    };
    let topo = Topology::rack(2, 25e9);
    let report = run_plan_passes(&plan, &topo, &ClusterState::new(), &LintConfig::new());
    let hits = report.with_code(LintCode::CollectiveScheduleCycle);
    assert_eq!(hits.len(), 1, "{report}");
    assert_eq!(hits[0].severity, Severity::Deny, "{report}");
    assert_eq!(hits[0].code.code(), "GA204");
    assert!(
        report.render().contains("GA204"),
        "stable code renders: {report}"
    );
}

/// A real sharded capture scheduled by the sharded policy is GA204-clean:
/// capture program order gives every rank the same collective order.
#[test]
fn sharded_plans_pass_collective_deadlock_gate() {
    use genie::models::sharded::ShardedTransformerLm;
    use genie::srg::shard::ShardSpec;

    let m = TransformerLm::new_spec(TransformerConfig::tiny());
    let sharded = ShardedTransformerLm::new(m, ShardSpec::new(2, 2));
    let (cap, shard_of) = sharded.capture_decode_spec(16);
    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();
    let policy = genie::scheduler::Sharded::new(shard_of);
    let plan = genie::scheduler::schedule(&cap.srg, &topo, &state, &cost, &policy);
    assert!(
        !plan
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::CollectiveScheduleCycle),
        "sharded capture order is consistent across ranks: {:?}",
        plan.diagnostics
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Decode steps at any cached sequence length capture deny-clean:
    /// the KV chain always flows through blessed consumers and the
    /// builders' cost hints always satisfy the GA0xx invariants.
    #[test]
    fn decode_captures_are_deny_clean(cached in 0usize..64) {
        let cfg = TransformerConfig::tiny();
        let d = cfg.d_model;
        let layers = cfg.layers;
        let m = TransformerLm::new_spec(cfg);
        let kv = KvState {
            k: (0..layers).map(|_| Tensor::zeros(vec![cached, d])).collect(),
            v: (0..layers).map(|_| Tensor::zeros(vec![cached, d])).collect(),
        };
        let ctx = CaptureCtx::new("prop.decode");
        let cap = m.capture_decode_step(&ctx, 0, &kv);
        cap.logits.sample().mark_output();
        for (k, v) in cap.k_caches.iter().zip(&cap.v_caches) {
            k.mark_output();
            v.mark_output();
        }
        let cap = ctx
            .finish_checked(&LintConfig::new())
            .expect("decode capture passes the deny gate");
        let report = run_srg_passes(&cap.srg, &LintConfig::new());
        prop_assert!(deny_free(&report), "{}", report);
    }

    /// Prefill captures at any prompt length are deny-clean too.
    #[test]
    fn prefill_captures_are_deny_clean(prompt_len in 1usize..32) {
        let m = TransformerLm::new_spec(TransformerConfig::tiny());
        let ctx = CaptureCtx::new("prop.prefill");
        let prompt = vec![0i64; prompt_len];
        let cap = m.capture_prefill(&ctx, &prompt);
        cap.logits.mark_output();
        let cap = ctx
            .finish_checked(&LintConfig::new())
            .expect("prefill capture passes the deny gate");
        let report = run_srg_passes(&cap.srg, &LintConfig::new());
        prop_assert!(deny_free(&report), "{}", report);
    }
}
