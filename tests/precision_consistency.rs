//! Differential validation of the GA3xx precision lints: the static
//! worst-case error interval computed by `genie-analysis` must cover the
//! divergence actually observed when the functional plane executes the
//! same graph on two kernel tiers (forced scalar vs forced parallel).
//! Also pins the denial side: a `tolerance_rel` annotation tighter than
//! the delivered bound is refused both at graph level and at schedule
//! time.

use genie::analysis::{error_bounds, run_srg_passes, LintCode, LintConfig};
use genie::frontend::capture::{CaptureCtx, CapturedGraph};
use genie::frontend::interp;
use genie::frontend::value::Value;
use genie::models::{
    CnnConfig, Dlrm, DlrmConfig, KvState, Multimodal, MultimodalConfig, SimpleCnn,
    TransformerConfig, TransformerLm,
};
use genie::prelude::*;
use genie::srg::NodeId;
use genie::tensor::init;
use genie::tensor::stats::{force_path, Path};
use std::collections::HashMap;

/// Execute `captured` sequentially with every instrumented kernel forced
/// onto `path`, restoring natural dispatch before returning.
fn run_forced(captured: &CapturedGraph, path: Path) -> HashMap<NodeId, Value> {
    force_path(Some(path));
    let out = interp::execute_sequential(&captured.srg, &captured.values);
    force_path(None);
    out.expect("forced execution succeeds")
}

/// Assert the scalar-tier and parallel-tier executions of `captured`
/// diverge by no more than the static per-node error bound, and that
/// the bound at `output` is finite (the graph is fully modeled).
fn assert_divergence_within_bounds(name: &str, captured: &CapturedGraph, output: NodeId) {
    let bounds = error_bounds(&captured.srg).expect("captures are acyclic");
    let out_bound = bounds.bound(output);
    assert!(
        out_bound.is_finite(),
        "{name}: output bound must be finite, got {out_bound}"
    );

    let scalar = run_forced(captured, Path::Scalar);
    let parallel = run_forced(captured, Path::Parallel);
    assert_eq!(scalar.len(), parallel.len(), "{name}: same nodes evaluated");

    for (id, sv) in &scalar {
        let (Value::F(a), Some(Value::F(b))) = (sv, parallel.get(id)) else {
            continue; // index tensors are exact by construction
        };
        let bound = bounds.bound(*id);
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            let denom = x.abs().max(y.abs()).max(f32::MIN_POSITIVE) as f64;
            let rel = (x - y).abs() as f64 / denom;
            assert!(
                rel <= bound,
                "{name}: node {id:?} elem {i}: observed divergence {rel:e} \
                 exceeds static bound {bound:e}"
            );
        }
    }
}

#[test]
fn zoo_divergence_is_covered_by_static_bounds() {
    // One test walks every zoo model: `force_path` is process-global, so
    // the forced sections must not interleave with each other.
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 11);
    let prompt: Vec<i64> = (0..12).map(|i| i % 32).collect();
    let ctx = CaptureCtx::new("llm.prefill");
    let cap = model.capture_prefill(&ctx, &prompt);
    cap.logits.mark_output();
    let out = cap.logits.node;
    assert_divergence_within_bounds("llm.prefill", &ctx.finish(), out);

    let cfg = &model.config;
    let kv = KvState {
        k: (0..cfg.layers)
            .map(|l| init::randn([4, cfg.d_model], 100 + l as u64))
            .collect(),
        v: (0..cfg.layers)
            .map(|l| init::randn([4, cfg.d_model], 200 + l as u64))
            .collect(),
    };
    let ctx = CaptureCtx::new("llm.decode");
    let cap = model.capture_decode_step(&ctx, 3, &kv);
    cap.logits.mark_output();
    let out = cap.logits.node;
    assert_divergence_within_bounds("llm.decode", &ctx.finish(), out);

    let cfg = CnnConfig::tiny();
    let model = SimpleCnn::new_functional(cfg.clone(), 5);
    let pixels = init::randn([2, 3, cfg.image_size, cfg.image_size], 42);
    let ctx = CaptureCtx::new("cnn.inference");
    let scores = model.capture_inference(&ctx, 2, Some(pixels));
    scores.mark_output();
    let out = scores.node;
    assert_divergence_within_bounds("cnn.inference", &ctx.finish(), out);

    let cfg = DlrmConfig::tiny();
    let model = Dlrm::new_functional(cfg.clone(), 9);
    let ids: Vec<Vec<i64>> = (0..cfg.tables)
        .map(|t| {
            (0..cfg.lookups_per_table)
                .map(|i| ((t * 17 + i * 5) % cfg.rows_per_table) as i64)
                .collect()
        })
        .collect();
    let dense = init::randn([1, cfg.dense_features], 8);
    let ctx = CaptureCtx::new("dlrm.inference");
    let logit = model.capture_inference(&ctx, &ids, Some(dense));
    logit.mark_output();
    let out = logit.node;
    assert_divergence_within_bounds("dlrm.inference", &ctx.finish(), out);

    let cfg = MultimodalConfig::tiny();
    let model = Multimodal::new_functional(cfg.clone(), 13);
    let question: Vec<i64> = (0..6).map(|i| i % cfg.text.vocab as i64).collect();
    let pixels = init::randn([1, 3, cfg.vision.image_size, cfg.vision.image_size], 21);
    let ctx = CaptureCtx::new("vqa.inference");
    let scores = model.capture_inference(&ctx, &question, Some(pixels));
    scores.mark_output();
    let out = scores.node;
    assert_divergence_within_bounds("vqa.inference", &ctx.finish(), out);
}

/// A small matmul capture whose matmul node carries `tolerance_rel`.
fn toleranced_capture(tol: &str) -> CapturedGraph {
    let ctx = CaptureCtx::new("tolerance");
    let x = ctx.input("x", [4, 16], ElemType::F32, Some(init::randn([4, 16], 1)));
    let w = ctx.parameter("w", [16, 16], ElemType::F32, Some(init::randn([16, 16], 2)));
    let y = x.matmul(&w);
    y.mark_output();
    let mm = y.node;
    let mut cap = ctx.finish();
    cap.srg
        .node_mut(mm)
        .attrs
        .insert("tolerance_rel".into(), tol.into());
    cap
}

#[test]
fn unmeetable_tolerance_is_denied_at_graph_and_schedule_time() {
    // 2^-24 per element over a k=16 reduction can never satisfy 1e-12.
    let cap = toleranced_capture("1e-12");
    let report = run_srg_passes(&cap.srg, &LintConfig::new());
    assert!(report.has_deny(), "{report}");
    assert!(
        !report
            .with_code(LintCode::CriticalityToleranceExceeded)
            .is_empty(),
        "GA301 must carry the denial: {report}"
    );

    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();
    let err = genie::scheduler::schedule_checked(
        &cap.srg,
        &topo,
        &state,
        &cost,
        &SemanticsAware::new(),
        &LintConfig::new(),
    )
    .expect_err("unmeetable tolerance must be refused at schedule time");
    assert!(
        !err.with_code(LintCode::CriticalityToleranceExceeded)
            .is_empty(),
        "{err}"
    );
}

#[test]
fn loose_tolerance_schedules_cleanly() {
    let cap = toleranced_capture("0.5");
    let report = run_srg_passes(&cap.srg, &LintConfig::new());
    assert!(!report.has_deny(), "{report}");

    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();
    genie::scheduler::schedule_checked(
        &cap.srg,
        &topo,
        &state,
        &cost,
        &SemanticsAware::new(),
        &LintConfig::new(),
    )
    .expect("loose tolerance schedules");
}
