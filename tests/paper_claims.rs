//! Integration checks of the paper's headline claims, as catalogued in
//! DESIGN.md §3 ("expected shape checks"). These are the acceptance tests
//! of the reproduction: if any fails, the evaluation no longer supports
//! the paper's conclusions.

use genie::bench::{table2, table3, Calibration, LlmWorkload, Mode};

fn rows() -> Vec<genie::bench::Table2Row> {
    table2(&LlmWorkload::paper(), &Calibration::paper())
}

#[test]
fn claim_traffic_reduction_orders_of_magnitude() {
    // "reduces traffic by over 8,400× compared to naïve decode … and by
    // over 26,000× in the prefill phase"
    let rows = rows();
    let naive = rows.iter().find(|r| r.mode == Mode::NaiveBlind).unwrap();
    let sa = rows
        .iter()
        .find(|r| r.mode == Mode::SemanticsAware)
        .unwrap();
    assert!(naive.decode.net_mb / sa.decode.net_mb > 8_400.0);
    assert!(naive.prefill.net_mb / sa.prefill.net_mb > 26_000.0);
}

#[test]
fn claim_gpu_idles_without_semantics() {
    // "In the Naïve and ΔKV modes, the GPU is idle over 98% of the time"
    let rows = rows();
    for mode in [Mode::NaiveBlind, Mode::DeltaKv] {
        let r = rows.iter().find(|r| r.mode == mode).unwrap();
        assert!(r.decode.gpu_util_pct < 2.0, "{mode:?} must idle >98%");
    }
    // "improves utilization by 6× over the Naïve mode" — demand ≥3×.
    let naive = rows.iter().find(|r| r.mode == Mode::NaiveBlind).unwrap();
    let sa = rows
        .iter()
        .find(|r| r.mode == Mode::SemanticsAware)
        .unwrap();
    assert!(sa.decode.gpu_util_pct > 3.0 * naive.decode.gpu_util_pct);
    // "the GPU still remains heavily underutilized"
    assert!(sa.decode.gpu_util_pct < 10.0);
}

#[test]
fn claim_latency_ordering_is_preserved() {
    let rows = rows();
    let lat = |m: Mode| rows.iter().find(|r| r.mode == m).unwrap().decode.latency_s;
    assert!(lat(Mode::Local) < lat(Mode::SemanticsAware));
    assert!(lat(Mode::SemanticsAware) < lat(Mode::DeltaKv));
    assert!(lat(Mode::DeltaKv) < lat(Mode::NaiveBlind));
}

#[test]
fn claim_delta_kv_linear_sa_flat() {
    // Table 3: "the ΔKV mode's latency grows linearly … the
    // Semantics-Aware mode's latency … remains nearly constant"
    let t3 = table3(
        &LlmWorkload::paper(),
        &Calibration::paper(),
        &[50, 100, 150, 200],
    );
    // Linearity: each ΔKV increment within 20% of the first increment.
    let inc0 = t3[1].1 - t3[0].1;
    for w in t3.windows(2) {
        let inc = w[1].1 - w[0].1;
        assert!(
            (inc - inc0).abs() / inc0 < 0.2,
            "ΔKV not linear: {inc} vs {inc0}"
        );
    }
    // Flatness: SA varies less than 6% over the whole sweep.
    let sa_min = t3.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    let sa_max = t3.iter().map(|r| r.2).fold(0.0, f64::max);
    assert!(
        (sa_max - sa_min) / sa_min < 0.06,
        "SA not flat: {sa_min}..{sa_max}"
    );
    // "By 200 tokens, the Semantics-Aware design is already ~1.7× faster"
    assert!(t3[3].1 / t3[3].2 > 1.6, "ratio {}", t3[3].1 / t3[3].2);
}

#[test]
fn claim_rpc_bound_not_data_bound() {
    // "the remaining performance gap … is almost entirely an artifact of
    // the unoptimized Python RPC transport": swapping only the transport
    // for RDMA must bring semantics-aware decode near the local bound.
    let w = LlmWorkload::paper();
    let local = 50.0 * Calibration::paper().kernel_token_s;
    let rdma = genie::bench::run_phase(
        Mode::SemanticsAware,
        genie::bench::PhaseRun::Decode(50),
        &w,
        &Calibration::rdma(),
    );
    let work = rdma.latency_s - Calibration::rdma().session_init_s;
    assert!(
        work < local * 1.5,
        "RDMA semantics-aware decode {work}s should approach local {local}s"
    );
}

#[test]
fn claim_semantic_awareness_is_not_mode_specific_tuning() {
    // The same calibrated transport serves every mode — only the client
    // strategy differs. Verify by checking all modes share identical
    // kernel totals (the "useful GPU work is virtually identical" row).
    let w = LlmWorkload::paper();
    let cal = Calibration::paper();
    let kernel = 50.0 * cal.kernel_token_s;
    for row in table2(&w, &cal) {
        let implied = row.decode.gpu_util_pct / 100.0 * row.decode.latency_s;
        assert!(
            (implied - kernel).abs() / kernel < 0.01,
            "{:?}: kernel work {implied} differs from {kernel}",
            row.mode
        );
    }
}
