//! Differential suite: sharded multi-device execution is pinned
//! bit-for-bit to the single-device oracle.
//!
//! For every functional zoo transformer, across weight seeds and shard
//! specs (tensor-parallel, pipeline, combined — at two or more shard
//! counts each), `ShardedTransformerLm::generate_sharded` must produce
//! exactly the token stream of `TransformerLm::generate`. This is the
//! paper's semantic-translation claim applied to parallelism: splitting
//! a model across fabric-attached devices is a *placement* decision, so
//! the arithmetic — column-split projections gathered in rank order,
//! row-split matmuls folded in a fixed chain, activations forwarded
//! stage to stage — must be the same fold the sequential interpreter
//! runs, not merely close to it.

use genie::models::{ShardedTransformerLm, TransformerConfig, TransformerLm};
use genie::srg::shard::ShardSpec;

const PROMPT: &[i64] = &[1, 2, 3, 5, 7];
const STEPS: usize = 4;
const SEEDS: [u64; 3] = [42, 43, 44];

/// Shard specs legal for a config: `tensor_parallel` must divide
/// `d_model` and the FFN width, `pipeline_stages` must not exceed the
/// layer count.
fn specs_for(cfg: &TransformerConfig) -> Vec<ShardSpec> {
    let mut specs = Vec::new();
    for tp in [2u32, 4] {
        if cfg.d_model.is_multiple_of(tp as usize)
            && (cfg.d_model * cfg.ffn_mult).is_multiple_of(tp as usize)
        {
            specs.push(ShardSpec::tensor(tp));
        }
    }
    for pp in [2u32, 3] {
        if pp as usize <= cfg.layers {
            specs.push(ShardSpec::pipeline(pp));
        }
    }
    for (pp, tp) in [(2u32, 2u32), (3, 2)] {
        if pp as usize <= cfg.layers
            && cfg.d_model.is_multiple_of(tp as usize)
            && (cfg.d_model * cfg.ffn_mult).is_multiple_of(tp as usize)
        {
            specs.push(ShardSpec::new(pp, tp));
        }
    }
    specs
}

fn zoo() -> Vec<(&'static str, TransformerConfig)> {
    vec![
        ("tiny", TransformerConfig::tiny()),
        ("tiny-wide", TransformerConfig::tiny_wide()),
        ("tiny-deep", TransformerConfig::tiny_deep()),
    ]
}

#[test]
fn sharded_generation_matches_oracle_across_zoo_seeds_and_specs() {
    let mut cases = 0usize;
    for (name, cfg) in zoo() {
        let specs = specs_for(&cfg);
        assert!(
            specs.iter().any(|s| s.tensor_parallel > 1),
            "{name}: need tensor-parallel coverage"
        );
        for seed in SEEDS {
            let oracle_model = TransformerLm::new_functional(cfg.clone(), seed);
            let oracle = oracle_model.generate(PROMPT, STEPS);
            for spec in &specs {
                let sharded = ShardedTransformerLm::new(
                    TransformerLm::new_functional(cfg.clone(), seed),
                    *spec,
                );
                let (tokens, report) = sharded.generate_sharded(PROMPT, STEPS);
                assert_eq!(
                    tokens,
                    oracle,
                    "{name} seed {seed} {}: sharded tokens diverged",
                    spec.label()
                );
                assert_eq!(
                    report.active_shards(),
                    spec.shards() as usize,
                    "{name} seed {seed} {}: every shard must execute nodes",
                    spec.label()
                );
                if spec.tensor_parallel > 1 {
                    assert!(
                        report.collective_ops > 0,
                        "{name} {}: TP runs gather/partial-sum collectives",
                        spec.label()
                    );
                }
                assert!(
                    report.cross_shard_bytes() > 0,
                    "{name} {}: sharding must move bytes across the fabric",
                    spec.label()
                );
                cases += 1;
            }
        }
    }
    // 3 configs × 3 seeds × (tp2/tp4 everywhere, pipeline + combined
    // where depth allows) — the sweep must actually be a sweep.
    assert!(cases >= 30, "only {cases} sharded cases ran");
}

#[test]
fn sharded_generation_is_deterministic() {
    let cfg = TransformerConfig::tiny();
    let spec = ShardSpec::new(2, 2);
    let run = || {
        ShardedTransformerLm::new(TransformerLm::new_functional(cfg.clone(), 42), spec)
            .generate_sharded(PROMPT, STEPS)
    };
    let (a, ra) = run();
    let (b, rb) = run();
    assert_eq!(a, b, "same seed, same spec, same tokens");
    assert_eq!(ra.traffic, rb.traffic, "same fabric traffic");
    assert_eq!(ra.collective_ops, rb.collective_ops);
}

#[test]
fn wider_tensor_parallel_moves_more_bytes_across_shards() {
    // The gathered activation payload is the same whatever the split
    // (the parts tile d_model), but every extra rank is another shard
    // boundary the inputs and partials must cross: fabric traffic must
    // grow with the split, never shrink.
    let cfg = TransformerConfig::tiny();
    let bytes = |tp: u32| {
        ShardedTransformerLm::new(
            TransformerLm::new_functional(cfg.clone(), 42),
            ShardSpec::tensor(tp),
        )
        .generate_sharded(PROMPT, STEPS)
        .1
        .cross_shard_bytes()
    };
    let two = bytes(2);
    let four = bytes(4);
    assert!(two > 0);
    assert!(four > two, "tp4 {four} vs tp2 {two}");
}
