//! Confidential AI disaggregation (§5, "Trust and verifiability" +
//! "The evolving semantic lexicon").
//!
//! A tenant redacts its proprietary model graph before submitting it to
//! the fleet scheduler. The scheduler never sees a name, module path, or
//! custom-kernel identity — yet it can still (a) classify the workload
//! with a *learned* lexicon trained on public exemplars, (b) place it by
//! hardware affinity, and (c) batch it with other tenants running the
//! same public model via the structural fingerprint.
//!
//! Run with: `cargo run --example confidential_scheduling`

use genie::frontend::patterns::learned::LearnedLexicon;
use genie::models::{CnnConfig, KvState, SimpleCnn, TransformerConfig, TransformerLm};
use genie::prelude::*;
use genie::srg::redact::{fingerprint, identifying_bytes, redact};

fn capture_llm(cfg: TransformerConfig, secret: &str) -> Srg {
    let m = TransformerLm::new_spec(cfg);
    let ctx = CaptureCtx::new(format!("{secret}-proprietary-model"));
    let cap = ctx.scope(secret, || {
        m.capture_decode_step(&ctx, 0, &KvState::default())
    });
    cap.logits.sample().mark_output();
    ctx.finish().srg
}

fn main() {
    // The fleet operator trains a lexicon on public exemplar graphs.
    let mut lexicon = LearnedLexicon::new();
    lexicon.learn("llm", &capture_llm(TransformerConfig::tiny(), "public"));
    {
        let m = SimpleCnn::new_spec(CnnConfig::tiny());
        let ctx = CaptureCtx::new("public-cnn");
        m.capture_inference(&ctx, 1, None).mark_output();
        lexicon.learn("vision", &ctx.finish().srg);
    }
    println!(
        "fleet lexicon trained on {} public classes",
        lexicon.classes()
    );

    // Tenant A captures its proprietary GPT-J variant and redacts.
    let secret_graph = capture_llm(TransformerConfig::gptj_6b(), "acme_secret_sauce");
    let leak_before = identifying_bytes(&secret_graph);
    let submitted = redact(&secret_graph);
    let json = genie::srg::serialize::to_json(&submitted).unwrap();
    println!("\ntenant A submits a redacted graph:");
    println!("  identifying bytes before redaction: {leak_before}");
    println!(
        "  'acme' appears in submitted JSON: {}",
        json.contains("acme")
    );
    println!("  graph name on the wire: {}", submitted.name);

    // The scheduler classifies the redacted graph and places it.
    let (class, dist) = lexicon.classify(&submitted).expect("lexicon non-empty");
    println!("\nscheduler classifies redacted graph as `{class}` (distance {dist:.3})");
    let topo = Topology::heterogeneous_fleet(1, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let plan = genie::scheduler::schedule(&submitted, &topo, &state, &cost, &SemanticsAware::new());
    println!("placed: {}", plan.summary());

    // Tenant B runs the same public architecture: fingerprints match, so
    // the fleet can batch their decode steps without seeing either model.
    let tenant_b = redact(&capture_llm(TransformerConfig::gptj_6b(), "globex_private"));
    let fa = fingerprint(&submitted);
    let fb = fingerprint(&tenant_b);
    println!("\nfingerprints: tenant A {fa:016x}, tenant B {fb:016x}");
    println!(
        "batchable: {} (same architecture, zero knowledge of whose)",
        fa == fb
    );

    // A structurally different model does not collide.
    let other = redact(&capture_llm(TransformerConfig::tiny(), "small"));
    println!(
        "different architecture collides: {}",
        fingerprint(&other) == fa
    );
}
