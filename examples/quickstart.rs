//! Quickstart: capture → annotate → schedule → execute.
//!
//! Run with: `cargo run --example quickstart`

use genie::prelude::*;
use genie::tensor::init::randn;

fn main() {
    // 1. Write ordinary model code against lazy tensors. Nothing executes;
    //    Genie records an SRG.
    let ctx = CaptureCtx::new("quickstart");
    let x = ctx.input("x", [4, 16], ElemType::F32, Some(randn([4, 16], 1)));
    let (y, w2) = ctx.scope("mlp", || {
        let w1 = ctx.parameter("w1", [16, 32], ElemType::F32, Some(randn([16, 32], 2)));
        let w2 = ctx.parameter("w2", [32, 8], ElemType::F32, Some(randn([32, 8], 3)));
        (x.matmul(&w1).gelu().matmul(&w2), w2)
    });
    y.mark_output();
    let cap = ctx.finish();

    println!("captured SRG `{}`:", cap.srg.name);
    println!(
        "  {} nodes, {} edges",
        cap.srg.node_count(),
        cap.srg.edge_count()
    );
    println!(
        "  validation: {}",
        if genie::srg::validate::validate(&cap.srg).is_empty() {
            "ok"
        } else {
            "FAILED"
        }
    );
    println!("  w2 module path: {:?}", cap.srg.node(w2.node).module_path);

    // 2. Schedule onto the paper's testbed (client + A100 over 25 GbE).
    let topo = Topology::paper_testbed();
    let state = ClusterState::new();
    let cost = CostModel::ideal_25g();
    let plan = genie::scheduler::schedule(&cap.srg, &topo, &state, &cost, &SemanticsAware::new());
    println!("\n{}", plan.summary());
    println!(
        "  pinned uploads: {} (weights ship once, then handles)",
        plan.pinned_uploads.len()
    );

    // 3. Execute functionally on the local backend and inspect the output.
    let outputs = LocalBackend.execute_outputs(&cap).expect("executes");
    let out = outputs[0].as_f("y");
    println!("\noutput shape: {:?}", out.dims());
    println!("output[0][..4] = {:?}", &out.data()[..4]);

    // 4. Export the graph for inspection.
    println!("\nDOT preview (first 3 lines):");
    for line in genie::srg::dot::to_dot(&cap.srg).lines().take(3) {
        println!("  {line}");
    }
}
