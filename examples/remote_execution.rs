//! End-to-end remote execution over real TCP sockets (§3.4).
//!
//! Spawns the Genie remote executor in-process, connects a client
//! session, pins weights remotely, then runs a small decode-style loop
//! where each step ships only a fresh input and receives only the result
//! — while the pinned weight never crosses the wire again.
//!
//! Run with: `cargo run --example remote_execution`

use genie::backend::{spawn_server, RemoteSession};
use genie::prelude::*;
use genie::tensor::init::randn;

fn main() {
    let (server, executor) = spawn_server().expect("server spawns");
    println!("remote executor listening on {}", server.addr());

    let mut session = RemoteSession::connect(server.addr()).expect("client connects");

    // Pin a 256×256 weight remotely: ~256 KB ships exactly once.
    let w = randn([256, 256], 7);
    let handle = session
        .upload_pinned("w", &Value::F(w.clone()))
        .expect("upload");
    println!(
        "pinned weight: key={} epoch={} ({} B); server residents = {}",
        handle.key,
        handle.epoch,
        handle.bytes,
        executor.resident_count()
    );
    let after_upload = session.traffic_bytes();

    // Ten steps, each referencing the weight by handle.
    for step in 0..10u64 {
        let ctx = CaptureCtx::new(format!("step{step}"));
        let x = ctx.input("x", [1, 256], ElemType::F32, Some(randn([1, 256], step)));
        let lw = ctx.parameter("w", [256, 256], ElemType::F32, None);
        let y = x.matmul(&lw).relu();
        y.mark_output();
        let cap = ctx.finish();

        let outs = session
            .execute(&cap, &[(lw.node, "w")], &[y.node], &[])
            .expect("remote step");
        let sum: f32 = outs[0].as_f("y").data().iter().sum();
        if step % 3 == 0 {
            println!("  step {step}: output sum = {sum:.3}");
        }
    }

    let steady = session.traffic_bytes() - after_upload;
    println!(
        "\ntraffic: weight upload ≈ {} B once; 10 steps ≈ {} B total ({} B/step)",
        after_upload,
        steady,
        steady / 10
    );
    println!(
        "a semantics-blind client re-shipping the weight would have moved {} B",
        10 * handle.bytes
    );

    // Verify against local execution.
    let ctx = CaptureCtx::new("check");
    let x = ctx.input("x", [1, 256], ElemType::F32, Some(randn([1, 256], 0)));
    let lw = ctx.parameter("w", [256, 256], ElemType::F32, Some(w));
    let y = x.matmul(&lw).relu();
    y.mark_output();
    let cap = ctx.finish();
    let local = LocalBackend.execute_outputs(&cap).unwrap();

    let ctx2 = CaptureCtx::new("check.remote");
    let x2 = ctx2.input("x", [1, 256], ElemType::F32, Some(randn([1, 256], 0)));
    let lw2 = ctx2.parameter("w", [256, 256], ElemType::F32, None);
    let y2 = x2.matmul(&lw2).relu();
    y2.mark_output();
    let cap2 = ctx2.finish();
    let remote = session
        .execute(&cap2, &[(lw2.node, "w")], &[y2.node], &[])
        .unwrap();
    assert!(remote[0]
        .as_f("remote")
        .approx_eq(local[0].as_f("local"), 1e-6));
    println!("remote result matches local bit-for-bit tolerance: ok");
}
