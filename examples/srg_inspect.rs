//! SRG inspector: dump any zoo workload's captured graph as statistics,
//! DOT, JSON, and a placement-colored plan — the debugging workflow a
//! Genie developer lives in.
//!
//! Run with: `cargo run --example srg_inspect [llm|vision|rec|multimodal]`

use genie::models::Workload;
use genie::prelude::*;
use genie::srg::stats::GraphStats;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "llm".into());
    let workload = match which.as_str() {
        "vision" => Workload::ComputerVision,
        "rec" => Workload::Recommendation,
        "multimodal" => Workload::Multimodal,
        _ => Workload::LlmServing,
    };
    let srg = workload.spec_graph();

    println!("=== {} ===", workload.name());
    let stats = GraphStats::of(&srg).expect("acyclic");
    println!(
        "nodes: {}  edges: {}  depth: {}  max width: {}",
        stats.nodes, stats.edges, stats.depth, stats.max_width
    );
    println!("pattern: {}", stats.computation_pattern());
    println!("memory:  {}", stats.memory_access_profile());
    println!(
        "weights: {:.2} GB   stateful: {:.2} MB   flops: {:.2} GF",
        stats.weight_bytes / 1e9,
        stats.stateful_bytes / 1e6,
        stats.total_flops / 1e9
    );
    println!("op histogram:");
    for (op, count) in srg.op_histogram() {
        println!("  {op:<16} {count}");
    }

    // Plan it and emit artifacts.
    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
    println!("\n{}", plan.summary());

    // Lint both the graph and the plan: GA0xx/GA3xx at graph level,
    // GA1xx/GA2xx/GA3xx over the scheduled plan.
    let cfg = genie::analysis::LintConfig::new();
    let graph_report = genie::analysis::run_srg_passes(&srg, &cfg);
    let plan_report = genie::scheduler::lint_plan(&plan, &topo, &state, &cfg);
    println!("\n{}", graph_report.render());
    println!("{}", plan_report.render());
    println!("findings by family:");
    for fam in [
        genie::analysis::LintFamily::Graph,
        genie::analysis::LintFamily::Plan,
        genie::analysis::LintFamily::Schedule,
        genie::analysis::LintFamily::Precision,
    ] {
        let n = graph_report
            .diagnostics
            .iter()
            .chain(&plan_report.diagnostics)
            .filter(|d| d.code.family() == fam)
            .count();
        println!("  {:<6} {n}", fam.key());
    }

    // The static error interval the GA3xx passes reason over: the
    // worst-case relative error the graph can accumulate end to end.
    if let Ok(bounds) = genie::analysis::error_bounds(&srg) {
        match bounds.max_finite() {
            Some(b) => println!("worst-case relative error bound: {b:.3e}"),
            None => println!("worst-case relative error bound: unbounded"),
        }
    }

    let dir = std::path::Path::new("target/inspect");
    std::fs::create_dir_all(dir).expect("mkdir");
    let dot = dir.join(format!("{which}.dot"));
    std::fs::write(&dot, genie::srg::dot::to_dot(&srg)).expect("write dot");
    let plan_dot = dir.join(format!("{which}.plan.dot"));
    std::fs::write(&plan_dot, genie::scheduler::plan_dot::plan_to_dot(&plan))
        .expect("write plan dot");
    let json = dir.join(format!("{which}.srg.json"));
    std::fs::write(
        &json,
        genie::srg::serialize::to_json_pretty(&srg).expect("serialize"),
    )
    .expect("write json");
    println!("\nartifacts:");
    for p in [&dot, &plan_dot, &json] {
        println!("  {}", p.display());
    }
}
