//! LLM serving over disaggregated accelerators — the paper's motivating
//! workload (§2.2, §4).
//!
//! Generates tokens from a (tiny, functional) transformer three ways and
//! shows they agree exactly, then contrasts the traffic the semantics-
//! blind and semantics-aware placements would ship at GPT-J scale.
//!
//! Run with: `cargo run --example llm_serving`

use genie::models::{KvState, TransformerConfig, TransformerLm};
use genie::prelude::*;

fn main() {
    // ---- functional plane: correctness ------------------------------
    let model = TransformerLm::new_functional(TransformerConfig::tiny(), 42);
    let prompt = vec![3, 14, 15, 9, 2];

    // Reference: client-local generation with per-step re-capture.
    let tokens = model.generate(&prompt, 8);
    println!("generated tokens (local): {tokens:?}");

    // Same tokens must come out of full-sequence forwards (no KV cache).
    let mut seq = prompt.clone();
    for &t in &tokens {
        let logits = model.full_logits(&seq);
        let last = genie::tensor::ops::narrow(&logits, 0, seq.len() - 1, 1);
        let argmax = genie::tensor::ops::argmax_lastdim(&last).data()[0];
        assert_eq!(argmax, t, "KV-cache path must match full forward");
        seq.push(t);
    }
    println!("cross-check vs full forward: ok");

    // ---- performance plane: GPT-J scale placement --------------------
    let gptj = TransformerLm::new_spec(TransformerConfig::gptj_6b());
    let ctx = CaptureCtx::new("gptj.decode");
    let cap = gptj.capture_decode_step(&ctx, 0, &KvState::default());
    cap.logits.sample().mark_output();
    let srg = ctx.finish().srg;

    let topo = Topology::rack(4, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();

    println!("\nGPT-J decode step over a 4×A100 rack:");
    for policy in [
        &RoundRobin as &dyn Policy,
        &DataAware,
        &SemanticsAware::new(),
    ] {
        let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, policy);
        let recurring: u64 = plan
            .transfers
            .iter()
            .filter(|t| !t.via_handle)
            .map(|t| t.bytes)
            .sum();
        println!(
            "  {:<16} devices={} recurring transfer/step = {:>12} B, one-time pinned = {:>14} B",
            plan.policy,
            plan.devices_used(),
            recurring,
            plan.pinned_uploads.iter().map(|(_, _, b)| b).sum::<u64>(),
        );
    }
    println!("\nsemantics-aware decode ships tokens and logits, not caches.");
}
