//! Semantics-aware global scheduling across tenants (§3.6).
//!
//! Six tenants with different workload classes submit their semantic
//! graphs to the fleet scheduler, which answers the paper's three
//! questions: *where* (heterogeneous placement by roofline affinity),
//! *when* (phase-aware elastic scaling), and *how* (cross-tenant decode
//! batching for tenants sharing a public model).
//!
//! Run with: `cargo run --example multi_tenant`

use genie::models::Workload;
use genie::prelude::*;
use genie::scheduler::global::elastic;
use genie::scheduler::global::tenant::{Slo, TenantRequest};
use genie::scheduler::global::{batching, GlobalScheduler};

fn main() {
    let topo = Topology::heterogeneous_fleet(2, 25e9);
    println!("fleet:");
    for d in topo.devices() {
        println!("  {}: {} ({:?})", d.id, d.spec.name, d.spec.class);
    }

    let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
    let tenants = [
        (1, Workload::LlmServing, 1001, "chatbot-a"),
        (2, Workload::LlmServing, 1001, "chatbot-b (same model)"),
        (3, Workload::LlmServing, 2002, "code-assistant"),
        (4, Workload::ComputerVision, 3003, "photo-tagger"),
        (5, Workload::Recommendation, 4004, "feed-ranker"),
        (6, Workload::Multimodal, 5005, "vqa-service"),
    ];
    for (id, w, fp, name) in &tenants {
        sched.admit(TenantRequest {
            id: *id,
            name: name.to_string(),
            srg: w.spec_graph(),
            slo: Slo::Interactive,
            model_fingerprint: *fp,
        });
    }

    let fleet = sched.plan_round();

    println!("\nWHERE — heterogeneous placement (with memory admission control):");
    for (id, _, _, name) in &tenants {
        match fleet.assignments.get(id) {
            Some(devs) => {
                let classes: std::collections::BTreeSet<_> = devs
                    .iter()
                    .map(|d| format!("{:?}", topo.device(*d).spec.class))
                    .collect();
                println!("  {name:<26} → {devs:?} {classes:?}");
            }
            None => {
                let v = &fleet.rejected[id][0];
                println!(
                    "  {name:<26} → REJECTED: needs {:.1} GB on {}, only {:.1} GB free",
                    v.required as f64 / 1e9,
                    v.device,
                    v.free as f64 / 1e9
                );
            }
        }
    }

    println!("\nHOW — cross-tenant decode batching:");
    for group in &fleet.batch_groups {
        if group.tenants.len() > 1 {
            let speedup = batching::batching_speedup(0.0306, 0.9, group.tenants.len());
            println!(
                "  model {:>5}: tenants {:?} batch together → {:.2}× decode throughput",
                group.fingerprint, group.tenants, speedup
            );
        }
    }

    println!("\nWHEN — phase-aware elastic scaling (8 s prefill burst, 100 s decode):");
    let prefill_devs = elastic::recommend_devices(&Phase::LlmPrefill, 8.0, 1.0, 8);
    let decode_devs = elastic::recommend_devices(&Phase::LlmDecode, 100.0, 1.0, 8);
    let (elastic_cost, static_cost) = elastic::elasticity_savings(8.0, 100.0, 1.0, 8);
    println!("  prefill: scale out to {prefill_devs} devices");
    println!("  decode:  scale back to {decode_devs} device");
    println!(
        "  device-seconds: elastic {elastic_cost:.0} vs static-peak {static_cost:.0} ({:.1}× saved)",
        static_cost / elastic_cost
    );
}
