//! Lineage-based fault tolerance (§3.5) over real sockets.
//!
//! Builds remote state step by step while recording lineage recipes,
//! crashes the "device" (the server drops all resident state and bumps
//! its epoch), then recovers by replaying only the minimal recipe set —
//! and proves the rebuilt state is exactly what was lost.
//!
//! Run with: `cargo run --example fault_tolerance`

use genie::backend::{spawn_server, RemoteSession};
use genie::lineage::{recover, LineageLog, Recipe, RemoteReplayer};
use genie::prelude::*;
use genie::tensor::Tensor;
use std::collections::BTreeSet;

fn main() {
    let (server, executor) = spawn_server().expect("server spawns");
    let mut session = RemoteSession::connect(server.addr()).expect("connect");
    let mut log = LineageLog::new();

    // Step 0: materialize a base vector remotely, recording its recipe.
    let base_recipe = {
        let ctx = CaptureCtx::new("base");
        let x = ctx.input(
            "client_data",
            [4],
            ElemType::F32,
            Some(Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0])),
        );
        let y = x.relu();
        y.mark_output();
        Recipe {
            defines: "base".into(),
            cap: ctx.finish(),
            handle_inputs: vec![],
            output: y.node,
        }
    };
    session
        .execute(&base_recipe.cap, &[], &[], &[(base_recipe.output, "base")])
        .expect("step 0");
    log.record(base_recipe);

    // Steps 1..4: state += state (doubling chain), like a growing cache.
    for step in 1..4 {
        let ctx = CaptureCtx::new(format!("double{step}"));
        let prev = ctx.input("prev", [4], ElemType::F32, None);
        let y = prev.add(&prev);
        y.mark_output();
        let mut cap = ctx.finish();
        cap.values.remove(&prev.node);
        let recipe = Recipe {
            defines: "base".into(),
            cap,
            handle_inputs: vec![(prev.node, "base".into())],
            output: y.node,
        };
        session
            .execute(
                &recipe.cap,
                &[(prev.node, "base")],
                &[],
                &[(recipe.output, "base")],
            )
            .expect("double step");
        log.record(recipe);
    }

    let before = session.fetch("base").expect("fetch");
    println!("state before crash: {:?}", before.as_f("base").data());
    println!("server residents: {}", executor.resident_count());

    // 💥 The device dies: all resident state gone, epoch bumped.
    let lost = session.inject_crash().expect("crash injection");
    println!(
        "\ninjected device loss: {} objects gone, epoch now {}",
        lost.len(),
        executor.epoch()
    );
    assert_eq!(executor.resident_count(), 0);

    // Recover: replay the minimal recipe chain onto the same server.
    let lost_names: Vec<String> = lost.iter().map(|(n, _)| n.clone()).collect();
    let report = recover(
        &log,
        &lost_names,
        &BTreeSet::new(),
        &mut RemoteReplayer {
            session: &mut session,
        },
    )
    .expect("recovery");
    println!(
        "replayed {} of {} recipes (savings vs restart: {:.0}%)",
        report.replayed.len(),
        log.len(),
        report.savings * 100.0
    );

    let after = session.fetch("base").expect("fetch after recovery");
    assert_eq!(
        after.as_f("base").data(),
        before.as_f("base").data(),
        "recovered state must be identical"
    );
    println!("state after recovery:  {:?}", after.as_f("base").data());
    println!("lineage recovery: exact ✓");
}
