//! The continuous-batching serving runtime end to end (§3.6's loop).
//!
//! An LLM tenant is admitted through the global scheduler (memory
//! admission control decides its lanes and KV budget), then a seeded
//! open-loop trace drives the serving engine twice — continuous batching
//! on and off — to show where the throughput of disaggregated LLM
//! serving actually comes from: amortizing the ~12 GB weight read of a
//! memory-bound decode step across the whole batch.
//!
//! Run with: `cargo run --example serving_loop`

use genie::models::{TransformerConfig, Workload};
use genie::netsim::Nanos;
use genie::prelude::*;
use genie::scheduler::global::tenant::{Slo, TenantRequest};
use genie::scheduler::global::GlobalScheduler;
use genie::serving::{bind_tenant, ShedReason};

fn main() {
    // 1. Fleet admission: where may this tenant's serving loop live?
    let topo = Topology::heterogeneous_fleet(1, 25e9);
    let mut sched = GlobalScheduler::new(topo.clone(), CostModel::paper_stack());
    let model = TransformerConfig::gptj_6b();
    let tenant = TenantRequest {
        id: 1,
        name: "chatbot".into(),
        srg: Workload::LlmServing.spec_graph(),
        slo: Slo::Interactive,
        model_fingerprint: 1001,
    };
    let binding = bind_tenant(&mut sched, &topo, &model, tenant, Nanos::ZERO);
    let requests = ArrivalConfig {
        seed: 42,
        rate_per_s: 8.0,
        horizon: Nanos::from_secs_f64(4.0),
        prompt_len: (16, 48),
        decode_tokens: (32, 64),
        vocab: model.vocab,
        tenants: 2,
    }
    .generate();
    if !binding.admitted {
        // A refused tenant sheds its whole trace with a typed reason.
        let shed =
            genie::serving::ServingReport::all_shed(&requests, ShedReason::AdmissionRejected);
        println!("tenant refused by admission control: {} shed", shed.shed());
        return;
    }
    println!(
        "admitted onto {:?}: {} lane(s), {:.1} GB KV budget each",
        binding.devices,
        binding.lanes,
        binding.kv_capacity_bytes as f64 / 1e9
    );

    // 2. Serve the same offered load with and without batched decode.
    println!(
        "\noffered load: {} requests over {:.0} s (seed 42)",
        requests.len(),
        4.0
    );
    for batched in [true, false] {
        let config = ServingConfig {
            lanes: binding.lanes,
            max_batch: 8,
            batched,
            kv_capacity_bytes: binding.kv_capacity_bytes,
            queue_budget: Nanos::from_secs_f64(2.0),
            max_queue: 256,
            gpu: topo.device(binding.devices[0]).spec.clone(),
            link_bandwidth_bps: 25e9,
            link_latency_s: 250e-6,
            fault_plan: None,
            slo: genie::serving::SloConfig::paper_default(),
            record_telemetry: false,
            disagg: None,
            shard: None,
        };
        let report = ServingLoop::new(ServingModel::Spec(model.clone()), config).run(&requests);
        println!(
            "  {:<9}: {}/{} completed, shed {:>4.1}%, ttft p50 {:>6.1} ms p99 {:>6.1} ms, {:>5.0} tok/s",
            if batched { "batched" } else { "unbatched" },
            report.completed(),
            requests.len(),
            report.shed_rate() * 100.0,
            report.ttft_p50() * 1e3,
            report.ttft_p99() * 1e3,
            report.tokens_per_s()
        );
    }
    println!(
        "\nthe gap is the weight read: one ~12 GB sweep per batched step, one per member otherwise"
    );
}
