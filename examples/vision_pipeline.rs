//! Pipelined CNN inference (§3.3): the recognizer finds conv stages, the
//! scheduler spreads them across accelerators, and the pipeline analysis
//! shows where pipelining pays — and where it honestly does not.
//!
//! Run with: `cargo run --example vision_pipeline`

use genie::models::{CnnConfig, SimpleCnn};
use genie::prelude::*;
use genie::scheduler::pipeline;

fn main() {
    // Functional check first: the tiny CNN actually classifies.
    let tiny = SimpleCnn::new_functional(CnnConfig::tiny(), 7);
    let scores = tiny.infer(genie::tensor::init::randn([1, 3, 16, 16], 1));
    println!("tiny CNN class scores: {:?}", &scores.data()[..5]);

    // Paper-scale spec capture + recognizers.
    let model = SimpleCnn::new_spec(CnnConfig::resnet_like());
    let ctx = CaptureCtx::new("resnet.infer");
    model.capture_inference(&ctx, 1, None).mark_output();
    let mut srg = ctx.finish().srg;
    let fired = genie::frontend::patterns::run_all(&mut srg);
    println!("\nrecognizers fired: {fired:?}");

    let topo = Topology::rack(4, 25e9);
    let cost = CostModel::paper_stack();
    let stages = pipeline::stage_profiles(&srg, &topo, &cost);
    println!("{} pipeline stages found", stages.len());
    for s in &stages {
        println!(
            "  stage {:>2}: compute {:>8.3} ms, boundary {:>10} B",
            s.stage,
            s.compute_s * 1e3,
            s.boundary_bytes as u64
        );
    }

    let batch = 256;
    let serial = pipeline::serial_makespan(&stages, batch);
    println!("\nbatch of {batch} images:");
    println!("  single A100, serial:            {:>8.2} s", serial);
    for (name, bw) in [
        ("4-way pipeline over 25 GbE", 25e9 / 8.0),
        ("4-way pipeline over 100 GbE", 100e9 / 8.0),
        ("4-way pipeline over NVLink", 300e9),
    ] {
        let piped = pipeline::pipelined_makespan(&stages, batch, 4, bw);
        println!(
            "  {name:<31} {piped:>8.2} s ({})",
            if piped < serial { "wins" } else { "loses" }
        );
    }
    let breakeven = pipeline::pipeline_breakeven_bandwidth(&stages, 4);
    println!(
        "\npipelining breaks even at ≈{:.1} GB/s of interconnect — the\nscheduler can see this from the SRG and place accordingly.",
        breakeven / 1e9
    );
}
