//! Recommendation serving: sparse embedding tiering (§3.3, Table 1).
//!
//! The DLRM graph mixes tens of GB of cold embedding tables with a small
//! hot MLP. The recognizer tags tables as `EmbeddingTable`; the
//! semantics-aware policy tiers them onto the device with the most free
//! memory while the dense interaction rides the fastest compute.
//!
//! Run with: `cargo run --example recommendation`

use genie::models::{Dlrm, DlrmConfig};
use genie::prelude::*;

fn main() {
    // Functional prediction on the tiny config.
    let cfg = DlrmConfig::tiny();
    let model = Dlrm::new_functional(cfg.clone(), 3);
    let ids: Vec<Vec<i64>> = (0..cfg.tables)
        .map(|t| {
            (0..cfg.lookups_per_table)
                .map(|i| ((t * 13 + i * 7) % cfg.rows_per_table) as i64)
                .collect()
        })
        .collect();
    let score = model.predict(&ids, genie::tensor::init::randn([1, cfg.dense_features], 5));
    println!("click probability: {score:.4}");

    // Production-scale spec capture.
    let cfg = DlrmConfig::production_like();
    println!(
        "\nproduction DLRM: {} tables × {} rows × {} dims = {:.1} GB sparse",
        cfg.tables,
        cfg.rows_per_table,
        cfg.embedding_dim,
        cfg.table_bytes() as f64 / 1e9
    );
    let model = Dlrm::new_spec(cfg.clone());
    let ctx = CaptureCtx::new("dlrm.infer");
    let id_lists: Vec<Vec<i64>> = (0..cfg.tables)
        .map(|_| vec![0; cfg.lookups_per_table])
        .collect();
    model.capture_inference(&ctx, &id_lists, None).mark_output();
    let mut srg = ctx.finish().srg;
    genie::frontend::patterns::run_all(&mut srg);

    let tables = srg
        .nodes()
        .filter(|n| n.residency == Residency::EmbeddingTable)
        .count();
    println!("recognizer classified {tables} embedding tables for tiering");

    // Schedule over a heterogeneous fleet: tables should tier onto the
    // roomy device, dense compute onto the fast one.
    let topo = Topology::heterogeneous_fleet(1, 25e9);
    let state = ClusterState::new();
    let cost = CostModel::paper_stack();
    let plan = genie::scheduler::schedule(&srg, &topo, &state, &cost, &SemanticsAware::new());
    println!("\n{}", plan.summary());

    let mut per_phase: std::collections::BTreeMap<String, std::collections::BTreeSet<String>> =
        Default::default();
    for (node, loc) in &plan.placements {
        let n = plan.srg.node(*node);
        if n.phase != Phase::Unknown {
            per_phase
                .entry(n.phase.label().to_string())
                .or_default()
                .insert(loc.to_string());
        }
    }
    for (phase, devs) in per_phase {
        println!("  phase {phase:<18} → {devs:?}");
    }
}
